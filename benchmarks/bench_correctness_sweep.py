"""E9 — Theorems 1 and 6 under adversarial asynchrony (correctness sweep).

The correctness theorems are universally quantified over asynchronous
executions.  This bench runs both genuine protocols (whiteboard CLEAN and
local VISIBILITY) plus the cloning variant on the discrete-event engine
under a battery of delay regimes — unit, random x seeds, stragglers, slow
hosts — with the omniscient intruder co-simulated, and requires every run
to be monotone, contiguous, complete and capturing.
"""

import pytest

from repro.protocols.clean_protocol import run_clean_protocol
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.scheduling import (
    AdversarialSlowestDelay,
    LayeredDelay,
    RandomDelay,
    UnitDelay,
)

DELAY_REGIMES = [
    ("unit", lambda: UnitDelay()),
    ("random-0", lambda: RandomDelay(seed=0)),
    ("random-1", lambda: RandomDelay(seed=1)),
    ("random-wild", lambda: RandomDelay(seed=2, low=0.05, high=20.0, local_jitter=2.0)),
    ("stragglers", lambda: AdversarialSlowestDelay(slow_agents=[0, 1, 2], factor=25)),
    ("slow-hosts", lambda: LayeredDelay({1: 10.0, 7: 10.0})),
]

PROTOCOLS = [
    ("visibility", run_visibility_protocol),
    ("clean", run_clean_protocol),
    ("cloning", run_cloning_protocol),
]


def run_sweep(dimension: int):
    outcomes = {}
    for proto_name, runner in PROTOCOLS:
        for regime_name, factory in DELAY_REGIMES:
            result = runner(dimension, delay=factory())
            outcomes[(proto_name, regime_name)] = result
    return outcomes


def test_correctness_sweep(benchmark, report):
    outcomes = benchmark.pedantic(run_sweep, args=(4,), rounds=1, iterations=1)

    lines = [f"{'protocol':<12} {'delays':<12} {'moves':>6} {'makespan':>9} verdict"]
    for (proto, regime), result in sorted(outcomes.items()):
        assert result.ok, f"{proto}/{regime}: {result.summary()}"
        assert result.monotone and result.contiguous
        assert result.intruder_captured
        lines.append(
            f"{proto:<12} {regime:<12} {result.total_moves:>6} "
            f"{result.makespan:>9.2f} OK"
        )
    report("correctness_sweep", "\n".join(lines))


@pytest.mark.parametrize("strategy", ["clean", "visibility"])
def test_incremental_matches_reference_sweep(benchmark, strategy):
    """Node-for-node cross-check: the bitset state layer's predicates must
    equal the ``slow_`` reference (set-based BFS) path after every single
    move of a genuine strategy schedule."""
    from repro.core.strategy import get_strategy
    from repro.sim.contamination import ContaminationMap
    from repro.topology.hypercube import Hypercube

    def replay_and_compare(dimension: int):
        schedule = get_strategy(strategy).run(dimension)
        cmap = ContaminationMap(Hypercube(dimension), strict=False)
        for _ in range(max(schedule.team_size, 1)):
            cmap.place_agent(0)
        checks = 0
        for move in schedule.moves:
            cmap.move_agent(move.src, move.dst)
            assert cmap.is_contiguous() == cmap.slow_is_contiguous(), move
            assert cmap.contaminated_nodes() == cmap.slow_contaminated_nodes(), move
            checks += 1
        assert cmap.all_clean()
        return checks

    checks = benchmark.pedantic(replay_and_compare, args=(5,), rounds=1, iterations=1)
    assert checks > 0


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_walker_intruder_sweep(benchmark, seed):
    """A concrete fleeing intruder is always captured, whatever the delays
    (sampled seeds; full-space claim is Theorem 6)."""

    def run():
        return run_visibility_protocol(
            5, delay=RandomDelay(seed=seed), intruder="walker"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok
    assert result.intruder_captured
