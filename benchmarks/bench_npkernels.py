"""Perf — the NumPy kernel backend vs. the pure-Python kernels.

Not a paper artifact: quantifies what `repro.fastpath.npkernels` buys.
Three measurements, one JSON artifact:

* ``stream_verify_d20`` — the headline number: a CLEAN schedule at d=20
  (1,048,576 nodes) generated, streamed and batch-verified in one pass
  with the packed bit-plane verifier, under a 768 MiB address-space cap
  (``RLIMIT_AS``) enforced for the whole stage — the PR 9 pure-Python
  node tables could not fit this dimension in that budget;
* ``montecarlo_speedup`` — the array-of-scenarios batch engine vs. the
  scalar PR 7 path on the 10k-trial d=10 visibility campaign
  (reachable intruder, random delays, rotating homebase, seed 2005),
  asserting byte-identical result payloads and a >= 20x wall-clock
  speedup;
* ``parity`` — verdict + summary cross-checks of the two backends over
  every strategy at a mid dimension, so the artifact itself witnesses
  the backends agree before it reports their relative speed.

Run ``python benchmarks/bench_npkernels.py`` to measure and write
``BENCH_npkernels.json`` at the repo root.  Set ``NPKERNELS_SMOKE=1``
for the CI smoke mode (small dimensions, no perf floors — shared
runners jitter too much for hard gates; the full mode asserts the
speedup floor and runs the d=20 pass under the hard memory cap).
"""

import json
import os
import resource
import time
from contextlib import contextmanager
from pathlib import Path

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_npkernels.json"

SMOKE = bool(os.environ.get("NPKERNELS_SMOKE"))

VERIFY_STRATEGY = "clean"
VERIFY_DIMENSION = 10 if SMOKE else 20
VERIFY_CHUNK_MOVES = 4096 if SMOKE else 65536
PARITY_DIMENSION = 5 if SMOKE else 7

MC_DIMENSION = 8 if SMOKE else 10
MC_TRIALS = 500 if SMOKE else 10_000
MC_REPEATS = 1 if SMOKE else 3

#: full-mode acceptance floors (smoke mode only checks correctness)
ADDRESS_SPACE_CAP_MIB = 768
MIN_MC_SPEEDUP = 20.0


def peak_rss_mb() -> float:
    """Process high-water RSS in MiB (Linux ru_maxrss is in KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


@contextmanager
def address_space_cap(mib: int):
    """Clamp ``RLIMIT_AS`` to ``mib`` for the duration of the block."""
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    resource.setrlimit(resource.RLIMIT_AS, (mib * 2**20, hard))
    try:
        yield
    finally:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))


def campaign_spec():
    """The PR 7 reference campaign the speedup floor is defined on."""
    from repro.fastpath.batchsim import BatchScenarioSpec

    return BatchScenarioSpec(
        dimension=MC_DIMENSION,
        strategy="visibility",
        trials=MC_TRIALS,
        intruder="reachable",
        delay="random",
        rotate_homebase=True,
        rng_seed=2005,
    )


def stream_verify_d20():
    """The headline: one-pass generate + verify inside the memory cap.

    The cap is armed before the first chunk is produced, so the whole
    stage — pure-Python producer, packed-plane verifier, every scratch
    allocation — must fit the same budget the CI streaming smoke
    enforces with ``ulimit -v``.
    """
    from repro.core.strategy import get_strategy
    from repro.fastpath import batch_verify_chunks
    from repro.topology.hypercube import Hypercube

    strategy = get_strategy(VERIFY_STRATEGY)
    start = time.perf_counter()
    with address_space_cap(ADDRESS_SPACE_CAP_MIB):
        report = batch_verify_chunks(
            strategy.generate_chunks(Hypercube(VERIFY_DIMENSION), VERIFY_CHUNK_MOVES),
            backend="numpy",
        )
    seconds = time.perf_counter() - start
    assert report.ok, report.violations
    return {
        "strategy": VERIFY_STRATEGY,
        "dimension": VERIFY_DIMENSION,
        "nodes": 1 << VERIFY_DIMENSION,
        "moves": report.total_moves,
        "makespan": report.makespan,
        "team_size": report.team_size,
        "chunk_moves": VERIFY_CHUNK_MOVES,
        "backend": "numpy",
        "address_space_cap_mib": ADDRESS_SPACE_CAP_MIB,
        "one_pass": True,
        "seconds": round(seconds, 3),
        "moves_per_second": round(report.total_moves / seconds),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def montecarlo_speedup():
    """Vectorized vs. scalar batch engine on the reference campaign.

    Both paths run the identical spec; payload equality is asserted
    before any timing is reported.  Best-of-N wall clock on each side
    keeps a scheduler hiccup from minting a fake speedup (or hiding a
    real one).
    """
    from repro.fastpath.batchsim import run_batch

    spec = campaign_spec()
    result_np = run_batch(spec, backend="numpy")
    result_pure = run_batch(spec, backend="pure")
    assert result_np.to_payload() == result_pure.to_payload(), (
        "numpy batch engine diverged from the scalar path"
    )

    def best_of(backend: str) -> float:
        best = float("inf")
        for _ in range(MC_REPEATS):
            start = time.perf_counter()
            run_batch(spec, backend=backend)
            best = min(best, time.perf_counter() - start)
        return best

    numpy_seconds = best_of("numpy")
    pure_seconds = best_of("pure")
    speedup = pure_seconds / numpy_seconds if numpy_seconds else float("inf")
    return {
        "spec": spec.to_payload(),
        "trials": MC_TRIALS,
        "repeats": MC_REPEATS,
        "pure_seconds": round(pure_seconds, 6),
        "numpy_seconds": round(numpy_seconds, 6),
        "pure_us_per_trial": round(pure_seconds / MC_TRIALS * 1e6, 2),
        "numpy_us_per_trial": round(numpy_seconds / MC_TRIALS * 1e6, 2),
        "speedup": round(speedup, 2),
        "payload_identical": True,
        "capture_rate": result_np.summary()["capture_rate"],
    }


def parity_checks():
    """Backends agree verdict-for-verdict before speed is reported."""
    from repro.core.strategy import available_strategies, get_strategy
    from repro.fastpath import (
        CompiledSchedule,
        batch_verify,
        batch_verify_chunks,
    )
    from repro.topology.hypercube import Hypercube

    cube = Hypercube(PARITY_DIMENSION)
    checked = []
    for name in sorted(available_strategies()):
        strategy = get_strategy(name)
        compiled = CompiledSchedule.from_schedule(strategy.generate(cube))
        pure = batch_verify(compiled, backend="pure")
        fast = batch_verify(compiled, backend="numpy")
        assert fast == pure, f"{name}: monolithic verdict diverged"
        streamed = batch_verify_chunks(
            strategy.generate_chunks(cube, 512), backend="numpy"
        )
        assert streamed == pure, f"{name}: chunked verdict diverged"
        checked.append(name)
    return {"dimension": PARITY_DIMENSION, "strategies": checked, "identical": True}


def main() -> None:
    """Measure everything and write the JSON artifact."""
    from repro.fastpath import numpy_available
    from repro.obs import build_manifest

    assert numpy_available(), "numpy backend unavailable — nothing to benchmark"

    parity = parity_checks()
    montecarlo = montecarlo_speedup()
    stream = stream_verify_d20()  # last: its RSS high-water is the headline

    print(
        f"stream verify {VERIFY_STRATEGY} d={stream['dimension']} [numpy]: "
        f"{stream['moves']} moves in {stream['seconds']}s "
        f"({stream['moves_per_second']}/s), peak RSS {stream['peak_rss_mb']} MiB "
        f"under a {ADDRESS_SPACE_CAP_MIB} MiB address-space cap"
    )
    print(
        f"montecarlo d={MC_DIMENSION} x{MC_TRIALS}: pure "
        f"{montecarlo['pure_us_per_trial']} us/trial vs numpy "
        f"{montecarlo['numpy_us_per_trial']} us/trial "
        f"({montecarlo['speedup']}x, identical payloads)"
    )
    print(
        f"parity d={parity['dimension']}: {len(parity['strategies'])} strategies "
        "verdict-identical (monolithic + chunked)"
    )

    if not SMOKE:
        assert montecarlo["speedup"] >= MIN_MC_SPEEDUP, (
            f"vectorized batch engine only {montecarlo['speedup']}x the scalar "
            f"path (floor {MIN_MC_SPEEDUP}x)"
        )

    payload = {
        "benchmark": "npkernels",
        "description": (
            "NumPy kernel backend: packed bit-plane chunk verification at "
            "d=20 under a 768 MiB address-space cap, array-of-scenarios "
            "Monte Carlo speedup on the 10k-trial d=10 visibility campaign, "
            "and backend parity cross-checks"
        ),
        "smoke": SMOKE,
        "manifest": build_manifest(extra={"benchmark": "npkernels"}),
        "results": {
            "stream_verify_d20": stream,
            "montecarlo_speedup": montecarlo,
            "parity": parity,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
