"""A5 — the open problem (Section 5), attacked numerically.

"An interesting open problem is to determine whether our strategy for the
first model is optimal in terms of number of agents; i.e., if the lower
bound on the number of agents is Ω(n/log n)."

Two-sided answer computed here:

* **lower bound** — any monotone strategy must guard the inner boundary of
  its decontaminated set; minimizing over growth orders is Harper's
  vertex-isoperimetric problem, solved exactly by simplicial-order
  prefixes.  The resulting bound is Θ(C(d, d/2)) = Θ(n/√log n) — *larger*
  than the conjectured Ω(n/log n).
* **upper bound** — sweeping in the simplicial order itself (the Harper
  sweep) is a valid contiguous monotone strategy whose team exceeds the
  bound by exactly one agent at every measured d (and brute force shows
  the bound itself is attained at d ≤ 3).

So the optimum is pinned to {LB, LB+1} for every computable dimension, and
Algorithm CLEAN sits a stable ≈1.3x above it — near-optimal in order, not
in constant.
"""

from repro.analysis.asymptotics import fit_growth
from repro.analysis.counting import central_binomial
from repro.analysis.formulas import clean_peak_agents, visibility_agents
from repro.analysis.lower_bounds import monotone_agents_lower_bound
from repro.analysis.verify import ScheduleVerifier
from repro.search.harper import harper_sweep_schedule
from repro.search.optimal import optimal_search_number
from repro.topology.generic import hypercube_graph

DIMS = list(range(1, 11))


def scoreboard():
    rows = {}
    for d in DIMS:
        lb = monotone_agents_lower_bound(d)
        harper = harper_sweep_schedule(d).team_size
        rows[d] = (lb, harper, clean_peak_agents(d), visibility_agents(d))
    return rows


def test_open_problem_scoreboard(benchmark, report):
    rows = benchmark.pedantic(scoreboard, rounds=1, iterations=1)

    lines = [
        f"{'d':>3} {'LB':>6} {'harper':>7} {'clean':>6} {'visib.':>7} "
        f"{'C(d,d/2)':>9} {'clean/LB':>9}"
    ]
    for d, (lb, harper, clean, vis) in rows.items():
        assert lb <= harper <= lb + 1  # the pincer
        assert lb <= clean
        lines.append(
            f"{d:>3} {lb:>6} {harper:>7} {clean:>6} {vis:>7} "
            f"{central_binomial(d):>9} {clean / lb:>9.3f}"
        )

    # exactness at the bottom: brute force meets the bound at d <= 3
    assert optimal_search_number(hypercube_graph(3)) == rows[3][0] == 4

    # asymptotics: the bound grows like the central binomial, i.e.
    # n / sqrt(log n) — strictly above the conjectured n / log n
    dims = list(range(4, 17))
    fit = fit_growth(dims, [monotone_agents_lower_bound(d) for d in dims])
    assert abs(fit.exponent_n - 1.0) < 0.05
    assert -0.8 < fit.exponent_log < -0.3
    lines.append(f"LB growth fit: {fit.describe()}  (=> Θ(n/√log n))")
    report("lower_bound_scoreboard", "\n".join(lines))


def test_harper_sweep_verifies(benchmark):
    d = 6

    def build_and_verify():
        schedule = harper_sweep_schedule(d)
        assert ScheduleVerifier(hypercube_graph(d)).verify(schedule).ok
        return schedule

    schedule = benchmark.pedantic(build_and_verify, rounds=1, iterations=1)
    assert schedule.team_size == monotone_agents_lower_bound(d) + 1
