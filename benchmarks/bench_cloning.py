"""E7 — Section 5 cloning observations.

Claims measured:

1. the cloning variant keeps n/2 agents and log n steps but drops the
   move count to exactly n - 1 (each tree edge crossed once);
2. cloning gives **no** advantage to Algorithm CLEAN — a clone-per-dispatch
   version of CLEAN would employ n/2 + 1 agents, *more* than Theorem 2's
   reuse-based team (checked from d >= 4 where the asymptotics bite).
"""

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.sim.scheduling import RandomDelay

DIMS = list(range(1, 11))


def measure():
    strategy = get_strategy("cloning")
    out = {}
    for d in DIMS:
        schedule = strategy.run(d)
        assert verify_schedule(schedule).ok
        out[d] = (schedule.team_size, schedule.total_moves, schedule.makespan)
    return out


def test_cloning_claims(benchmark, report):
    measured = benchmark(measure)

    lines = [
        f"{'d':>3} {'n':>6} {'agents':>7} {'moves':>7} {'n-1':>6} {'steps':>6} "
        f"{'CLEAN team':>11} {'CLEAN+cloning':>14}"
    ]
    for d in DIMS:
        agents, moves, steps = measured[d]
        assert agents == formulas.cloning_agents(d) == (1 << d) // 2
        assert moves == (1 << d) - 1
        assert steps == d
        clean_team = formulas.clean_peak_agents(d)
        clean_cloning = formulas.clean_with_cloning_agents(d)
        if d >= 4:
            assert clean_cloning > clean_team  # cloning hurts Algorithm CLEAN
        lines.append(
            f"{d:>3} {1 << d:>6} {agents:>7} {moves:>7} {(1 << d) - 1:>6} {steps:>6} "
            f"{clean_team:>11} {clean_cloning:>14}"
        )

    # moves strictly below every other strategy from d >= 3
    for d in (4, 8):
        assert measured[d][1] < formulas.visibility_moves_exact(d)
        assert measured[d][1] < formulas.clean_agent_moves_exact(d)

    report("cloning", "\n".join(lines))


def test_cloning_protocol_async(benchmark):
    """The engine run with real CloneSelf actions matches n - 1 moves under
    random delays."""
    d = 5

    def run():
        return run_cloning_protocol(d, delay=RandomDelay(seed=13))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok
    assert result.total_moves == (1 << d) - 1
    assert result.team_size == (1 << d) // 2
