"""F3 — Figure 3: the classes C_i of H_4 (Property 5).

Regenerates the class partition and checks |C_0| = 1, |C_i| = 2^{i-1}, the
partition covers the cube, and each class is exactly the set of nodes with
the same most-significant-bit position.
"""

# Predates the kernel-backend seam; the class-partition census is a
# mandatory numpy consumer, not an optional accelerated path.
import numpy as np  # repro-lint: disable=RPR250

from repro.topology.hypercube import Hypercube
from repro.viz.class_render import render_classes

FIGURE_DIMENSION = 4


def class_partition(d: int):
    h = Hypercube(d)
    return h, h.classes()


def test_fig3_classes(benchmark, report):
    h, classes = benchmark(class_partition, FIGURE_DIMENSION)

    assert len(classes[0]) == 1
    for i in range(1, FIGURE_DIMENSION + 1):
        assert len(classes[i]) == 2 ** (i - 1)
    flat = [x for cls in classes for x in cls]
    assert sorted(flat) == list(range(16))
    for i, members in enumerate(classes):
        assert all(h.msb(x) == i for x in members)

    report("fig3_classes_H4", render_classes(h))


def test_fig3_vectorized_census_agrees(benchmark):
    """The NumPy census path agrees with the per-node classification on a
    much larger cube (hot path of the analysis layer)."""
    h = Hypercube(14)
    census = benchmark(h.class_census)
    expected = np.array([1] + [2**i for i in range(14)])
    assert np.array_equal(census, expected)
