"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact (figure, table, or theorem
quantity), asserts the paper's claim about it (exact where the paper is
exact, shape where the paper is asymptotic), times the underlying
computation with pytest-benchmark, and writes the rendered artifact to
``benchmarks/reports/<name>.txt`` so EXPERIMENTS.md can quote it.

Every artifact now gets a ``<name>.manifest.json`` sidecar (schema
``repro-manifest/v1``) stamping the git revision and python version that
produced it — two reports are comparable iff their manifests match.
"""

from pathlib import Path

import pytest

from repro.obs import build_manifest, write_manifest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture()
def report():
    """Write a rendered artifact (plus manifest sidecar) to benchmarks/reports/."""
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        manifest = build_manifest(extra={"artifact": name})
        write_manifest(REPORT_DIR / f"{name}.manifest.json", manifest)

    return write
