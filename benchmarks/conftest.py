"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact (figure, table, or theorem
quantity), asserts the paper's claim about it (exact where the paper is
exact, shape where the paper is asymptotic), times the underlying
computation with pytest-benchmark, and writes the rendered artifact to
``benchmarks/reports/<name>.txt`` so EXPERIMENTS.md can quote it.
"""

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture()
def report():
    """Write a rendered artifact to benchmarks/reports/<name>.txt."""
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")

    return write
