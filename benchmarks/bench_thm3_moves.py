"""E2 — Theorem 3: CLEAN performs O(n log n) moves.

Measures both components of the theorem's decomposition across dimensions:

* agent moves — exact: ``sum_l 2 l C(d-1, l-1) = (n/2)(log n + 1)``;
* synchronizer moves — bounded by the four-part accounting (return trips,
  level entries, intra-level navigation, tree-edge escorts), with the
  escort part exact at ``2 (n - 1)``.

The total's O(n log n) shape is checked by bounded ratio against n log n.
"""

from repro.analysis import formulas
from repro.analysis.asymptotics import fit_growth, is_bounded_ratio
from repro.core.schedule import MoveKind
from repro.core.states import AgentRole
from repro.core.strategy import get_strategy

DIMS = list(range(2, 11))


def measure_moves():
    strategy = get_strategy("clean")
    out = {}
    for d in DIMS:
        schedule = strategy.run(d)
        roles = schedule.moves_by_role()
        kinds = schedule.moves_by_kind()
        out[d] = {
            "agent": roles[AgentRole.AGENT],
            "sync": roles[AgentRole.SYNCHRONIZER],
            "escort": kinds[MoveKind.ESCORT],
            "total": schedule.total_moves,
        }
    return out


def test_thm3_move_decomposition(benchmark, report):
    measured = benchmark(measure_moves)

    lines = [
        f"{'d':>3} {'n':>6} {'agent':>7} {'=(n/2)(d+1)':>12} {'sync':>7} "
        f"{'<=bound':>8} {'escort':>7} {'=2(n-1)':>8} {'total':>8}"
    ]
    for d in DIMS:
        m = measured[d]
        exact_agent = formulas.clean_agent_moves_exact(d)
        sync_bound = formulas.clean_sync_moves_upper_bound(d)
        escort_exact = formulas.clean_sync_escort_moves(d)
        assert m["agent"] == exact_agent
        assert m["sync"] <= sync_bound
        assert m["escort"] == escort_exact
        assert m["total"] <= formulas.clean_total_moves_upper_bound(d)
        lines.append(
            f"{d:>3} {1 << d:>6} {m['agent']:>7} {exact_agent:>12} {m['sync']:>7} "
            f"{sync_bound:>8} {m['escort']:>7} {escort_exact:>8} {m['total']:>8}"
        )

    totals = [measured[d]["total"] for d in DIMS]
    assert is_bounded_ratio(DIMS, totals, lambda d: (1 << d) * d)
    fit = fit_growth(DIMS, totals)
    assert abs(fit.exponent_n - 1.0) < 0.15
    lines.append(f"total-moves growth fit: {fit.describe()} (paper: O(n log n))")
    report("thm3_moves", "\n".join(lines))
