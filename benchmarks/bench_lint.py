"""Perf — the incremental lint cache: cold vs warm whole-tree analysis.

Not a paper artifact: quantifies what the content-addressed lint cache
(:class:`repro.lint.LintCache`) buys on the repo's own tree.  Two
measurements, one JSON artifact:

* ``cold`` — full ``repro-lint --self`` analysis into an empty cache
  directory (parse + per-file rules + call-graph walk + store);
* ``warm`` — the same analysis again: every per-file entry and the
  whole-program tree entry must be served from the cache, so the run
  analyzes **0** files and must report the identical findings.

Run ``python benchmarks/bench_lint.py`` to measure and write
``BENCH_lint.json`` at the repo root.  Set ``LINT_BENCH_SMOKE=1`` for
the CI smoke mode (single repeat, no timing floor — shared runners
jitter too much for hard perf gates; the full mode asserts warm >= 2x
cold).
"""

import json
import os
import tempfile
import time
from pathlib import Path

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_lint.json"

SMOKE = bool(os.environ.get("LINT_BENCH_SMOKE"))

REPEATS = 1 if SMOKE else 3

#: full-mode acceptance floor (smoke mode only checks correctness)
MIN_WARM_SPEEDUP = 2.0


def _finding_key(finding):
    return (finding.code, finding.path, finding.line, finding.column, finding.message)


def _run_once(paths, cache_dir):
    from repro.lint import LintCache, run_analysis

    start = time.perf_counter()
    run = run_analysis(paths, cache=LintCache(cache_dir))
    return time.perf_counter() - start, run


def main():
    from repro.lint import self_paths
    from repro.obs import build_manifest

    paths = self_paths()

    cold_seconds = []
    warm_seconds = []
    cold_run = warm_run = None
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory(prefix="lint-bench-") as tmp:
            cache_dir = Path(tmp) / "cache"
            elapsed, cold_run = _run_once(paths, cache_dir)
            cold_seconds.append(elapsed)
            elapsed, warm_run = _run_once(paths, cache_dir)
            warm_seconds.append(elapsed)

    assert cold_run is not None and warm_run is not None
    assert warm_run.files_analyzed == 0, (
        f"warm run re-analyzed {warm_run.files_analyzed} files — the cache leaks"
    )
    assert warm_run.files_cached == cold_run.files_scanned - len(cold_run.errors)
    assert warm_run.tree_cache_hit, "whole-program results were recomputed"
    assert list(map(_finding_key, warm_run.findings)) == list(
        map(_finding_key, cold_run.findings)
    ), "warm findings differ from cold — the cache is unsound"

    cold = min(cold_seconds)
    warm = min(warm_seconds)
    speedup = cold / warm if warm > 0 else float("inf")

    print(f"files scanned  {cold_run.files_scanned}")
    print(f"cold analysis  {cold * 1000:9.1f} ms  ({cold_run.files_analyzed} analyzed)")
    print(
        f"warm analysis  {warm * 1000:9.1f} ms  "
        f"({warm_run.files_cached} from cache, speedup {speedup:.1f}x)"
    )

    if not SMOKE:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm lint only {speedup:.1f}x cold (floor {MIN_WARM_SPEEDUP}x)"
        )

    payload = {
        "benchmark": "lint",
        "description": (
            "cold vs warm whole-tree `repro-lint --self` wall time against "
            "the content-addressed incremental lint cache"
        ),
        "smoke": SMOKE,
        "repeats": REPEATS,
        "manifest": build_manifest(extra={"benchmark": "lint"}),
        "results": {
            "files_scanned": cold_run.files_scanned,
            "cold": {
                "seconds": round(cold, 6),
                "files_analyzed": cold_run.files_analyzed,
                "files_cached": cold_run.files_cached,
            },
            "warm": {
                "seconds": round(warm, 6),
                "files_analyzed": warm_run.files_analyzed,
                "files_cached": warm_run.files_cached,
                "tree_cache_hit": warm_run.tree_cache_hit,
            },
            "warm_speedup": round(speedup, 3),
            "findings": len(cold_run.findings),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
