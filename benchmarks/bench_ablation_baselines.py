"""A1 — ablation: the paper's strategies vs optimal and naive baselines.

Quantifies the design choices DESIGN.md calls out:

* brute-force optimum on small hypercubes — how close the strategies sit
  to the true minimum (the paper's open lower-bound question);
* naive level-sweep — what the broadcast-tree reuse choreography saves
  (~27% of the agents at equal move order);
* tree search (Barriere et al.) — the known-optimal substrate result the
  paper builds on (checked optimal on tree families).
"""

from repro.analysis import formulas
from repro.analysis.verify import ScheduleVerifier, verify_schedule
from repro.core.strategy import get_strategy
from repro.search.level_sweep import level_sweep_peak_agents
from repro.search.optimal import optimal_search_number
from repro.search.tree_search import tree_search_number, tree_strategy_schedule
from repro.topology.generic import hypercube_graph, tree_graph


def small_cube_comparison():
    rows = {}
    for d in (1, 2, 3):
        rows[d] = {
            "optimal": optimal_search_number(hypercube_graph(d)),
            "clean": get_strategy("clean").run(d).team_size,
            "visibility": get_strategy("visibility").run(d).team_size,
            "level-sweep": get_strategy("level-sweep").run(d).team_size,
        }
    return rows


def test_ablation_optimality_gap(benchmark, report):
    rows = benchmark(small_cube_comparison)

    lines = [f"{'d':>3} {'optimal':>8} {'clean':>7} {'visibility':>11} {'sweep':>7}"]
    for d, row in rows.items():
        assert row["optimal"] <= row["clean"]
        assert row["optimal"] <= row["visibility"]
        lines.append(
            f"{d:>3} {row['optimal']:>8} {row['clean']:>7} "
            f"{row['visibility']:>11} {row['level-sweep']:>7}"
        )

    # measured facts: visibility is optimal on H_1..H_3; CLEAN pays +1 on
    # H_2/H_3 for its synchronizer
    assert rows[3]["optimal"] == 4
    assert rows[3]["visibility"] == 4
    assert rows[3]["clean"] == 5
    report("ablation_optimality_gap", "\n".join(lines))


def test_ablation_reuse_choreography(benchmark, report):
    """CLEAN vs the naive two-full-levels sweep across dimensions."""

    def measure():
        out = {}
        for d in range(2, 10):
            sweep = get_strategy("level-sweep").run(d)
            assert verify_schedule(sweep).ok
            out[d] = (formulas.clean_peak_agents(d), sweep.team_size, sweep.total_moves)
        return out

    measured = benchmark(measure)
    lines = [f"{'d':>3} {'clean agents':>13} {'sweep agents':>13} {'ratio':>7} {'sweep moves':>12}"]
    for d, (clean_team, sweep_team, sweep_moves) in measured.items():
        assert sweep_team == level_sweep_peak_agents(d)
        if d >= 3:
            assert sweep_team > clean_team
        lines.append(
            f"{d:>3} {clean_team:>13} {sweep_team:>13} "
            f"{sweep_team / clean_team:>7.3f} {sweep_moves:>12}"
        )
    report("ablation_reuse_choreography", "\n".join(lines))


def test_ablation_tree_substrate(benchmark, report):
    """The [1] tree strategy is optimal on every sampled tree, with linear
    moves — the substrate result the contiguous model builds on."""
    families = {
        "path-10": tree_graph([i for i in range(9)]),
        "star-8": tree_graph([0] * 8),
        "binary-15": tree_graph([0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6]),
        "spider-3x3": tree_graph([0, 1, 2, 0, 4, 5, 0, 7, 8]),
        "caterpillar": tree_graph([0, 1, 2, 3, 0, 1, 2, 3]),
    }

    def measure():
        out = {}
        for name, tree in families.items():
            agents = tree_search_number(tree)
            schedule = tree_strategy_schedule(tree)
            assert ScheduleVerifier(tree).verify(schedule).ok
            out[name] = (tree.n, agents, optimal_search_number(tree), schedule.total_moves)
        return out

    measured = benchmark(measure)
    lines = [f"{'tree':<14} {'n':>4} {'agents':>7} {'optimal':>8} {'moves':>7}"]
    for name, (n, agents, optimal, moves) in measured.items():
        assert agents == optimal  # the recursion is exact
        assert moves <= 2 * n * agents  # linear in n for bounded team
        lines.append(f"{name:<14} {n:>4} {agents:>7} {optimal:>8} {moves:>7}")
    report("ablation_tree_substrate", "\n".join(lines))
