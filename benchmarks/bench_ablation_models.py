"""A3 — ablation: the contiguous model vs the classical models (§1.2).

The paper's related-work section claims "the contiguous assumption
considerably changes the nature of the problem".  This bench quantifies it
on a battery of small graphs with three exactly-solved numbers:

* ``ns(G)`` — classical node search (place/remove, *edge*-clearing
  semantics; = pathwidth + 1);
* free-node — place/remove/slide under the paper's *node*-cleaning
  semantics (a strict relaxation of contiguity);
* contiguous — the paper's model, from homebase 0 (brute force).
"""

from repro.search.classical import node_cleaning_search_number, node_search_number
from repro.search.optimal import optimal_search_number
from repro.topology.generic import (
    complete_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)

GRAPHS = [
    path_graph(6),
    ring_graph(6),
    star_graph(4),
    tree_graph([0, 0, 1, 1, 2, 2]),  # 7-node binary tree
    complete_graph(4),
    hypercube_graph(2),
    hypercube_graph(3),
]


def compute_three_numbers():
    rows = {}
    for g in GRAPHS:
        rows[g.name] = (
            node_search_number(g),
            node_cleaning_search_number(g),
            optimal_search_number(g),
        )
    return rows


def test_ablation_model_comparison(benchmark, report):
    rows = benchmark.pedantic(compute_three_numbers, rounds=1, iterations=1)

    lines = [f"{'graph':<10} {'edge ns':>8} {'free node':>10} {'contiguous':>11}"]
    for name, (ns, free, cont) in rows.items():
        assert free <= cont  # relaxation can only help
        lines.append(f"{name:<10} {ns:>8} {free:>10} {cont:>11}")

    # the headline demonstrations:
    assert rows["path_6"] == (2, 1, 1)       # node semantics beat edge semantics
    assert rows["tree_7"][1] < rows["tree_7"][2]  # contiguity costs an agent
    assert rows["H_3"][1] == rows["H_3"][2] == 4  # ... but is free on H_3
    assert rows["H_3"][0] == 5                    # edge-clearing needs even more

    report("ablation_model_comparison", "\n".join(lines))
