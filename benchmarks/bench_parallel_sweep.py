"""Perf — parallel sweep executor vs. the serial sweep loop.

Not a paper artifact: quantifies what the ``repro.exec`` worker pool
buys (and costs).  The same sweep grid — every strategy over
``d = [8, 10, 12]`` — is timed three ways:

* ``serial``    — the in-process :func:`repro.analysis.sweeps.run_sweep`
  loop the CLI uses at ``--jobs 1``,
* ``jobs=1``    — the executor with a single worker (measures the
  process-per-job overhead in isolation),
* ``jobs=N``    — the executor at the requested width (default 4, or
  ``PARALLEL_SWEEP_JOBS``).

Speedup is wall-clock ``serial / jobs=N``.  The artifact records
``cpu_count`` and ``cpus_available`` because the achievable speedup is
bounded by the scheduler: on a single-CPU container the pool can only
interleave, so ``speedup <= 1`` there, while the same grid on a 4-core
CI runner shows the real fan-out.  Every configuration asserts that the
merged rows are identical to the serial table — a benchmark that
changed the numbers would be measuring a bug.

Run ``python benchmarks/bench_parallel_sweep.py`` to measure and write
``BENCH_parallel_sweep.json`` at the repo root.  Set
``PARALLEL_SWEEP_SMOKE=1`` for the CI smoke mode (small grid, single
repeat).
"""

import json
import os
import time
from pathlib import Path

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"

SMOKE = bool(os.environ.get("PARALLEL_SWEEP_SMOKE"))
JOBS = int(os.environ.get("PARALLEL_SWEEP_JOBS", "4"))

STRATEGIES = ["clean", "visibility", "cloning"]
DIMENSIONS = [4, 5] if SMOKE else [8, 10, 12]
REPEATS = 1 if SMOKE else 3


def _cpus_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _flat(rows):
    return [row.as_flat_dict() for row in rows]


def timed_serial():
    from repro.analysis.sweeps import run_sweep

    best, flat = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        _, rows = run_sweep(STRATEGIES, DIMENSIONS)
        best = min(best, time.perf_counter() - start)
        flat = _flat(rows)
    return best, flat


def timed_parallel(jobs: int):
    from repro.exec import ExecutorConfig, parallel_sweep

    config = ExecutorConfig(jobs=jobs)
    best, flat = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        _, rows, outcomes = parallel_sweep(STRATEGIES, DIMENSIONS, config)
        best = min(best, time.perf_counter() - start)
        assert all(o.ok for o in outcomes)
        flat = _flat(rows)
    return best, flat


def test_parallel_rows_match_serial():
    """Whatever the timings say, the tables must agree cell-for-cell."""
    global DIMENSIONS, REPEATS
    saved = DIMENSIONS, REPEATS
    DIMENSIONS, REPEATS = [3, 4], 1  # keep the correctness check fast
    try:
        _, serial_rows = timed_serial()
        _, parallel_rows = timed_parallel(jobs=2)
        assert parallel_rows == serial_rows
    finally:
        DIMENSIONS, REPEATS = saved


def main() -> None:
    """Measure all three configurations and write the JSON artifact."""
    from repro.obs import build_manifest

    serial_seconds, serial_rows = timed_serial()
    one_seconds, one_rows = timed_parallel(jobs=1)
    n_seconds, n_rows = timed_parallel(jobs=JOBS)
    assert one_rows == serial_rows, "jobs=1 table diverged from serial"
    assert n_rows == serial_rows, f"jobs={JOBS} table diverged from serial"

    speedup = serial_seconds / n_seconds if n_seconds else None
    overhead = one_seconds / serial_seconds if serial_seconds else None
    cpus = _cpus_available()
    print(f"grid: {len(STRATEGIES)} strategies x d={DIMENSIONS}")
    print(f"serial        {serial_seconds * 1000:9.1f} ms")
    print(f"executor x1   {one_seconds * 1000:9.1f} ms  ({overhead:.2f}x serial)")
    print(f"executor x{JOBS}   {n_seconds * 1000:9.1f} ms  (speedup {speedup:.2f}x)")
    print(f"cpus: {cpus} available / {os.cpu_count()} online")

    # On a single-CPU box the pool can only interleave, so speedup <= 1
    # is expected, not a regression — say so loudly in both the console
    # output and the artifact so perf trajectories aren't misread.
    warning = None
    if cpus <= 1:
        warning = (
            f"cpus_available == {cpus}: the worker pool cannot fan out, so "
            f"speedup_vs_serial ({speedup:.2f}x) measures scheduling "
            "overhead, not parallel throughput; do not read this run as a "
            "perf regression"
        )
        print(f"WARNING: {warning}")

    payload = {
        "benchmark": "parallel_sweep",
        "description": (
            "wall time of the full strategy sweep grid: serial in-process "
            "loop vs. the fault-tolerant executor at one and at N workers; "
            "speedup is bounded above by cpus_available"
        ),
        "smoke": SMOKE,
        "strategies": STRATEGIES,
        "dimensions": DIMENSIONS,
        "repeats": REPEATS,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "cpus_available": cpus,
        "warning": warning,
        "manifest": build_manifest(extra={"benchmark": "parallel_sweep"}),
        "results": {
            "serial_seconds": round(serial_seconds, 6),
            "executor_1_seconds": round(one_seconds, 6),
            f"executor_{JOBS}_seconds": round(n_seconds, 6),
            "executor_overhead_vs_serial": round(overhead, 3),
            "speedup_vs_serial": round(speedup, 3),
            "rows": serial_rows,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
