"""A4 — ablation: generic BFS frontier sweep vs the hypercube strategies.

The frontier sweep works on *any* connected graph (guard the BFS boundary,
release per node).  On the hypercube it exposes a measured finding: the
per-node release granularity makes it slightly thriftier with agents than
Algorithm CLEAN (e.g. 24 vs 26 at d=6, 79 vs 92 at d=8) while staying in
the same Θ(C(d, d/2)) order and using *fewer* total moves — CLEAN's extra
cost is its synchronizer walk, the price of whiteboard-only coordination.
The bench quantifies the comparison and exercises the sweep on non-
hypercube topologies (grids, rings, random trees) where the paper's
strategies do not apply at all.
"""

from repro.analysis.counting import central_binomial
from repro.analysis.formulas import clean_peak_agents
from repro.analysis.verify import ScheduleVerifier
from repro.core.strategy import get_strategy
from repro.search.frontier_sweep import bfs_boundary_width, frontier_sweep_schedule
from repro.topology.generic import grid_graph, hypercube_graph, ring_graph, tree_graph

DIMS = (3, 4, 5, 6, 7, 8)


def hypercube_comparison():
    rows = {}
    for d in DIMS:
        g = hypercube_graph(d)
        sweep = frontier_sweep_schedule(g)
        clean = get_strategy("clean").run(d)
        if d <= 6:
            assert ScheduleVerifier(g).verify(sweep).ok
        rows[d] = (
            sweep.team_size,
            sweep.total_moves,
            clean.team_size,
            clean.total_moves,
        )
    return rows


def test_ablation_frontier_vs_clean(benchmark, report):
    rows = benchmark.pedantic(hypercube_comparison, rounds=1, iterations=1)

    lines = [
        f"{'d':>3} {'frontier a/m':>14} {'clean a/m':>12} {'C(d,d/2)':>9}"
    ]
    for d, (fs_team, fs_moves, cl_team, cl_moves) in rows.items():
        # the measured finding: per-node releases never need MORE agents
        # than CLEAN's level passes, and stay in the central-binomial order
        assert fs_team <= cl_team
        assert fs_team >= central_binomial(d)
        assert cl_team == clean_peak_agents(d)
        lines.append(
            f"{d:>3} {f'{fs_team}/{fs_moves}':>14} {f'{cl_team}/{cl_moves}':>12} "
            f"{central_binomial(d):>9}"
        )
    report("ablation_frontier_vs_clean", "\n".join(lines))


def test_ablation_generic_topologies(benchmark, report):
    """The sweep decontaminates arbitrary topologies (where the paper's
    strategies are undefined) with boundary-width-bounded teams."""
    graphs = [
        grid_graph(4, 4),
        grid_graph(2, 10),
        ring_graph(16),
        tree_graph([0, 0, 1, 1, 2, 2, 3, 3, 4, 4]),
    ]

    def measure():
        out = {}
        for g in graphs:
            schedule = frontier_sweep_schedule(g)
            assert ScheduleVerifier(g).verify(schedule).ok
            out[g.name] = (
                g.n,
                schedule.team_size,
                bfs_boundary_width(g),
                schedule.total_moves,
            )
        return out

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'graph':<12} {'n':>4} {'team':>5} {'width':>6} {'moves':>6}"]
    for name, (n, team, width, moves) in measured.items():
        assert team <= width + 1
        lines.append(f"{name:<12} {n:>4} {team:>5} {width:>6} {moves:>6}")
    report("ablation_generic_topologies", "\n".join(lines))
