"""Perf — discrete-event engine throughput (regression tracking).

Not a paper artifact: tracks the simulator's own performance so substrate
regressions show up in the benchmark history.  Measures events/second on
the visibility protocol (the wake-heavy worst case: every agent blocks on
a squad predicate) and on the cloning protocol (spawn-heavy), plus the
state layer's per-move cost: replaying the CLEAN strategy's schedule on a
:class:`~repro.sim.contamination.ContaminationMap` with a contiguity check
after every move, incremental (bitset) vs. reference (per-move BFS) paths.

Run ``python benchmarks/bench_engine_throughput.py`` to sweep d=6..13 and
record before/after moves/sec into ``BENCH_engine_throughput.json`` at the
repo root.
"""

import json
import time
from pathlib import Path

from repro.core.strategy import get_strategy
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.contamination import ContaminationMap
from repro.topology.hypercube import Hypercube

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_throughput.json"

#: move budget for the reference (per-move BFS) path — at d=13 the slow
#: path manages only a few hundred moves/sec, so it is sampled, not run to
#: completion; throughput extrapolates linearly (every move pays the BFS).
SLOW_PATH_MOVE_BUDGET = 1500


def contiguity_checked_replay(dimension: int, incremental: bool, max_moves=None):
    """Replay the CLEAN schedule with ``is_contiguous()`` after every move.

    Returns ``(moves_replayed, seconds)``.  This is exactly the engine's
    per-move hot path (state evolution + contiguity predicate) without the
    event-loop overhead masking the state layer's cost.
    """
    schedule = get_strategy("clean").run(dimension)
    cmap = ContaminationMap(
        Hypercube(dimension), strict=False, incremental=incremental
    )
    for _ in range(max(schedule.team_size, 1)):
        cmap.place_agent(0)
    moves = schedule.moves
    if max_moves is not None:
        moves = moves[:max_moves]
    start = time.perf_counter()
    for move in moves:
        cmap.move_agent(move.src, move.dst)
        cmap.is_contiguous()
    elapsed = time.perf_counter() - start
    assert cmap.is_contiguous()
    return len(moves), elapsed


def test_engine_throughput_visibility(benchmark):
    result = benchmark(run_visibility_protocol, 6)
    assert result.ok
    assert result.event_count > 0


def test_engine_throughput_cloning(benchmark):
    result = benchmark(run_cloning_protocol, 7)
    assert result.ok
    assert result.team_size == 64


def test_engine_throughput_random_delays(benchmark):
    from repro.sim.scheduling import RandomDelay

    def run():
        return run_visibility_protocol(5, delay=RandomDelay(seed=1))

    result = benchmark(run)
    assert result.ok


def test_incremental_contiguity_throughput(benchmark):
    """The incremental path replays a full d=9 run with per-move checks."""
    moves, _ = benchmark.pedantic(
        contiguity_checked_replay, args=(9, True), rounds=1, iterations=1
    )
    assert moves > 0


def test_incremental_beats_reference_at_d10():
    """Acceptance gate: >= 5x moves/sec over the per-move BFS at d >= 10."""
    sample = 1000
    fast_moves, fast_time = contiguity_checked_replay(10, True)
    slow_moves, slow_time = contiguity_checked_replay(10, False, max_moves=sample)
    fast_rate = fast_moves / fast_time
    slow_rate = slow_moves / slow_time
    assert fast_rate >= 5 * slow_rate, (
        f"incremental {fast_rate:,.0f} moves/s vs reference {slow_rate:,.0f}"
    )


def main() -> None:
    """Sweep d=6..13 and write before/after numbers to the JSON artifact."""
    records = []
    for dimension in range(6, 14):
        fast_moves, fast_time = contiguity_checked_replay(dimension, True)
        slow_moves, slow_time = contiguity_checked_replay(
            dimension, False, max_moves=SLOW_PATH_MOVE_BUDGET
        )
        fast_rate = fast_moves / fast_time
        slow_rate = slow_moves / slow_time
        records.append(
            {
                "dimension": dimension,
                "nodes": 1 << dimension,
                "total_moves": fast_moves,
                "before_moves_per_sec": round(slow_rate, 1),
                "before_sampled_moves": slow_moves,
                "after_moves_per_sec": round(fast_rate, 1),
                "speedup": round(fast_rate / slow_rate, 2),
            }
        )
        print(
            f"d={dimension:>2} n={1 << dimension:>5} moves={fast_moves:>6} "
            f"before={slow_rate:>10,.0f}/s after={fast_rate:>10,.0f}/s "
            f"speedup={fast_rate / slow_rate:>7.1f}x"
        )
    from repro.obs import build_manifest

    payload = {
        "benchmark": "engine_throughput_contiguity",
        "description": (
            "CLEAN-schedule replay with is_contiguous() after every move: "
            "reference per-move BFS (before) vs incremental bitset state "
            "(after); before-rates sampled over the first "
            f"{SLOW_PATH_MOVE_BUDGET} moves"
        ),
        "check_contiguity": True,
        "manifest": build_manifest(
            delay=None,
            extra={"benchmark": "engine_throughput_contiguity"},
        ),
        "results": records,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
