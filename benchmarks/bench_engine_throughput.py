"""Perf — discrete-event engine throughput (regression tracking).

Not a paper artifact: tracks the simulator's own performance so substrate
regressions show up in the benchmark history.  Measures events/second on
the visibility protocol (the wake-heavy worst case: every agent blocks on
a squad predicate) and on the cloning protocol (spawn-heavy).
"""

from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol


def test_engine_throughput_visibility(benchmark):
    result = benchmark(run_visibility_protocol, 6)
    assert result.ok
    assert result.event_count > 0


def test_engine_throughput_cloning(benchmark):
    result = benchmark(run_cloning_protocol, 7)
    assert result.ok
    assert result.team_size == 64


def test_engine_throughput_random_delays(benchmark):
    from repro.sim.scheduling import RandomDelay

    def run():
        return run_visibility_protocol(5, delay=RandomDelay(seed=1))

    result = benchmark(run)
    assert result.ok
