"""E6 — Theorem 8: the visibility strategy performs O(n log n) moves.

Exact check against both accountings of the proof — per-leaf
(``sum_l l C(d-1, l-1) = (n/4)(log n + 1)``) and per-edge (squad sizes
summed over tree edges) — plus the O(n log n) shape and the protocol
plane's agreement under randomized delays.
"""

from repro.analysis import formulas
from repro.analysis.asymptotics import fit_growth, is_bounded_ratio
from repro.core.strategy import get_strategy
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.sim.scheduling import RandomDelay

DIMS = list(range(1, 12))


def measure_moves():
    strategy = get_strategy("visibility")
    return {d: strategy.run(d).total_moves for d in DIMS}


def test_thm8_moves(benchmark, report):
    measured = benchmark(measure_moves)

    lines = [f"{'d':>3} {'n':>6} {'moves':>8} {'(n/4)(d+1)':>11} {'per-edge':>9}"]
    for d in DIMS:
        exact = formulas.visibility_moves_exact(d)
        by_edges = formulas.visibility_moves_by_edges(d)
        assert measured[d] == exact == by_edges
        lines.append(f"{d:>3} {1 << d:>6} {measured[d]:>8} {exact:>11} {by_edges:>9}")

    values = [measured[d] for d in DIMS]
    assert is_bounded_ratio(DIMS, values, lambda d: (1 << d) * d)
    fit = fit_growth(DIMS, values)
    assert abs(fit.exponent_n - 1.0) < 0.1
    lines.append(f"growth fit: {fit.describe()} (paper: O(n log n))")
    report("thm8_moves", "\n".join(lines))


def test_thm8_protocol_move_count_invariant(benchmark):
    """The move count is delay-independent: random asynchrony cannot change
    it (each tree edge carries a fixed squad)."""

    def run_three_seeds():
        return [
            run_visibility_protocol(5, delay=RandomDelay(seed=s)).total_moves
            for s in (1, 2, 3)
        ]

    counts = benchmark.pedantic(run_three_seeds, rounds=1, iterations=1)
    assert counts == [formulas.visibility_moves_exact(5)] * 3
