"""A2 — ablation: the O(log n) memory claims (Section 2).

"O(log n) bits suffice for all our algorithms" — for both the whiteboards
and the agents' local memory.  The bench runs the real protocols with
bit-accounted whiteboards across growing dimensions and checks the peak
usage grows additively (counter widths), not multiplicatively, with n.
"""

from repro.protocols.clean_protocol import run_clean_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol

DIMS = (3, 4, 5, 6)


def measure_peaks():
    out = {}
    for d in DIMS:
        vis = run_visibility_protocol(d)
        assert vis.ok
        out[("visibility", d)] = vis.peak_whiteboard_bits
    for d in DIMS[:-1]:  # clean is heavier to simulate
        cln = run_clean_protocol(d)
        assert cln.ok
        out[("clean", d)] = cln.peak_whiteboard_bits
    return out


def test_memory_bits_logarithmic(benchmark, report):
    peaks = benchmark.pedantic(measure_peaks, rounds=1, iterations=1)

    lines = [f"{'protocol':<12} {'d':>3} {'n':>5} {'peak wb bits':>13}"]
    for (proto, d), bits in sorted(peaks.items()):
        lines.append(f"{proto:<12} {d:>3} {1 << d:>5} {bits:>13}")

    # doubling n (d -> d+1) adds only O(1) bits — counter widths, never
    # anything proportional to n
    for proto, dims in (("visibility", DIMS), ("clean", DIMS[:-1])):
        series = [peaks[(proto, d)] for d in dims]
        for a, b in zip(series, series[1:]):
            assert b - a <= 8, (proto, series)

    # absolute budget: fixed key overhead + c * log n enforced in-protocol
    vis = run_visibility_protocol(6, whiteboard_capacity_bits=16 * 8 + 8 * 6)
    assert vis.ok
    report("memory_bits", "\n".join(lines))


def test_agent_memory_is_small(benchmark):
    """Agents never store more than O(log n) bits of local state."""

    def run():
        return run_visibility_protocol(6)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.peak_agent_memory_bits <= 128
