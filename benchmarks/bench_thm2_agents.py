"""E1 — Theorem 2 + Lemmas 3/4: CLEAN's team size.

Measures the team hired by the simulated strategy across dimensions and
checks it equals the proof-internal closed form
``max(d+1, max_l [C(d,l+1) + C(d-1,l-1) + 1])`` exactly, that the
per-level extra-agent requests match Lemma 3, that the maximizing levels
are the central ones (Lemma 4), and that the asymptotic order is
``Theta(C(d, d/2))`` — the paper labels this ``O(n / log n)``; the
measured growth exponent (``~ n / sqrt(log n)``) is recorded in the
report and discussed in EXPERIMENTS.md.
"""

from repro.analysis import formulas
from repro.analysis.asymptotics import fit_growth
from repro.analysis.counting import central_binomial
from repro.core.strategy import get_strategy

DIMS = list(range(1, 11))


def measure_teams():
    strategy = get_strategy("clean")
    out = {}
    for d in DIMS:
        schedule = strategy.run(d)
        out[d] = (schedule.team_size, dict(schedule.metadata["extras_per_level"]))
    return out


def test_thm2_team_size(benchmark, report):
    measured = benchmark(measure_teams)

    lines = [f"{'d':>3} {'n':>6} {'team':>6} {'formula':>8} {'n/log n':>9} {'C(d,d/2)':>9}"]
    for d in DIMS:
        team, extras = measured[d]
        assert team == formulas.clean_peak_agents(d)
        for level, count in extras.items():
            assert count == formulas.extra_agents_for_level(d, level)
        lines.append(
            f"{d:>3} {1 << d:>6} {team:>6} {formulas.clean_peak_agents(d):>8} "
            f"{formulas.n_over_log_n(d):>9.1f} {central_binomial(d):>9}"
        )

    # Lemma 4: for even d the peak is at l = d/2 - 1 and l = d/2
    for d in (6, 8, 10):
        assert set(formulas.clean_peak_agents_maximizers(d)) == {d // 2 - 1, d // 2}

    # growth: Theta(n / sqrt(log n)) — exponent of log should be ~ -0.5
    dims = list(range(4, 18))
    fit = fit_growth(dims, [formulas.clean_peak_agents(d) for d in dims])
    assert abs(fit.exponent_n - 1.0) < 0.05
    assert -0.8 < fit.exponent_log < -0.3
    lines.append(f"growth fit: {fit.describe()}")
    lines.append("paper label: O(n / log n); measured order: n / sqrt(log n)")
    report("thm2_agents", "\n".join(lines))
