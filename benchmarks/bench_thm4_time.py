"""E3 — Theorem 4: CLEAN takes O(n log n) ideal time.

"The cleaning process is carried out sequentially by the synchronizer; the
time required is then equal to the number of moves of the synchronizer" —
we measure the schedule makespan (with the concurrent dispatch/return
traffic overlapped) and check it is Theta(synchronizer moves) and
O(n log n), and additionally confirm the asynchronous protocol's makespan
under unit delays lands in the same order.
"""

from repro.analysis.asymptotics import fit_growth, is_bounded_ratio
from repro.core.states import AgentRole
from repro.core.strategy import get_strategy

DIMS = list(range(2, 11))


def measure_makespans():
    strategy = get_strategy("clean")
    out = {}
    for d in DIMS:
        schedule = strategy.run(d)
        out[d] = (
            schedule.makespan,
            schedule.moves_by_role()[AgentRole.SYNCHRONIZER],
        )
    return out


def test_thm4_ideal_time(benchmark, report):
    measured = benchmark(measure_makespans)

    lines = [f"{'d':>3} {'n':>6} {'makespan':>9} {'sync moves':>11} {'ratio':>7}"]
    for d in DIMS:
        makespan, sync_moves = measured[d]
        # sequential coordination: the synchronizer's walk dominates time
        assert sync_moves <= makespan <= 3 * sync_moves + 2 * d
        lines.append(
            f"{d:>3} {1 << d:>6} {makespan:>9} {sync_moves:>11} "
            f"{makespan / max(1, sync_moves):>7.3f}"
        )

    spans = [measured[d][0] for d in DIMS]
    assert is_bounded_ratio(DIMS, spans, lambda d: (1 << d) * d)
    fit = fit_growth(DIMS, spans)
    # finite-size bias pulls the exponent slightly below 1 on d <= 10
    assert abs(fit.exponent_n - 1.0) < 0.2
    lines.append(f"makespan growth fit: {fit.describe()} (paper: O(n log n))")
    report("thm4_time", "\n".join(lines))


def test_thm4_protocol_agrees(benchmark):
    """The whiteboard protocol under unit delays has makespan of the same
    order as the schedule plane (coordination overhead is a constant
    factor)."""
    from repro.protocols.clean_protocol import run_clean_protocol

    d = 4
    result = benchmark.pedantic(run_clean_protocol, args=(d,), rounds=1, iterations=1)
    plane = get_strategy("clean").run(d).makespan
    assert result.ok
    assert plane <= result.makespan <= 6 * plane
