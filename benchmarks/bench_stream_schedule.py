"""Perf — the bounded-memory chunk-stream pipeline at paper scale.

Not a paper artifact: quantifies what the chunk plane buys.  Three
measurements, one JSON artifact:

* ``stream_verify`` — the headline number: a CLEAN schedule at d=18
  (262144 nodes, ~3.7M moves) generated, streamed and batch-verified in
  one pass without ever materializing the move plane; reports wall time
  and peak RSS.  Materialized, the same schedule is millions of ``Move``
  objects — more memory than the whole streaming run by orders of
  magnitude;
* ``memory``       — ``tracemalloc`` peaks of the monolithic pipeline
  (generate → compile → verify) vs. the streaming one at a mid
  dimension, asserting the streaming peak is a fraction of the
  monolithic one;
* ``chunked_cache`` — cold (generate + stream-to-disk) vs. warm (stream
  off the v2 chunked blob) wall time with the per-chunk hit/store
  counters, asserting the warm bytes equal the cold bytes.

Run ``python benchmarks/bench_stream_schedule.py`` to measure and write
``BENCH_stream_schedule.json`` at the repo root.  Set
``STREAM_SCHEDULE_SMOKE=1`` for the CI smoke mode (small dimensions, no
timing thresholds — shared runners jitter too much for hard perf gates
there; the full mode asserts the memory ratio and warm speedup floors).
"""

import json
import os
import resource
import tempfile
import time
import tracemalloc
from pathlib import Path

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream_schedule.json"

SMOKE = bool(os.environ.get("STREAM_SCHEDULE_SMOKE"))

STREAM_STRATEGY = "clean"
STREAM_DIMENSION = 8 if SMOKE else 18
MEMORY_DIMENSION = 8 if SMOKE else 12
CACHE_DIMENSION = 6 if SMOKE else 12
CHUNK_MOVES = 4096 if SMOKE else 65536

#: full-mode acceptance floors (smoke mode only checks correctness)
MIN_MEMORY_RATIO = 3.0
MIN_WARM_SPEEDUP = 1.5


def peak_rss_mb() -> float:
    """Process high-water RSS in MiB (Linux ru_maxrss is in KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def stream_verify():
    """The headline: generate + verify at d=18, never the move plane."""
    from repro.core.strategy import get_strategy
    from repro.fastpath import batch_verify_chunks
    from repro.topology.hypercube import Hypercube

    strategy = get_strategy(STREAM_STRATEGY)
    start = time.perf_counter()
    report = batch_verify_chunks(
        strategy.generate_chunks(Hypercube(STREAM_DIMENSION), CHUNK_MOVES)
    )
    seconds = time.perf_counter() - start
    assert report.ok, report.violations
    return {
        "strategy": STREAM_STRATEGY,
        "dimension": STREAM_DIMENSION,
        "nodes": 1 << STREAM_DIMENSION,
        "moves": report.total_moves,
        "makespan": report.makespan,
        "team_size": report.team_size,
        "chunk_moves": CHUNK_MOVES,
        "seconds": round(seconds, 3),
        "moves_per_second": round(report.total_moves / seconds),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def memory_comparison():
    """tracemalloc peaks: monolithic vs. streaming pipeline."""
    from repro.core.strategy import get_strategy
    from repro.fastpath import (
        CompiledSchedule,
        batch_verify,
        batch_verify_chunks,
    )
    from repro.topology.hypercube import Hypercube

    strategy = get_strategy(STREAM_STRATEGY)
    cube = Hypercube(MEMORY_DIMENSION)

    tracemalloc.start()
    mono_report = batch_verify(
        CompiledSchedule.from_schedule(strategy.generate(cube))
    )
    _, mono_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    stream_report = batch_verify_chunks(strategy.generate_chunks(cube, CHUNK_MOVES))
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert stream_report == mono_report, "streaming verdict diverged"
    return {
        "dimension": MEMORY_DIMENSION,
        "moves": mono_report.total_moves,
        "chunk_moves": CHUNK_MOVES,
        "monolithic_peak_bytes": mono_peak,
        "streaming_peak_bytes": stream_peak,
        "ratio": round(mono_peak / max(stream_peak, 1), 2),
    }


def chunked_cache():
    """Cold stream-to-disk vs. warm stream-off-disk, with counters."""
    from repro.core.strategy import get_strategy
    from repro.fastpath import CompiledSchedule, ScheduleCache

    strategy = get_strategy(STREAM_STRATEGY)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ScheduleCache(Path(tmp))
        start = time.perf_counter()
        cold = list(cache.stream_chunks(strategy, CACHE_DIMENSION, chunk_moves=CHUNK_MOVES))
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = list(cache.stream_chunks(strategy, CACHE_DIMENSION, chunk_moves=CHUNK_MOVES))
        warm_seconds = time.perf_counter() - start
        stats = cache.stats.as_dict()
    assert CompiledSchedule.from_chunks(iter(warm)).to_bytes() == (
        CompiledSchedule.from_chunks(iter(cold)).to_bytes()
    ), "warm chunk stream diverged from cold"
    assert stats["chunk_stores"] == len(cold) and stats["chunk_hits"] == len(warm)
    return {
        "dimension": CACHE_DIMENSION,
        "chunk_moves": CHUNK_MOVES,
        "chunks": len(cold),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
        "stats": stats,
    }


def main() -> None:
    """Measure everything and write the JSON artifact."""
    from repro.obs import build_manifest

    memory = memory_comparison()
    cache = chunked_cache()
    stream = stream_verify()  # last: its RSS high-water mark is the headline

    print(
        f"stream verify {STREAM_STRATEGY} d={stream['dimension']}: "
        f"{stream['moves']} moves in {stream['seconds']}s "
        f"({stream['moves_per_second']}/s), peak RSS {stream['peak_rss_mb']} MiB"
    )
    print(
        f"memory d={memory['dimension']}: monolithic {memory['monolithic_peak_bytes']} B "
        f"vs streaming {memory['streaming_peak_bytes']} B ({memory['ratio']}x)"
    )
    print(
        f"chunked cache d={cache['dimension']}: cold {cache['cold_seconds'] * 1000:.1f} ms, "
        f"warm {cache['warm_seconds'] * 1000:.1f} ms ({cache['warm_speedup']}x), "
        f"{cache['chunks']} chunk(s)"
    )

    if not SMOKE:
        assert memory["ratio"] >= MIN_MEMORY_RATIO, (
            f"streaming peak only {memory['ratio']}x below monolithic "
            f"(floor {MIN_MEMORY_RATIO}x)"
        )
        assert cache["warm_speedup"] >= MIN_WARM_SPEEDUP, (
            f"warm chunk stream only {cache['warm_speedup']}x cold "
            f"(floor {MIN_WARM_SPEEDUP}x)"
        )

    payload = {
        "benchmark": "stream_schedule",
        "description": (
            "bounded-memory chunk pipeline: one-pass generate+verify at d=18 "
            "without materializing the move plane, monolithic vs streaming "
            "tracemalloc peaks, and cold vs warm chunked-cache streaming"
        ),
        "smoke": SMOKE,
        "manifest": build_manifest(extra={"benchmark": "stream_schedule"}),
        "results": {
            "stream_verify": stream,
            "memory": memory,
            "chunked_cache": cache,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
