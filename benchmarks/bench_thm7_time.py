"""E5 — Theorem 7: the visibility strategy cleans in exactly log n steps.

Measured as: the schedule makespan equals d for every dimension; class C_i
is cleaned exactly during wave i (the proof's induction); and the
asynchronous protocol under unit delays reproduces the same makespan —
exponentially faster than CLEAN, which is the headline of Section 4.
"""

from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

DIMS = list(range(1, 11))


def measure():
    strategy = get_strategy("visibility")
    return {d: strategy.run(d) for d in DIMS}


def test_thm7_log_n_steps(benchmark, report):
    schedules = benchmark(measure)

    lines = [f"{'d':>3} {'n':>6} {'steps':>6} {'log n':>6} {'CLEAN steps':>12}"]
    for d in DIMS:
        assert schedules[d].makespan == d
        clean_steps = get_strategy("clean").run(d).makespan
        lines.append(
            f"{d:>3} {1 << d:>6} {schedules[d].makespan:>6} {d:>6} {clean_steps:>12}"
        )
        if d >= 4:
            assert schedules[d].makespan < clean_steps  # exponentially faster

    # proof induction: C_i's (non-leaf) nodes become clean during wave i
    d = 7
    h = Hypercube(d)
    tree = BroadcastTree(d)
    rep = verify_schedule(schedules[d])
    for x in range(h.n):
        if not tree.is_leaf(x):
            assert rep.clean_times[x] == h.class_index(x) + 1

    report("thm7_time", "\n".join(lines))


def test_thm7_protocol_makespan(benchmark):
    d = 6
    result = benchmark.pedantic(run_visibility_protocol, args=(d,), rounds=1, iterations=1)
    assert result.ok
    assert result.makespan == float(d)
