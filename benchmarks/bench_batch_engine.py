"""Perf — the scenario-batch Monte Carlo engine vs. looped engine runs.

Not a paper artifact: quantifies what ``repro.fastpath.batchsim`` buys.
A Monte Carlo campaign over (homebase x delay x intruder) scenarios used
to mean one full discrete-event :class:`~repro.sim.engine.Engine` run
per trial; the batch engine replays the compiled schedule once per
distinct homebase and scores every scenario against the shared
per-time-unit mask timeline.

Two measurements, one JSON artifact:

* ``campaign`` — a 10k-trial visibility d=10 campaign with rotating
  homebases through :func:`~repro.fastpath.batchsim.run_batch`, against
  the scalar baseline extrapolated from timed scripted
  :func:`~repro.sim.replay.execute_schedule_on_engine` runs (the engine
  cannot realistically loop 10k times, which is the point);
* ``crosscheck`` — a seed-randomized sample of trials replayed on the
  real engine, asserting identical capture verdicts and capture times.

Run ``python benchmarks/bench_batch_engine.py`` to measure and write
``BENCH_batch_engine.json`` at the repo root.  Set
``BATCH_ENGINE_SMOKE=1`` for the CI smoke mode (d=5, few trials, no
timing floor — shared runners jitter; the full mode asserts the batch
path is >= 50x the scalar baseline).
"""

import json
import os
import random
import time
from pathlib import Path

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_engine.json"

SMOKE = bool(os.environ.get("BATCH_ENGINE_SMOKE"))

STRATEGY = "visibility"
DIMENSION = 5 if SMOKE else 10
TRIALS = 200 if SMOKE else 10_000
SCALAR_SAMPLE = 5 if SMOKE else 20
CROSSCHECK_SAMPLE = 5 if SMOKE else 10

#: full-mode acceptance floor (smoke mode only checks correctness)
MIN_SPEEDUP = 50.0


def _spec(dimension=None, trials=None):
    from repro.fastpath.batchsim import BatchScenarioSpec

    return BatchScenarioSpec(
        dimension=DIMENSION if dimension is None else dimension,
        strategy=STRATEGY,
        trials=TRIALS if trials is None else trials,
        intruder="reachable",
        delay="random",
        rotate_homebase=True,
        rng_seed=2005,
    )


def _scalar_capture(schedule, topology):
    """One scripted engine run; returns (captured, capture_time)."""
    from repro.sim import replay as replay_mod
    from repro.sim.engine import Engine
    from repro.sim.scheduling import UnitDelay

    per_agent = {}
    for m in schedule.moves:
        per_agent.setdefault(m.agent, []).append(m)
    for moves in per_agent.values():
        moves.sort(key=lambda m: m.time)
    behaviors = [replay_mod._scripted(mv) for _, mv in sorted(per_agent.items())]
    behaviors += [replay_mod._terminator] * max(schedule.team_size - len(per_agent), 0)
    engine = Engine(
        topology,
        behaviors,
        homebase=schedule.homebase,
        delay=UnitDelay(),
        global_clock=True,
        intruder="reachable",
    )
    capture = []

    def record(event):
        if event.kind == "move" and not capture and engine.intruder.captured:
            capture.append(int(event.time))

    engine.subscribe(record)
    result = engine.run()
    return result.intruder_captured, capture[0] if capture else -1


def timed_campaign():
    """(batch_seconds, result) for the full campaign."""
    from repro.fastpath.batchsim import compile_for_spec, run_batch

    spec = _spec()
    compiled = compile_for_spec(spec)  # timing excludes schedule generation
    start = time.perf_counter()
    result = run_batch(spec, compiled=compiled)
    return time.perf_counter() - start, result


def timed_scalar_baseline(homebases):
    """Best per-trial seconds over sample engine runs of the campaign's
    own homebases (translation included — the scalar path pays it too)."""
    from repro.core.strategy import get_strategy
    from repro.topology.hypercube import Hypercube

    base = get_strategy(STRATEGY).run(DIMENSION)
    topology = Hypercube(DIMENSION)
    per_trial = float("inf")
    for homebase in homebases[:SCALAR_SAMPLE]:
        start = time.perf_counter()
        schedule = base.translated(homebase) if homebase else base
        captured, _ = _scalar_capture(schedule, topology)
        per_trial = min(per_trial, time.perf_counter() - start)
        assert captured
    return per_trial


def crosscheck(result, sample_seed=0):
    """Replay sampled trials on the real engine; verdicts must agree."""
    from repro.core.strategy import get_strategy
    from repro.topology.hypercube import Hypercube

    base = get_strategy(STRATEGY).run(result.spec.dimension)
    topology = Hypercube(result.spec.dimension)
    rng = random.Random(sample_seed)
    indices = rng.sample(range(result.count), min(CROSSCHECK_SAMPLE, result.count))
    for i in indices:
        homebase = result.homebases[i]
        schedule = base.translated(homebase) if homebase else base
        captured, capture_time = _scalar_capture(schedule, topology)
        assert captured == result.captured[i], f"trial {i}: verdict diverged"
        assert capture_time == result.capture_units[i], (
            f"trial {i}: engine captured at {capture_time}, "
            f"batch said {result.capture_units[i]}"
        )
    return len(indices)


def test_batch_matches_scalar_on_sample():
    """Whatever the timings say, batch and engine verdicts must agree."""
    from repro.fastpath.batchsim import run_batch

    result = run_batch(_spec(dimension=4, trials=12))
    from repro.core.strategy import get_strategy
    from repro.topology.hypercube import Hypercube

    base = get_strategy(STRATEGY).run(4)
    topology = Hypercube(4)
    for i in range(result.count):
        schedule = base.translated(result.homebases[i])
        captured, capture_time = _scalar_capture(schedule, topology)
        assert captured == result.captured[i]
        assert capture_time == result.capture_units[i]


def main() -> None:
    """Measure everything and write the JSON artifact."""
    from repro.obs import build_manifest

    batch_seconds, result = timed_campaign()
    scalar_per_trial = timed_scalar_baseline(result.homebases)
    scalar_seconds = scalar_per_trial * result.count
    speedup = scalar_seconds / batch_seconds if batch_seconds else None
    checked = crosscheck(result)

    per_trial_us = batch_seconds / result.count * 1e6
    print(
        f"campaign: {STRATEGY} d={DIMENSION}, {result.count} trials, "
        f"{len(set(result.homebases))} distinct homebases"
    )
    print(f"batch engine  {batch_seconds * 1000:9.1f} ms  ({per_trial_us:.1f} us/trial)")
    print(
        f"scalar loop   {scalar_seconds * 1000:9.1f} ms  "
        f"(extrapolated from {SCALAR_SAMPLE} runs at "
        f"{scalar_per_trial * 1000:.1f} ms/trial)"
    )
    print(f"speedup       {speedup:9.1f}x  (floor {MIN_SPEEDUP}x, smoke={SMOKE})")
    print(f"crosscheck    {checked} sampled trials match the engine exactly")

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"batch engine only {speedup:.1f}x the scalar loop (floor {MIN_SPEEDUP}x)"
        )

    payload = {
        "benchmark": "batch_engine",
        "description": (
            "scenario-batch Monte Carlo campaign via shared per-homebase "
            "mask timelines vs. one scripted discrete-event engine run per "
            "trial, with an engine cross-check on sampled trials"
        ),
        "smoke": SMOKE,
        "strategy": STRATEGY,
        "dimension": DIMENSION,
        "trials": TRIALS,
        "manifest": build_manifest(extra={"benchmark": "batch_engine"}),
        "results": {
            "campaign": {
                "batch_seconds": round(batch_seconds, 6),
                "per_trial_us": round(per_trial_us, 3),
                "scalar_per_trial_seconds": round(scalar_per_trial, 6),
                "scalar_seconds_extrapolated": round(scalar_seconds, 6),
                "speedup": round(speedup, 1),
                "distinct_homebases": len(set(result.homebases)),
                "capture_rate": result.capture_rate(),
                "counters": result.counters,
            },
            "crosscheck": {"sampled_trials": checked, "passed": True},
            "summary": result.summary(),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
