"""E8 — Section 5 synchronous observation.

Claims measured:

1. with synchronous agents (move at round ``t = m(x)``), the visibility
   strategy's schedule is achieved *without* the visibility assumption —
   same agents (n/2), steps (log n) and moves ((n/4)(log n + 1));
2. the equivalence is conditional on synchrony: the same rule under
   asynchronous delays recontaminates (failure-injection sweep).
"""

from repro.analysis import formulas
from repro.core.strategy import get_strategy
from repro.protocols.sync_protocol import run_synchronous_protocol
from repro.sim.scheduling import RandomDelay

DIMS = list(range(1, 10))


def measure():
    sync = get_strategy("synchronous")
    vis = get_strategy("visibility")
    out = {}
    for d in DIMS:
        s, v = sync.run(d), vis.run(d)
        out[d] = ((s.team_size, s.total_moves, s.makespan),
                  (v.team_size, v.total_moves, v.makespan))
    return out


def test_synchronous_equivalence(benchmark, report):
    measured = benchmark(measure)

    lines = [f"{'d':>3} {'n':>6} {'sync a/m/s':>16} {'visibility a/m/s':>18}"]
    for d in DIMS:
        sync_row, vis_row = measured[d]
        assert sync_row == vis_row  # the Section 5 equivalence, exactly
        lines.append(
            f"{d:>3} {1 << d:>6} {'/'.join(map(str, sync_row)):>16} "
            f"{'/'.join(map(str, vis_row)):>18}"
        )
    report("synchronous", "\n".join(lines))


def test_synchronous_protocol_unit_delays(benchmark):
    d = 5
    result = benchmark.pedantic(run_synchronous_protocol, args=(d,), rounds=1, iterations=1)
    assert result.ok
    assert result.makespan == float(d)
    assert result.total_moves == formulas.visibility_moves_exact(d)


def test_synchrony_is_load_bearing(benchmark, report):
    """Under asynchronous delays the clock-driven rule breaks — most random
    schedules recontaminate.  This is why Section 5 restricts the variant
    to the synchronous model."""

    def sweep():
        return [
            run_synchronous_protocol(4, delay=RandomDelay(seed=s, low=0.5, high=3.0))
            for s in range(10)
        ]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    broken = [r for r in outcomes if not r.ok]
    assert len(broken) >= 5
    assert all(not r.monotone for r in broken)
    report(
        "synchronous_async_failure",
        f"{len(broken)}/10 asynchronous runs recontaminated "
        "(synchronous rule without synchrony)",
    )
