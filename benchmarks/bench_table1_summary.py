"""T1 — the Section 1.3 / Section 5 strategy comparison table.

| Strategy    | Agents                    | Time       | Moves      |
|-------------|---------------------------|------------|------------|
| CLEAN       | O(n / log n) [see E1]     | O(n log n) | O(n log n) |
| VISIBILITY  | n/2                       | log n      | O(n log n) |
| CLONING     | n/2                       | log n      | n - 1      |
| SYNCHRONOUS | n/2                       | log n      | O(n log n) |

The bench regenerates all four rows for a sweep of dimensions, verifies
every schedule, checks the exact columns exactly and the asymptotic
columns by bounded-ratio shape.
"""

from repro.analysis import formulas
from repro.analysis.asymptotics import is_bounded_ratio
from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy

DIMS = list(range(2, 10))
NAMES = ["clean", "visibility", "cloning", "synchronous"]


def build_table():
    rows = {}
    for name in NAMES:
        strategy = get_strategy(name)
        for d in DIMS:
            schedule = strategy.run(d)
            assert verify_schedule(schedule).ok
            rows[(name, d)] = (
                schedule.team_size,
                schedule.total_moves,
                schedule.makespan,
            )
    return rows


def render_table(rows) -> str:
    lines = [
        f"{'d':>3} {'n':>5} | " + " | ".join(f"{n:^24}" for n in NAMES),
        f"{'':>3} {'':>5} | " + " | ".join(f"{'agents/moves/steps':^24}" for _ in NAMES),
    ]
    for d in DIMS:
        cells = [
            f"{rows[(n, d)][0]:>7}/{rows[(n, d)][1]:>7}/{rows[(n, d)][2]:>6}"
            for n in NAMES
        ]
        lines.append(f"{d:>3} {1 << d:>5} | " + " | ".join(f"{c:^24}" for c in cells))
    return "\n".join(lines)


def test_table1_summary(benchmark, report):
    rows = benchmark(build_table)

    for d in DIMS:
        # exact columns
        assert rows[("visibility", d)] == (
            formulas.visibility_agents(d),
            formulas.visibility_moves_exact(d),
            d,
        )
        assert rows[("cloning", d)] == (
            formulas.cloning_agents(d),
            formulas.cloning_moves(d),
            d,
        )
        assert rows[("synchronous", d)] == rows[("visibility", d)]
        assert rows[("clean", d)][0] == formulas.clean_peak_agents(d)

    # asymptotic columns: O(n log n) moves for clean/visibility/synchronous
    for name in ("clean", "visibility", "synchronous"):
        moves = [rows[(name, d)][1] for d in DIMS]
        assert is_bounded_ratio(DIMS, moves, lambda d: (1 << d) * d)
    # clean's time O(n log n); visibility's time exactly log n
    times = [rows[("clean", d)][2] for d in DIMS]
    assert is_bounded_ratio(DIMS, times, lambda d: (1 << d) * d)

    # who wins: visibility is ~ sqrt(log n) / 2 times hungrier in agents but
    # a factor ~ n faster; cloning wins moves outright
    d = DIMS[-1]
    assert rows[("visibility", d)][2] < rows[("clean", d)][2]
    assert rows[("clean", d)][0] < rows[("visibility", d)][0]
    assert rows[("cloning", d)][1] < rows[("visibility", d)][1]

    report("table1_summary", render_table(rows))
