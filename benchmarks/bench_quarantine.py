"""A6 — ablation: localized quarantine-and-clean vs full re-sweeps.

Section 1.1 argues cleaning overhead must stay small next to the normal
network load.  This bench sweeps incident sizes on ``H_d`` and compares
the localized operation (guard the quarantine line, sweep only the
infected zone) against the full-network sweeps: traffic scales with the
incident, not with ``n log n``.
"""

from repro.core.strategy import get_strategy
from repro.sim.quarantine import quarantine_and_clean
from repro.topology.generic import hypercube_graph

DIMENSION = 6


def grow_incident(graph, size: int, start: int):
    """A connected infected patch of the requested size (BFS ball)."""
    patch = {start}
    frontier = [start]
    while frontier and len(patch) < size:
        node = frontier.pop(0)
        for y in graph.neighbors(node):
            if y not in patch and len(patch) < size:
                patch.add(y)
                frontier.append(y)
    return patch


def sweep_incident_sizes():
    graph = hypercube_graph(DIMENSION)
    start = graph.n - 1  # incidents grow from the corner farthest from 0
    rows = {}
    for size in (1, 2, 4, 8, 16):
        report = quarantine_and_clean(graph, grow_incident(graph, size, start))
        assert report.ok
        rows[size] = (report.total_agents, report.sweep_team, report.moves)
    return rows


def test_quarantine_locality(benchmark, report):
    rows = benchmark.pedantic(sweep_incident_sizes, rounds=1, iterations=1)

    full_clean = get_strategy("clean").run(DIMENSION)
    full_vis = get_strategy("visibility").run(DIMENSION)

    lines = [
        f"incidents on H_{DIMENSION} (n={1 << DIMENSION}); full sweeps: "
        f"clean {full_clean.total_moves} moves, visibility {full_vis.total_moves} moves",
        f"{'|C|':>4} {'agents':>7} {'sweepers':>9} {'moves':>6} {'vs full clean':>14}",
    ]
    previous_moves = 0
    for size, (agents, sweepers, moves) in rows.items():
        assert moves < full_clean.total_moves
        assert moves >= previous_moves  # cost grows with the incident
        previous_moves = moves
        lines.append(
            f"{size:>4} {agents:>7} {sweepers:>9} {moves:>6} "
            f"{moves / full_clean.total_moves:>13.1%}"
        )

    # the headline: a quarter-cube incident still costs a fraction of a
    # full sweep's traffic
    assert rows[16][2] < full_clean.total_moves / 3
    report("quarantine_locality", "\n".join(lines))
