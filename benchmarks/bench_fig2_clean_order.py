"""F2 — Figure 2: the order in which Algorithm CLEAN decontaminates H_4.

Regenerates the figure's node numbering (first-visit ranks) and checks its
defining structure: strictly sequential cleaning, level by level, visiting
level 1 in the root's child order and each deeper level grouped by parent
in increasing (lexicographic) order — the order Lemma 1 requires.
"""

from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube
from repro.viz.order_render import render_cleaning_order

FIGURE_DIMENSION = 4  # the paper draws H_4


def generate_and_verify(d: int):
    schedule = get_strategy("clean").run(d)
    report = verify_schedule(schedule)
    assert report.ok
    return schedule


def test_fig2_clean_order(benchmark, report):
    schedule = benchmark(generate_and_verify, FIGURE_DIMENSION)
    h = Hypercube(FIGURE_DIMENSION)
    tree = BroadcastTree(h)

    order = schedule.first_visit_order()
    assert order[0] == 0  # the homebase is "1" in the figure
    assert sorted(order) == list(range(16))

    # level by level ...
    levels = [h.level(x) for x in order]
    assert levels == sorted(levels)
    # ... level 1 in the root's child order T(3), T(2), T(1), T(0)
    assert [x for x in order if h.level(x) == 1] == [1, 2, 4, 8]
    # ... deeper levels grouped by parent, parents in increasing order
    for level in (2, 3):
        nodes = [x for x in order if h.level(x) == level]
        parents = [tree.parent(x) for x in nodes]
        assert parents == sorted(parents)

    report("fig2_clean_order_H4", render_cleaning_order(schedule))


def test_fig2_sequentiality(benchmark):
    """CLEAN is sequential: at most one *deploying* traversal per time unit
    (dispatch/return traffic may overlap the synchronizer's walk)."""
    schedule = benchmark(generate_and_verify, FIGURE_DIMENSION)
    from repro.core.schedule import MoveKind

    per_time = {}
    for m in schedule.moves:
        if m.kind is MoveKind.DEPLOY:
            per_time.setdefault(m.time, []).append(m)
    assert all(len(moves) == 1 for moves in per_time.values())
