"""Perf — compiled schedules, the schedule cache, and the batch verifier.

Not a paper artifact: quantifies what the ``repro.fastpath`` plane buys.
Three measurements, one JSON artifact:

* ``compile``   — byte size of the columnar blob vs. the schedule's JSON
  form, per strategy (the compiled form is what cache entries store);
* ``sweep``     — wall time of the full sweep grid against an empty
  cache directory (*cold*: generate + compile + store + batch-verify)
  and again against the populated one (*warm*: deserialize + measure +
  batch-verify), asserting the warm rows match a cache-less serial
  sweep cell-for-cell;
* ``verify``    — one large schedule replayed by the classic
  :class:`~repro.analysis.verify.ScheduleVerifier` and by
  :func:`~repro.fastpath.batch_verify`, asserting identical verdicts.

Run ``python benchmarks/bench_schedule_cache.py`` to measure and write
``BENCH_schedule_cache.json`` at the repo root.  Set
``SCHEDULE_CACHE_SMOKE=1`` for the CI smoke mode (small grid, no timing
thresholds — shared runners jitter too much for hard perf gates there;
the full mode asserts warm >= 5x cold and batch >= 10x classic).
"""

import json
import os
import tempfile
import time
from pathlib import Path

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_schedule_cache.json"

SMOKE = bool(os.environ.get("SCHEDULE_CACHE_SMOKE"))

STRATEGIES = ["clean", "visibility", "cloning"]
DIMENSIONS = [4, 5] if SMOKE else [8, 10, 12]
VERIFY_STRATEGY = "clean"
VERIFY_DIMENSION = 6 if SMOKE else 13
REPEATS = 1 if SMOKE else 3

#: full-mode acceptance floors (smoke mode only checks correctness)
MIN_WARM_SPEEDUP = 5.0
MIN_VERIFY_SPEEDUP = 10.0


def _flat(rows):
    return [row.as_flat_dict() for row in rows]


def compile_ratios():
    """Per-strategy blob-vs-JSON sizes at the largest grid dimension."""
    from repro.core.strategy import get_strategy
    from repro.fastpath import CompiledSchedule

    d = max(DIMENSIONS)
    out = {}
    for name in STRATEGIES:
        schedule = get_strategy(name).run(d)
        compiled = CompiledSchedule.from_schedule(schedule)
        blob = compiled.to_bytes()
        json_bytes = len(schedule.to_json().encode("utf-8"))
        out[name] = {
            "dimension": d,
            "moves": compiled.total_moves,
            "blob_bytes": len(blob),
            "json_bytes": json_bytes,
            "bytes_per_move": round(len(blob) / max(compiled.total_moves, 1), 2),
            "json_over_blob": round(json_bytes / len(blob), 2),
        }
    return out


def timed_sweep(cache_dir):
    """One full grid against ``cache_dir``; returns (seconds, rows, stats)."""
    from repro.analysis.sweeps import run_sweep
    from repro.fastpath import ScheduleCache

    cache = ScheduleCache(Path(cache_dir))
    start = time.perf_counter()
    _, rows = run_sweep(STRATEGIES, DIMENSIONS, cache=cache)
    return time.perf_counter() - start, _flat(rows), cache.stats.as_dict()


def timed_verify():
    """Classic vs. batch verification of one large schedule."""
    from repro.analysis.verify import verify_schedule
    from repro.core.strategy import get_strategy
    from repro.fastpath import CompiledSchedule, batch_verify

    schedule = get_strategy(VERIFY_STRATEGY).run(VERIFY_DIMENSION)
    compiled = CompiledSchedule.from_schedule(schedule)

    classic_best = batch_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        classic = verify_schedule(schedule)
        classic_best = min(classic_best, time.perf_counter() - start)
        start = time.perf_counter()
        batch = batch_verify(compiled)
        batch_best = min(batch_best, time.perf_counter() - start)

    for field in ("monotone", "contiguous", "complete", "intruder_captured", "ok"):
        assert getattr(classic, field) == getattr(batch, field), field
    return classic_best, batch_best, compiled.total_moves


def test_warm_rows_match_cacheless():
    """Whatever the timings say, the cached tables must agree."""
    global DIMENSIONS
    saved = DIMENSIONS
    DIMENSIONS = [3, 4]  # keep the correctness check fast
    try:
        from repro.analysis.sweeps import run_sweep

        _, plain_rows = run_sweep(STRATEGIES, DIMENSIONS)
        with tempfile.TemporaryDirectory() as tmp:
            _, cold_rows, cold_stats = timed_sweep(tmp)
            _, warm_rows, warm_stats = timed_sweep(tmp)
        assert cold_rows == _flat(plain_rows)
        assert warm_rows == _flat(plain_rows)
        assert cold_stats["misses"] == len(cold_rows)
        assert warm_stats["hits"] == len(warm_rows)
    finally:
        DIMENSIONS = saved


def main() -> None:
    """Measure everything and write the JSON artifact."""
    from repro.obs import build_manifest

    ratios = compile_ratios()

    with tempfile.TemporaryDirectory() as tmp:
        cold_seconds, cold_rows, cold_stats = timed_sweep(tmp)
        warm_seconds, warm_rows, warm_stats = timed_sweep(tmp)
        for _ in range(REPEATS - 1):
            seconds, rows, _ = timed_sweep(tmp)
            warm_seconds = min(warm_seconds, seconds)
            assert rows == warm_rows
    assert warm_rows == cold_rows, "warm table diverged from cold"
    assert cold_stats["misses"] == len(cold_rows) and cold_stats["hits"] == 0
    assert warm_stats["hits"] == len(warm_rows) and warm_stats["misses"] == 0

    classic_seconds, batch_seconds, verify_moves = timed_verify()

    warm_speedup = cold_seconds / warm_seconds if warm_seconds else None
    verify_speedup = classic_seconds / batch_seconds if batch_seconds else None
    print(f"grid: {len(STRATEGIES)} strategies x d={DIMENSIONS}")
    print(f"cold sweep    {cold_seconds * 1000:9.1f} ms  ({cold_stats})")
    print(f"warm sweep    {warm_seconds * 1000:9.1f} ms  (speedup {warm_speedup:.1f}x)")
    print(
        f"verify d={VERIFY_DIMENSION} ({verify_moves} moves): "
        f"classic {classic_seconds * 1000:.1f} ms, "
        f"batch {batch_seconds * 1000:.1f} ms  (speedup {verify_speedup:.1f}x)"
    )
    for name, ratio in ratios.items():
        print(
            f"compile {name:<12} d={ratio['dimension']}: "
            f"{ratio['blob_bytes']} B blob vs {ratio['json_bytes']} B JSON "
            f"({ratio['json_over_blob']}x)"
        )

    if not SMOKE:
        assert warm_speedup >= MIN_WARM_SPEEDUP, (
            f"warm sweep only {warm_speedup:.1f}x cold (floor {MIN_WARM_SPEEDUP}x)"
        )
        assert verify_speedup >= MIN_VERIFY_SPEEDUP, (
            f"batch verify only {verify_speedup:.1f}x classic "
            f"(floor {MIN_VERIFY_SPEEDUP}x)"
        )

    payload = {
        "benchmark": "schedule_cache",
        "description": (
            "columnar compiled-schedule sizes, cold vs warm sweep wall time "
            "against a content-addressed schedule cache, and the mask-kernel "
            "batch verifier vs the classic replay verifier"
        ),
        "smoke": SMOKE,
        "strategies": STRATEGIES,
        "dimensions": DIMENSIONS,
        "repeats": REPEATS,
        "manifest": build_manifest(extra={"benchmark": "schedule_cache"}),
        "results": {
            "compile": ratios,
            "sweep": {
                "cold_seconds": round(cold_seconds, 6),
                "warm_seconds": round(warm_seconds, 6),
                "warm_speedup": round(warm_speedup, 3),
                "cold_stats": cold_stats,
                "warm_stats": warm_stats,
            },
            "verify": {
                "strategy": VERIFY_STRATEGY,
                "dimension": VERIFY_DIMENSION,
                "moves": verify_moves,
                "classic_seconds": round(classic_seconds, 6),
                "batch_seconds": round(batch_seconds, 6),
                "batch_speedup": round(verify_speedup, 3),
            },
            "rows": cold_rows,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
