"""F4 — Figure 4: the cleaning order of CLEAN WITH VISIBILITY on H_4.

Unlike Figure 2 the cleaning is not sequential: whole groups of nodes are
cleaned simultaneously.  The bench regenerates the wave table and checks
the figure's structure: the nodes first visited at time t+1 are exactly
the tree children of class C_t, and every class C_i is fully guarded by
time i (Theorem 7's induction, drawn as the figure's simultaneous groups).
"""

from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube
from repro.viz.order_render import render_cleaning_order, render_wave_table

FIGURE_DIMENSION = 4


def generate_and_verify(d: int):
    schedule = get_strategy("visibility").run(d)
    assert verify_schedule(schedule).ok
    return schedule


def test_fig4_visibility_order(benchmark, report):
    schedule = benchmark(generate_and_verify, FIGURE_DIMENSION)
    h = Hypercube(FIGURE_DIMENSION)
    tree = BroadcastTree(h)

    times = schedule.visit_time()
    # nodes first visited at time t+1 = children of all C_t nodes
    for t in range(FIGURE_DIMENSION):
        arrivals = {x for x, when in times.items() if when == t + 1}
        expected = {c for p in h.class_members(t) for c in tree.children(p)}
        assert arrivals == expected

    # several nodes cleaned simultaneously (the figure's defining feature)
    assert schedule.peak_traveling_agents() >= 4

    report(
        "fig4_visibility_order_H4",
        render_cleaning_order(schedule) + "\n\n" + render_wave_table(schedule),
    )


def test_fig4_wave_census(benchmark):
    """Wave sizes: wave i carries the squads of every C_i node."""
    from repro.analysis.formulas import agents_for_type

    schedule = benchmark(generate_and_verify, FIGURE_DIMENSION)
    tree = BroadcastTree(FIGURE_DIMENSION)
    h = Hypercube(FIGURE_DIMENSION)
    for wave, size in schedule.metadata["wave_sizes"].items():
        expected = sum(
            agents_for_type(tree.node_type(x)) for x in h.class_members(wave)
        )
        assert size == expected
