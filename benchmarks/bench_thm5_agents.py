"""E4 — Theorem 5: the visibility strategy uses exactly n/2 agents.

Measured on both execution planes: the schedule generator's team and the
asynchronous protocol's spawned-agent count, plus the flow argument of the
proof (a type-T(k) node receives 2^{k-1} agents — exactly what it forwards).
"""

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.strategy import get_strategy
from repro.protocols.visibility_protocol import run_visibility_protocol
from repro.topology.broadcast_tree import BroadcastTree

DIMS = list(range(1, 11))


def measure_teams():
    strategy = get_strategy("visibility")
    out = {}
    for d in DIMS:
        schedule = strategy.run(d)
        assert verify_schedule(schedule).ok
        out[d] = schedule
    return out


def test_thm5_agents(benchmark, report):
    schedules = benchmark(measure_teams)

    lines = [f"{'d':>3} {'n':>6} {'agents':>7} {'n/2':>6}"]
    for d in DIMS:
        schedule = schedules[d]
        assert schedule.team_size == (1 << d) // 2
        assert schedule.team_size == formulas.visibility_agents(d)
        lines.append(f"{d:>3} {1 << d:>6} {schedule.team_size:>7} {(1 << d) // 2:>6}")

    # the flow argument: the squad entering a T(k) node equals the sum of
    # squads it forwards, for every node of the cube
    d = 8
    tree = BroadcastTree(d)
    crossings = {}
    for m in schedules[d].moves:
        crossings[(m.src, m.dst)] = crossings.get((m.src, m.dst), 0) + 1
    for parent, child in tree.edges():
        k = tree.node_type(child)
        assert crossings[(parent, child)] == formulas.agents_for_type(k)

    report("thm5_agents", "\n".join(lines))


def test_thm5_protocol_team(benchmark):
    """The asynchronous protocol run also employs exactly n/2 agents."""
    d = 5
    result = benchmark.pedantic(run_visibility_protocol, args=(d,), rounds=1, iterations=1)
    assert result.ok
    assert result.team_size == (1 << d) // 2
