"""F1 — Figure 1: the broadcast tree T(6) of H_6.

Regenerates the figure (tree rendering + level/type census) and checks the
structural facts its caption encodes: the tree is the heap queue T(6)
(Definition 1), Property 1's type census and Property 2's leaf census hold
at every level.
"""

from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.heap_queue import HeapQueue
from repro.topology.hypercube import Hypercube
from repro.viz.tree_render import render_broadcast_tree, render_level_table

FIGURE_DIMENSION = 6  # the paper draws T(6)


def build_and_validate(d: int) -> BroadcastTree:
    tree = BroadcastTree(Hypercube(d))
    tree.validate()
    return tree


def test_fig1_broadcast_tree(benchmark, report):
    tree = benchmark(build_and_validate, FIGURE_DIMENSION)

    # Definition 1: the tree is the heap queue T(6)
    assert HeapQueue(FIGURE_DIMENSION).isomorphic_to_broadcast_tree(tree)

    # Property 1 / Property 2 censuses at every level
    for level in range(FIGURE_DIMENSION + 1):
        assert tree.type_census(level) == tree.type_census_formula(level)
    assert len(tree.leaves()) == 32  # 2^{d-1} leaves, all in C_d

    rendered = (
        render_broadcast_tree(tree, show_bitstring=False)
        + "\n\n"
        + render_level_table(tree)
    )
    report("fig1_broadcast_tree_T6", rendered)
    # the figure shows the root T(6) and, per Property 1, one node of each
    # type T(0)..T(5) at level 1
    assert "T(6)" in rendered
    assert tree.type_census(1) == {k: 1 for k in range(6)}


def test_fig1_scales_to_larger_cubes(benchmark):
    """The construction is near-linear: building+validating H_9's tree."""
    tree = benchmark(build_and_validate, 9)
    assert tree.n == 512
