"""Perf — instrumentation overhead of the engine's event bus.

Not a paper artifact: quantifies what observation costs.  Four
configurations of the same visibility-protocol run are timed:

* ``baseline``      — no subscribers (the bus guard is a single falsy
  check per emission site; this must stay within noise of the
  pre-instrumentation engine),
* ``noop``          — one subscriber that discards every event (pays event
  construction + dispatch),
* ``metrics``       — a full :class:`~repro.obs.SimMetricsCollector`,
* ``probes``        — the three standard invariant probes (lenient mode).

A second section times the span tracer (``repro.obs.trace``): the
engine loop and the batch Monte Carlo kernel with tracing disabled (the
active-tracer global is ``None`` — one guard read per run, which must
stay within 1% of the loop) versus enabled (spans recorded).

Run ``python benchmarks/bench_obs_overhead.py`` to sweep and write
``BENCH_obs_overhead.json`` at the repo root.  Set ``OBS_BENCH_SMOKE=1``
for the CI smoke mode (small dimension, single repeat).
"""

import json
import os
import time
from pathlib import Path

from repro.protocols.visibility_protocol import run_visibility_protocol

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

SMOKE = bool(os.environ.get("OBS_BENCH_SMOKE"))


def _noop(event) -> None:
    pass


def _configs():
    from repro.obs import SimMetricsCollector, standard_probes

    return {
        "baseline": lambda: None,
        "noop": lambda: [_noop],
        "metrics": lambda: [SimMetricsCollector()],
        "probes": lambda: standard_probes(mode="lenient"),
    }


def timed_run(dimension: int, make_subscribers, repeats: int = 3):
    """Best-of-``repeats`` wall time of one protocol run; returns
    ``(seconds, events_processed)``."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        subscribers = make_subscribers()
        start = time.perf_counter()
        result = run_visibility_protocol(dimension, subscribers=subscribers)
        elapsed = time.perf_counter() - start
        assert result.ok
        best = min(best, elapsed)
        events = result.event_count
    return best, events


def measure(dimension: int, repeats: int = 3):
    """Time every configuration at one dimension; returns the record dict."""
    rows = {}
    base_time = None
    for name, make in _configs().items():
        seconds, events = timed_run(dimension, make, repeats=repeats)
        if name == "baseline":
            base_time = seconds
        rows[name] = {
            "seconds": round(seconds, 6),
            "events_per_sec": round(events / seconds, 1) if seconds else None,
            "overhead_vs_baseline": (
                round(seconds / base_time, 3) if base_time else None
            ),
        }
    return {"dimension": dimension, "nodes": 1 << dimension, "configs": rows}


def timed_traced_run(dimension: int, repeats: int = 3) -> float:
    """Best-of wall time with the active tracer installed (spans on)."""
    from repro.obs import Tracer, set_active_tracer

    best = float("inf")
    for _ in range(repeats):
        previous = set_active_tracer(Tracer())
        start = time.perf_counter()
        try:
            result = run_visibility_protocol(dimension)
        finally:
            set_active_tracer(previous)
        elapsed = time.perf_counter() - start
        assert result.ok
        best = min(best, elapsed)
    return best


def guard_seconds_per_call(loops: int = 200_000) -> float:
    """Per-call cost of the disabled-path guard (``get_active_tracer``)."""
    from repro.obs.trace import get_active_tracer

    start = time.perf_counter()
    for _ in range(loops):
        get_active_tracer()
    return (time.perf_counter() - start) / loops


def measure_tracing(dimension: int, trials: int, repeats: int = 3):
    """Tracing-disabled vs tracing-enabled cost of both hot loops.

    The disabled engine loop *is* the baseline configuration (no active
    tracer), so its overhead is the guard read alone — reported as a
    fraction of the loop (two guarded call sites per run: ``Engine.run``
    and ``Strategy.run``).
    """
    from repro.fastpath.batchsim import BatchScenarioSpec, run_batch
    from repro.obs import MetricsRegistry, Tracer

    engine_off, _ = timed_run(dimension, lambda: None, repeats=repeats)
    engine_on = timed_traced_run(dimension, repeats=repeats)
    guard = guard_seconds_per_call()

    spec = BatchScenarioSpec(
        strategy="visibility",
        dimension=dimension,
        trials=trials,
        intruder="inert",
        rng_seed=3,
    )

    def timed_batch(**kwargs) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_batch(spec, **kwargs)
            elapsed = time.perf_counter() - start
            assert result.count == trials
            best = min(best, elapsed)
        return best

    batch_off = timed_batch()
    batch_on = timed_batch(metrics=MetricsRegistry(), tracer=Tracer())
    return {
        "dimension": dimension,
        "engine_loop": {
            "disabled_seconds": round(engine_off, 6),
            "enabled_seconds": round(engine_on, 6),
            "enabled_overhead_vs_disabled": round(engine_on / engine_off, 3),
            "guard_ns_per_call": round(guard * 1e9, 1),
            # two guarded sites per run; this is the whole disabled cost
            "disabled_overhead_fraction": round(2 * guard / engine_off, 6),
        },
        "batchsim": {
            "trials": trials,
            "disabled_seconds": round(batch_off, 6),
            "enabled_seconds": round(batch_on, 6),
            "enabled_overhead_vs_disabled": round(batch_on / batch_off, 3),
        },
    }


def test_unobserved_overhead_is_small():
    """The bus guard must be nearly free: an unobserved run stays within a
    generous factor of itself run twice (a pure-noise sanity bound that
    still catches accidental per-event allocation on the unobserved path).
    """
    d = 5 if SMOKE else 6
    first, _ = timed_run(d, lambda: None, repeats=2)
    second, _ = timed_run(d, lambda: None, repeats=2)
    ratio = max(first, second) / min(first, second)
    assert ratio < 3.0, f"unobserved runs diverge by {ratio:.2f}x — timer noise?"


def test_full_instrumentation_overhead_is_bounded():
    """Full metrics collection may cost real time but must stay within an
    order of magnitude of the bare engine (lenient: CI timers are noisy)."""
    d = 5 if SMOKE else 6
    record = measure(d, repeats=1 if SMOKE else 2)
    overhead = record["configs"]["metrics"]["overhead_vs_baseline"]
    assert overhead is not None and overhead < 10.0, (
        f"metrics overhead {overhead}x exceeds the 10x sanity bound"
    )


def test_probe_overhead_is_bounded():
    d = 5 if SMOKE else 6
    record = measure(d, repeats=1 if SMOKE else 2)
    overhead = record["configs"]["probes"]["overhead_vs_baseline"]
    assert overhead is not None and overhead < 10.0


def test_disabled_tracing_is_within_one_percent():
    """The zero-cost claim: with no active tracer, the instrumentation is
    one global read per guarded call site — under 1% of any engine loop."""
    d = 4 if SMOKE else 5
    record = measure_tracing(d, trials=8, repeats=1 if SMOKE else 2)
    fraction = record["engine_loop"]["disabled_overhead_fraction"]
    assert fraction < 0.01, f"disabled-tracing guard costs {fraction:.2%} of the loop"


def test_enabled_tracing_overhead_is_bounded():
    """Enabled tracing records a handful of spans per run — it may cost
    real time on the batch kernel but must stay within 2x (lenient)."""
    d = 4 if SMOKE else 5
    record = measure_tracing(d, trials=8, repeats=1 if SMOKE else 2)
    assert record["engine_loop"]["enabled_overhead_vs_disabled"] < 2.0
    assert record["batchsim"]["enabled_overhead_vs_disabled"] < 2.0


def main() -> None:
    """Sweep dimensions and write the overhead table to the JSON artifact."""
    from repro.obs import build_manifest

    dimensions = [4, 5] if SMOKE else [5, 6, 7, 8]
    repeats = 1 if SMOKE else 3
    records = [measure(d, repeats=repeats) for d in dimensions]
    for record in records:
        cfg = record["configs"]
        print(
            f"d={record['dimension']} "
            + " ".join(
                f"{name}={row['seconds'] * 1000:.1f}ms"
                f"({row['overhead_vs_baseline']}x)"
                for name, row in cfg.items()
            )
        )
    trace_d, trace_trials = (4, 8) if SMOKE else (6, 64)
    tracing = measure_tracing(trace_d, trials=trace_trials, repeats=repeats)
    engine = tracing["engine_loop"]
    batch = tracing["batchsim"]
    print(
        f"tracing d={trace_d} engine "
        f"off={engine['disabled_seconds'] * 1000:.1f}ms "
        f"on={engine['enabled_seconds'] * 1000:.1f}ms "
        f"({engine['enabled_overhead_vs_disabled']}x enabled, "
        f"{engine['disabled_overhead_fraction']:.4%} disabled guard) "
        f"| batchsim off={batch['disabled_seconds'] * 1000:.1f}ms "
        f"on={batch['enabled_seconds'] * 1000:.1f}ms "
        f"({batch['enabled_overhead_vs_disabled']}x)"
    )
    payload = {
        "benchmark": "obs_overhead",
        "description": (
            "visibility-protocol wall time under four instrumentation "
            "configurations; overhead_vs_baseline is relative to the "
            "unobserved engine (bus attached, zero subscribers)"
        ),
        "smoke": SMOKE,
        "manifest": build_manifest(extra={"benchmark": "obs_overhead"}),
        "results": records,
        "tracing": tracing,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")


if __name__ == "__main__":
    main()
