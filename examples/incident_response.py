#!/usr/bin/env python
"""Incident response: quarantine and clean a partial infection.

Mid-incident, a cleaning service rarely re-sweeps the whole network
(Section 1.1's overhead concern): it knows *which* hosts are compromised,
stations guards on the quarantine line around them, and sweeps only the
infected zone.  This example stages an infection on ``H_6``, contains it,
cleans it, and compares the cost against a full Algorithm-CLEAN sweep.

Run:  python examples/incident_response.py [dimension]
"""

import sys

from repro.core.strategy import get_strategy
from repro.sim.quarantine import quarantine_and_clean, quarantine_line
from repro.topology.generic import hypercube_graph


def main() -> int:
    d = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    g = hypercube_graph(d)
    top = g.n - 1

    # the infection: a corner subcube (the top node and its lower neighbours)
    infected = {top} | {top ^ (1 << i) for i in range(3)}
    print(f"Incident on H_{d} ({g.n} hosts): {sorted(infected)} compromised\n")

    line = quarantine_line(g, infected)
    print(f"Quarantine line: {len(line)} guard posts: {sorted(line)}")

    report = quarantine_and_clean(g, infected)
    if not report.ok:
        raise SystemExit("containment failed — should be impossible")
    print(
        f"Swept the zone with {report.sweep_team} agents in {report.moves} moves; "
        f"monotone={report.monotone}, captured={report.intruder_captured}\n"
    )

    full = get_strategy("clean").run(d)
    print("Cost comparison:")
    print(f"  localized response : {report.total_agents} agents, {report.moves} sweep moves")
    print(f"  full CLEAN sweep   : {full.team_size} agents, {full.total_moves} moves")
    print(
        f"\nThe localized operation used {report.moves / full.total_moves:.1%} of the "
        "full sweep's traffic — §1.1's overhead argument, quantified."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
