#!/usr/bin/env python
"""Strategy comparison: the paper's Section 1.3 / Section 5 table, measured.

Generates every strategy (the two algorithms, the two Section 5 variants,
and our naive level-sweep baseline) across a range of dimensions, verifies
each schedule, and prints agents / moves / ideal time next to the paper's
closed forms and asymptotic labels.

Run:  python examples/strategy_comparison.py [max_dimension]
"""

import sys

from repro import formulas, get_strategy, verify_schedule
from repro.analysis.asymptotics import fit_growth


def main() -> int:
    max_d = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    dims = list(range(2, max_d + 1))
    names = ["clean", "visibility", "cloning", "synchronous", "level-sweep"]

    print(f"{'d':>3} {'n':>5} | " + " | ".join(f"{name:^22}" for name in names))
    print(f"{'':>3} {'':>5} | " + " | ".join(f"{'agents/moves/steps':^22}" for _ in names))
    print("-" * (12 + 25 * len(names)))

    measured = {name: {"agents": [], "moves": [], "steps": []} for name in names}
    for d in dims:
        cells = []
        for name in names:
            schedule = get_strategy(name).run(d)
            report = verify_schedule(schedule)
            report.raise_if_failed()
            measured[name]["agents"].append(schedule.team_size)
            measured[name]["moves"].append(schedule.total_moves)
            measured[name]["steps"].append(schedule.makespan)
            cells.append(
                f"{schedule.team_size:>6}/{schedule.total_moves:>7}/{schedule.makespan:>6}"
            )
        print(f"{d:>3} {1 << d:>5} | " + " | ".join(f"{c:^22}" for c in cells))

    print("\nPaper's predictions (exact closed forms where the paper gives them):")
    d = dims[-1]
    print(f"  d={d}: CLEAN agents  = C(d,l+1)+C(d-1,l-1)+1 peak = {formulas.clean_peak_agents(d)}")
    print(f"        CLEAN agent moves = (n/2)(log n + 1)     = {formulas.clean_agent_moves_exact(d)}")
    print(f"        visibility agents = n/2                  = {formulas.visibility_agents(d)}")
    print(f"        visibility steps  = log n                = {formulas.visibility_time_steps(d)}")
    print(f"        visibility moves  = (n/4)(log n + 1)     = {formulas.visibility_moves_exact(d)}")
    print(f"        cloning moves     = n - 1                = {formulas.cloning_moves(d)}")

    print("\nEmpirical growth fits (value ~ c * n^a * (log n)^b):")
    for name in names:
        fit = fit_growth(dims, measured[name]["moves"])
        print(f"  {name:<12} moves  ~ {fit.describe()}")
    for name in ("clean", "visibility"):
        fit = fit_growth(dims, measured[name]["agents"])
        print(f"  {name:<12} agents ~ {fit.describe()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
