#!/usr/bin/env python
"""Overhead study: the Section 1.1 cost trade-off, measured.

The paper motivates its efficiency metrics with network operations: "these
techniques would have to use as few agents as possible and these agents
would have to perform as few moves as possible so that the cleaning
overhead would not be too important compared to the normal load of the
network."  This example measures exactly that operational overhead:

1. per-host and per-link traffic of each protocol (where do the sweeps
   concentrate load?), via the telemetry module;
2. agent waiting time (idle agents are wasted capacity);
3. the amortized cost of a *periodic* cleaning service (the paper's
   suggested deployment), with a rotating homebase to spread the wear.

Run:  python examples/overhead_study.py [dimension]
"""

import sys

from repro.protocols import (
    run_clean_protocol,
    run_cloning_protocol,
    run_visibility_protocol,
)
from repro.sim.reinfection import PeriodicCleaning
from repro.sim.telemetry import analyze_trace


def main() -> int:
    dimension = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n = 1 << dimension

    print(f"=== one-shot sweep overhead on H_{dimension} ({n} hosts) ===\n")
    for name, runner in (
        ("visibility", run_visibility_protocol),
        ("cloning", run_cloning_protocol),
        ("clean", run_clean_protocol),
    ):
        result = runner(dimension)
        assert result.ok, result.summary()
        telemetry = analyze_trace(result.trace)
        print(f"--- {name} ---")
        print(telemetry.describe())
        print(f"overhead      : {telemetry.traffic_overhead_per_node(n):.2f} moves/host")
        print()

    print(f"=== periodic cleaning service (8 periods, rotating homebase) ===\n")
    service = PeriodicCleaning(
        dimension=dimension,
        strategy="cloning",  # the cheapest sweep: n - 1 moves
        rotate_homebase=True,
        seeds_per_period=2,
        rng_seed=42,
    )
    service.run(8)
    print(service.describe())

    print(
        "\nTakeaway: the cloning sweep amortizes to < 1 move per host per "
        "period — the paper's 'cleaning overhead' stays below one traversal "
        "of the normal per-host load."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
