#!/usr/bin/env python
"""Extending the library: write, register and validate your own strategy.

Two custom strategies are built here against the public extension points:

1. ``GraySnake`` — the "obvious" idea: one agent walks the Gray-code
   Hamiltonian path.  It is *wrong* (a single walker abandons its corridor
   on any graph with cycles), and the point is that the verifier says so
   precisely: which node was recontaminated, from where.

2. ``HarperStrategy`` — a correct custom strategy: the near-optimal
   simplicial-order sweep wrapped as a registered
   :class:`~repro.core.strategy.Strategy`, so it flows through the same
   ``get_strategy`` / verify / metrics machinery as the paper's built-ins.

Run:  python examples/custom_strategy.py [dimension]
"""

import sys

from repro._bitops import gray_code
from repro.analysis.lower_bounds import monotone_agents_lower_bound
from repro.analysis.verify import ScheduleVerifier, verify_schedule
from repro.core.metrics import compute_metrics
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.strategy import Strategy, get_strategy, register
from repro.search.harper import harper_sweep_schedule
from repro.topology.generic import hypercube_graph
from repro.topology.hypercube import Hypercube


class GraySnake(Strategy):
    """One agent, Gray-code walk — looks clever, is not monotone."""

    name = "gray-snake"
    model = "whiteboard"

    def generate(self, hypercube: Hypercube) -> Schedule:
        walk = [gray_code(i) for i in range(hypercube.n)]
        moves = [
            Move(agent=0, src=a, dst=b, time=t, kind=MoveKind.DEPLOY)
            for t, (a, b) in enumerate(zip(walk, walk[1:]), start=1)
        ]
        return Schedule(
            dimension=hypercube.d, strategy=self.name, moves=moves, team_size=1
        )


@register
class HarperStrategy(Strategy):
    """The simplicial-order sweep as a first-class registered strategy."""

    name = "harper"
    model = "whiteboard"

    def expected_team_size(self, d):
        return monotone_agents_lower_bound(d) + 1 if d >= 1 else 1

    def generate(self, hypercube: Hypercube) -> Schedule:
        schedule = harper_sweep_schedule(hypercube.d)
        schedule.dimension = hypercube.d  # hosted on the hypercube proper
        schedule.strategy = self.name
        return schedule


def main() -> int:
    d = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    print("=== the broken idea: a lone Gray-code snake ===")
    snake = GraySnake().run(d)
    report = verify_schedule(snake)
    print(report.summary())
    print("violations:", report.violations[:3], "...\n")
    assert not report.ok  # the verifier catches it

    print("=== the registered custom strategy: harper ===")
    strategy = get_strategy("harper")  # resolved through the registry
    schedule = strategy.run(d)
    report = ScheduleVerifier(hypercube_graph(d)).verify(schedule)
    report.raise_if_failed()
    print(compute_metrics(schedule).describe())
    print(report.summary())
    print(
        f"\nlower bound {monotone_agents_lower_bound(d)} <= "
        f"harper team {schedule.team_size} <= lower bound + 1 — "
        "a custom strategy, validated by the library's own machinery."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
