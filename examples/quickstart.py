#!/usr/bin/env python
"""Quickstart: clean a hypercube with both of the paper's strategies.

Generates the schedule of Algorithm ``CLEAN`` (the coordinated strategy)
and of ``CLEAN WITH VISIBILITY`` (the local strategy) on ``H_4``, verifies
the contiguous/monotone/capture invariants by exact replay, and prints the
paper's three efficiency measures side by side.

Run:  python examples/quickstart.py [dimension]
"""

import sys

from repro import compute_metrics, get_strategy, verify_schedule


def main() -> int:
    dimension = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Cleaning the {dimension}-dimensional hypercube (n = {1 << dimension} nodes)\n")

    for name in ("clean", "visibility"):
        strategy = get_strategy(name)
        schedule = strategy.run(dimension)

        # Replay the schedule against the exact contamination dynamics with
        # an omniscient intruder co-simulated.
        report = verify_schedule(schedule)
        report.raise_if_failed()

        print(f"=== {name} ===")
        print(compute_metrics(schedule).describe())
        print(report.summary())
        print()

    print("Both strategies clean the network monotonically and capture the intruder.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
