#!/usr/bin/env python
"""Optimality study: how close are the paper's strategies to optimal?

The paper leaves open whether ``Omega(n / log n)`` agents are necessary
(Section 5, final paragraph).  On small hypercubes we can settle the
optimum exactly by brute force over the contiguous monotone search state
space, and compare it with Algorithm ``CLEAN``, the visibility strategy,
and the naive level-sweep baseline.  For context the script also reports
the exact tree results of Barrière et al. [1] on some tree families.

Run:  python examples/optimality_study.py
"""

import sys

from repro import get_strategy
from repro.search.optimal import minimum_moves, optimal_search_number
from repro.search.tree_search import tree_search_number, tree_strategy_schedule
from repro.topology.generic import (
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)


def main() -> int:
    print("Exact optimal team sizes (brute force) vs the paper's strategies\n")
    print(f"{'graph':<8} {'optimal':>8} {'opt moves':>10} {'CLEAN':>7} {'visib.':>7} {'sweep':>7}")
    for d in (1, 2, 3):
        g = hypercube_graph(d)
        opt = optimal_search_number(g)
        moves = minimum_moves(g, opt)
        clean = get_strategy("clean").run(d).team_size
        vis = get_strategy("visibility").run(d).team_size
        sweep = get_strategy("level-sweep").run(d).team_size
        print(f"H_{d:<6} {opt:>8} {moves:>10} {clean:>7} {vis:>7} {sweep:>7}")

    print(
        "\nCLEAN sits above the small-instance optimum (it also pays a"
        "\nsynchronizer and guarantees O(n log n) moves); the gap question"
        "\nfor large n is the paper's open problem."
    )

    print("\nOther topologies (brute-force optimum from node 0):")
    for g in (path_graph(7), ring_graph(8), star_graph(6)):
        print(f"  {g.name:<8}: {optimal_search_number(g)} agents")

    print("\nTrees (closed recursion of Barriere et al. [1], with schedule):")
    families = {
        "spider-3x3": tree_graph([0, 1, 2, 0, 4, 5, 0, 7, 8]),
        "binary-h3": tree_graph([0, 0, 1, 1, 2, 2]),
        "caterpillar": tree_graph([0, 1, 2, 3, 0, 1, 2, 3]),
    }
    for name, tree in families.items():
        agents = tree_search_number(tree)
        schedule = tree_strategy_schedule(tree)
        print(
            f"  {name:<12}: {agents} agents, {schedule.total_moves} moves "
            f"(brute-force check: {optimal_search_number(tree)})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
