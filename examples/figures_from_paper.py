#!/usr/bin/env python
"""Re-render all four figures of the paper from the implementation.

* Figure 1 — the broadcast tree ``T(6)`` of ``H_6`` (heap-queue types,
  level census).
* Figure 2 — the order Algorithm ``CLEAN`` cleans ``H_4`` (sequential,
  level by level, lexicographic within a level).
* Figure 3 — the classes ``C_i`` of ``H_4``.
* Figure 4 — the cleaning order of ``CLEAN WITH VISIBILITY`` on ``H_4``
  (simultaneous waves: class ``C_i`` acts at time ``i``).

Run:  python examples/figures_from_paper.py
"""

import sys

from repro import get_strategy
from repro.viz.class_render import render_classes
from repro.viz.order_render import render_cleaning_order, render_wave_table
from repro.viz.tree_render import render_broadcast_tree, render_level_table


def main() -> int:
    print("=" * 72)
    print("Figure 1: the broadcast tree T(6) of the hypercube H_6")
    print("=" * 72)
    print(render_broadcast_tree(6, show_bitstring=False))
    print()
    print(render_level_table(6))

    print()
    print("=" * 72)
    print("Figure 2: order in which CLEAN decontaminates H_4")
    print("=" * 72)
    clean = get_strategy("clean").run(4)
    print(render_cleaning_order(clean))

    print()
    print("=" * 72)
    print("Figure 3: the classes C_i of H_4")
    print("=" * 72)
    print(render_classes(4))

    print()
    print("=" * 72)
    print("Figure 4: order in which CLEAN WITH VISIBILITY decontaminates H_4")
    print("=" * 72)
    visibility = get_strategy("visibility").run(4)
    print(render_cleaning_order(visibility))
    print()
    print(render_wave_table(visibility))
    return 0


if __name__ == "__main__":
    sys.exit(main())
