#!/usr/bin/env python
"""Decontaminate an arbitrary enterprise network (beyond the hypercube).

The paper's strategies are hypercube-specific; the library's generic layer
(`repro.search.frontier_sweep` + `repro.protocols.frontier_protocol`) works
on any connected topology.  This example builds a small "enterprise"
network — a backbone ring of routers, departmental stars hanging off it,
and a server-room clique — and cleans it twice:

1. schedule plane: deterministic frontier sweep, verified move by move;
2. protocol plane: real agents with visibility + whiteboards on the
   asynchronous engine, chasing a pack of walker intruders.

Run:  python examples/arbitrary_network.py
"""

import sys

from repro.analysis.verify import ScheduleVerifier
from repro.protocols import run_frontier_protocol
from repro.search.frontier_sweep import bfs_boundary_width, frontier_sweep_schedule
from repro.sim.scenarios import enterprise_network
from repro.sim.scheduling import RandomDelay


def main() -> int:
    # backbone ring of 4 routers, three departmental stars, a server clique
    net = enterprise_network(routers=4, hosts_per_department=3, servers=3)
    print(f"Network '{net.name}': {net.n} hosts, {len(net.edges())} links")
    print(f"BFS boundary width from host 0: {bfs_boundary_width(net)}\n")

    print("=== schedule plane: deterministic sweep, exact verification ===")
    schedule = frontier_sweep_schedule(net)
    report = ScheduleVerifier(net).verify(schedule)
    report.raise_if_failed()
    print(report.summary())
    print(f"visit order: {report.first_visit_order}\n")

    print("=== protocol plane: live agents, random delays, 3 intruders ===")
    result = run_frontier_protocol(
        net, delay=RandomDelay(seed=11), intruder="walkers", intruder_count=3,
    )
    print(result.summary())
    if not result.ok:
        raise SystemExit("the sweep failed -- should be impossible")

    print(
        f"\n{result.team_size} agents decontaminated all {net.n} hosts in "
        f"{result.makespan:.1f} time units ({result.total_moves} moves); "
        "every intruder was cornered."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
