#!/usr/bin/env python
"""Watch the decontamination sweep frame by frame.

Replays a strategy's schedule through the exact contamination dynamics and
prints one text frame per time unit: ``#`` contaminated, ``A`` guarded,
``.`` clean, one row per hypercube level.  With the visibility strategy you
can *see* Theorem 7's waves: one whole class C_i turns from ``A`` to ``.``
per step.

Run:  python examples/watch_the_sweep.py [strategy] [dimension]
      python examples/watch_the_sweep.py clean 3
"""

import sys

from repro import get_strategy, verify_schedule
from repro.viz.state_render import render_frames


def main() -> int:
    strategy = sys.argv[1] if len(sys.argv) > 1 else "visibility"
    dimension = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    schedule = get_strategy(strategy).run(dimension)
    verify_schedule(schedule).raise_if_failed()

    for frame in render_frames(schedule):
        print(frame)
        print()
    print(
        f"done: {schedule.team_size} agents, {schedule.total_moves} moves, "
        f"{schedule.makespan} ideal-time steps"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
