#!/usr/bin/env python
"""Watch the decontamination sweep frame by frame — live, off the event bus.

Runs the chosen protocol on the asynchronous engine with a subscriber
attached to the engine's event bus, and prints one text frame per time
unit: ``#`` contaminated, ``A`` guarded, ``.`` clean, one row per
hypercube level.  With the visibility strategy you can *see* Theorem 7's
waves: one whole class C_i turns from ``A`` to ``.`` per step.

This is the canonical subscriber example: frames are rendered purely from
the state masks each :class:`~repro.obs.events.MoveEvent` carries — the
renderer never touches the engine's internals, and the engine pays nothing
for the bus when nobody is watching.

Run:  python examples/watch_the_sweep.py [strategy] [dimension]
      python examples/watch_the_sweep.py clean 3
"""

import sys

from repro.topology.hypercube import Hypercube

RUNNERS = {
    "visibility": "run_visibility_protocol",
    "clean": "run_clean_protocol",
    "cloning": "run_cloning_protocol",
}


class FrameRenderer:
    """Bus subscriber that prints one frame per completed time unit.

    Frames are built from the bitmasks on each move event: a node is ``A``
    when guarded, ``.`` when decontaminated, ``#`` otherwise.  Moves of the
    same time unit are coalesced — the frame is flushed when simulation
    time advances past them (and once more at run end).
    """

    def __init__(self, strategy: str) -> None:
        self._strategy = strategy
        self._h = None
        self._time = None
        self._clean = 0
        self._guard = 0

    def __call__(self, event) -> None:
        if event.kind == "run-start":
            self._h = Hypercube(event.dimension)
            # initial frame: homebase guarded, everything else contaminated
            self._print_frame(
                1 << event.homebase,
                1 << event.homebase,
                f"t=0  ({self._strategy} on H_{event.dimension}, "
                f"{event.team_size} initial agents)",
            )
        elif event.kind == "move":
            if self._time is not None and event.time > self._time:
                self._flush()
            self._time = event.time
            self._clean = event.clean_mask
            self._guard = event.guard_mask
        elif event.kind == "run-end":
            self._time = event.time
            self._clean = event.clean_mask
            self._guard = event.guard_mask
            self._flush()

    def _flush(self) -> None:
        # clean_mask excludes guarded nodes: contaminated = outside clean|guard
        left = self._h.n - bin(self._clean | self._guard).count("1")
        self._print_frame(
            self._clean, self._guard, f"t={self._time:g}  ({left} contaminated left)"
        )

    def _print_frame(self, clean: int, guard: int, caption: str) -> None:
        print(caption)
        for level in range(self._h.d + 1):
            cells = "".join(
                "A" if guard >> x & 1 else "." if clean >> x & 1 else "#"
                for x in self._h.level_nodes(level)
            )
            print(f"  level {level}: {cells}")
        print()


def main() -> int:
    strategy = sys.argv[1] if len(sys.argv) > 1 else "visibility"
    dimension = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if strategy not in RUNNERS:
        print(f"unknown strategy {strategy!r}; pick one of {sorted(RUNNERS)}")
        return 2

    import repro.protocols as protocols

    runner = getattr(protocols, RUNNERS[strategy])
    result = runner(dimension, subscribers=[FrameRenderer(strategy)])
    print(
        f"done: {result.team_size} agents, {result.total_moves} moves, "
        f"makespan {result.makespan:g}"
    )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
