#!/usr/bin/env python
"""Virus hunt: chase a concrete adversarial intruder through a real
asynchronous network simulation.

This is the paper's motivating scenario (Section 1.1): a hostile piece of
software moves arbitrarily fast between hosts, always fleeing toward the
contaminated region farthest from the pursuing agents.  We run the
``CLEAN WITH VISIBILITY`` protocol — genuine autonomous agents on the
discrete-event engine, with random per-action delays — against a
:class:`~repro.sim.intruder.WalkerIntruder`, and print the chase as it
unfolds.

Run:  python examples/virus_hunt.py [dimension] [seed]
"""

import sys

from repro.sim.engine import Engine
from repro.sim.intruder import WalkerIntruder
from repro.sim.scheduling import RandomDelay
from repro.analysis.formulas import visibility_agents
from repro.protocols.visibility_protocol import visibility_agent
from repro.topology.hypercube import Hypercube


def main() -> int:
    dimension = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    h = Hypercube(dimension)
    team = visibility_agents(dimension)
    print(
        f"Hunting a virus in H_{dimension} ({h.n} hosts) with {team} agents, "
        f"random delays (seed {seed})\n"
    )

    engine = Engine(
        h,
        [visibility_agent] * team,
        delay=RandomDelay(seed=seed),
        visibility=True,
        intruder="walker",
        intruder_seed=seed,
    )
    # Peek at the walker to narrate the chase.
    walker: WalkerIntruder = engine.intruder
    print(f"The intruder starts hiding at host {walker.position} "
          f"[{h.bitstring(walker.position)}]")

    result = engine.run()

    print(f"\nIntruder trajectory ({len(walker.trajectory)} hops):")
    trail = " -> ".join(str(x) for x in walker.trajectory)
    print(f"  {trail}")
    print(f"\nCaptured: {walker.captured}")
    print(result.summary())
    if not result.ok:
        raise SystemExit("the hunt failed -- this should be impossible (Theorem 6)")

    print(
        f"\nThe sweep visited all {h.n} hosts in {result.makespan:.2f} time units "
        f"and {result.total_moves} moves; the virus had nowhere left to hide."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
