"""Repo-root pytest bootstrap: make ``pytest`` work from a bare checkout.

The documented path is ``pip install -e .`` followed by plain ``pytest``
(what CI runs).  For a source tree that has not been installed yet, this
shim prepends ``src/`` to ``sys.path`` so ``import repro`` resolves to the
checkout — no manual ``PYTHONPATH=src`` needed for ``pytest``,
``pytest benchmarks/`` or ``pytest --doctest-modules``.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
