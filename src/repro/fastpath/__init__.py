"""Fast-path plane: columnar schedules, content-addressed caching, batch
verification.

The paper's strategies emit ``O(n log n)`` moves (Theorems 3/8), so at
large ``d`` a schedule is a sea of Python ``Move`` objects; this package
makes re-measuring and re-verifying them cheap:

* :class:`CompiledSchedule` — a lossless struct-of-arrays twin of
  :class:`~repro.core.schedule.Schedule` (six int64 columns plus the
  one-pass aggregate-stats block) with a versioned, CRC-protected binary
  form;
* :class:`ScheduleCache` — a content-addressed on-disk store of compiled
  schedules, fingerprinted by (strategy, version tag, dimension, params,
  schema versions), with atomic writes so parallel executor workers can
  share one directory and corrupt entries silently regenerating;
* :func:`batch_verify` — a per-time-unit replay of the columnar form
  with O(1)-per-move integer kernels, verdict-equivalent to
  :class:`~repro.analysis.verify.ScheduleVerifier`;
* :func:`measure_schedule` — the single metric-collection helper behind
  both the serial sweep and the executor's ``sweep_cell`` task;
* :func:`run_batch` — the scenario-batch Monte Carlo engine: one
  columnar timeline replay per homebase, thousands of intruder/delay
  scenarios scored against it (see :mod:`repro.fastpath.batchsim`);
* :mod:`repro.fastpath.npkernels` — the optional NumPy kernel backend
  (:func:`resolve_backend`): packed bit-plane chunk verification and
  array-of-scenarios Monte Carlo, selected per call via ``backend=`` or
  globally via ``$REPRO_KERNEL_BACKEND``, byte-identical in verdicts
  and statistics to the pure-Python kernels it accelerates.

Layering: this package sits between the core schedule plane and the
analysis/exec consumers — it imports ``core``/``topology``/``errors``
only, never the simulation, protocol or CLI layers (lint rule RPR220).
"""

from repro.fastpath.batchsim import (
    DELAY_KINDS,
    INTRUDER_POLICIES,
    BatchResult,
    BatchScenarioSpec,
    BatchStats,
    ScenarioTimeline,
    compile_for_spec,
    replay_order,
    run_batch,
)
from repro.fastpath.batchverify import (
    BatchVerificationReport,
    batch_verify,
    batch_verify_chunks,
)
from repro.fastpath.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ScheduleCache,
    default_cache_dir,
    fingerprint,
)
from repro.fastpath.compiled import (
    FORMAT_VERSION,
    SCHEMA_VERSION,
    CompiledSchedule,
    decode_metadata,
    encode_metadata,
)
from repro.fastpath.measure import Measurable, measure_chunks, measure_schedule
from repro.fastpath.npkernels import (
    BACKEND_ENV,
    KERNEL_BACKENDS,
    numpy_available,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "KERNEL_BACKENDS",
    "numpy_available",
    "resolve_backend",
    "BatchResult",
    "BatchScenarioSpec",
    "BatchStats",
    "BatchVerificationReport",
    "DELAY_KINDS",
    "INTRUDER_POLICIES",
    "ScenarioTimeline",
    "batch_verify",
    "batch_verify_chunks",
    "compile_for_spec",
    "replay_order",
    "run_batch",
    "CACHE_DIR_ENV",
    "CacheStats",
    "ScheduleCache",
    "default_cache_dir",
    "fingerprint",
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
    "CompiledSchedule",
    "decode_metadata",
    "encode_metadata",
    "Measurable",
    "measure_chunks",
    "measure_schedule",
]
