"""NumPy kernel backend: packed bit-planes and array-of-scenarios RNG.

This module is the *only* place in the package tree allowed to import
``numpy`` (lint rule RPR250): every other module reaches vectorized
kernels through the seam defined here, so the pure-Python paths stay
importable — and byte-identical in behaviour — on boxes without numpy.

Backend seam
------------
:func:`resolve_backend` turns a requested backend (``"auto"``,
``"numpy"``, ``"pure"``, or ``None`` = read ``$REPRO_KERNEL_BACKEND``,
default ``auto``) into the concrete ``"numpy"`` / ``"pure"`` choice.
``auto`` picks numpy exactly when it is importable — safe because every
numpy kernel either produces bit-identical results or falls back to the
pure code (see below), never a third behaviour.

Bit-plane kernels
-----------------
A node set of the ``d``-cube is a packed ``uint64[ceil(n/64)]`` plane
(bit ``x`` of the plane = node ``x``).  The hypercube's structure makes
every neighbourhood operation an XOR-shift: flipping coordinate ``p`` is
an in-word block swap for ``p < 6`` (shift by ``2**p`` under the
alternating masks) and a whole-word permutation for ``p >= 6``.  On top
of that one primitive sit :func:`plane_spread` (union of all ``d``
neighbour shifts), :func:`plane_popcount` (``np.bitwise_count`` when the
installed numpy has it, a byte lookup table otherwise),
:func:`plane_translate` (the XOR automorphism ``x -> x ^ h`` — the
composition of the single-bit swaps for the set bits of ``h``) and
:func:`plane_connected` (frontier BFS entirely on packed words).

:class:`NPChunkVerifier` replays schedule chunks on these planes plus
flat ``int64`` node/agent tables, with *no per-move or per-unit Python
loop*: each committed block is checked with sorts and segmented
reductions (exact sequential guard occupancy, the departure rule per
(node, time-unit) group, the adjacent-extension contiguity invariant per
newly cleaned node).  The detectors are exact on the invariant-holding
fast path; the moment any of them fires — which includes *every*
malformed or invariant-violating schedule — the verifier restores its
block-start snapshot and raises :class:`KernelFallback`, and the caller
replays the uncommitted rows through the pure
:class:`~repro.fastpath.batchverify._ReplayState`.  Verdicts, violation
lists and error messages are therefore byte-identical to the pure
backend by construction: the numpy path only ever *commits* behaviour
the pure path would accept silently.

Vectorized RNG
--------------
:class:`VectorMT19937` is CPython's ``random.Random`` run as a
structure-of-arrays: one Mersenne-Twister state row per scenario,
seeded, twisted and tempered with the reference constants, so
``getrandbits`` / ``randrange`` / ``randint`` columns across 10k trials
reproduce 10k individual ``random.Random(seed)`` streams draw-for-draw
(rejection sampling included).  This is what lets the Monte Carlo
backend score every trial of a campaign simultaneously while keeping the
documented per-trial draw order of :mod:`repro.fastpath.batchsim`.

Layering: imports only ``repro.errors`` (rule RPR220) — and ``numpy``,
which rule RPR250 confines to this file.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError

try:  # the only numpy import in the package tree (lint rule RPR250)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via resolve_backend tests
    _np = None  # type: ignore[assignment]

__all__ = [
    "BACKEND_ENV",
    "KERNEL_BACKENDS",
    "KernelFallback",
    "NPChunkVerifier",
    "VectorMT19937",
    "mask_list_to_matrix",
    "matrix_to_mask_list",
    "numpy_available",
    "plane_connected",
    "plane_popcount",
    "plane_shift_dim",
    "plane_spread",
    "plane_translate",
    "pack_nodes",
    "resolve_backend",
    "unpack_plane",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: The accepted backend spellings.
KERNEL_BACKENDS = ("auto", "numpy", "pure")


def numpy_available() -> bool:
    """Whether the numpy kernels can run in this interpreter."""
    return _np is not None


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend request to ``"numpy"`` or ``"pure"``.

    ``None`` reads :data:`BACKEND_ENV` (default ``auto``).  ``auto``
    selects numpy exactly when it is importable.  An explicit
    ``"numpy"`` on a numpy-less interpreter raises
    :class:`~repro.errors.ScheduleError` — loud beats silently slow.
    """
    if backend is not None:
        choice = backend
    else:
        # backend choice never alters schedule bytes or verdicts (the
        # numpy path is byte-identical by construction), so the env read
        # cannot leak into cache-fingerprinted content
        choice = os.environ.get(BACKEND_ENV, "auto")  # repro-lint: disable=RPR320
    choice = str(choice).strip().lower() or "auto"
    if choice not in KERNEL_BACKENDS:
        raise ScheduleError(
            f"unknown kernel backend {choice!r} (try one of {KERNEL_BACKENDS})"
        )
    if choice == "auto":
        return "numpy" if numpy_available() else "pure"
    if choice == "numpy" and not numpy_available():
        raise ScheduleError(
            "kernel backend 'numpy' requested but numpy is not importable "
            "(install it or use backend='pure')"
        )
    return choice


def _require_np() -> Any:
    """The numpy module, or a :class:`ScheduleError` explaining its absence."""
    if _np is None:
        raise ScheduleError("numpy kernels requested but numpy is not importable")
    return _np


# --------------------------------------------------------------------- #
# packed bit-plane primitives
# --------------------------------------------------------------------- #

#: ``_ALT_MASKS[p]`` keeps the *lower* half of every ``2**(p+1)``-bit
#: block: the in-word half of the coordinate-``p`` block swap.
_ALT_MASK_VALUES = (
    0x5555555555555555,
    0x3333333333333333,
    0x0F0F0F0F0F0F0F0F,
    0x00FF00FF00FF00FF,
    0x0000FFFF0000FFFF,
    0x00000000FFFFFFFF,
)


def plane_words(n: int) -> int:
    """Words in a packed plane over ``n`` nodes (at least one)."""
    return max(1, (n + 63) >> 6)


def pack_nodes(nodes: Any, n: int) -> Any:
    """Packed plane with the bits of ``nodes`` (an int index array) set."""
    np = _require_np()
    plane = np.zeros(plane_words(n), dtype=np.uint64)
    idx = np.asarray(nodes, dtype=np.int64)
    if idx.size:
        bits = np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64))
        np.bitwise_or.at(plane, idx >> 6, bits)
    return plane


def unpack_plane(plane: Any, n: int) -> Any:
    """Per-node 0/1 ``uint8[n]`` view of a packed plane."""
    np = _require_np()
    return np.unpackbits(plane.view(np.uint8), count=n, bitorder="little")


def plane_shift_dim(plane: Any, p: int) -> Any:
    """Neighbour plane along coordinate ``p``: bit ``x`` -> bit ``x ^ 2**p``.

    Works on the last axis of any ``(..., words)`` uint64 array.  For
    ``p < 6`` the flip is an in-word block swap; for ``p >= 6`` it is a
    pure word permutation (adjacent groups of ``2**(p-6)`` words swap).
    Because XOR with a single bit is an involution, this is both the
    neighbour operator and the translation by ``2**p``.
    """
    np = _require_np()
    if p < 6:
        s = 1 << p
        m = np.uint64(_ALT_MASK_VALUES[p])
        return ((plane & m) << np.uint64(s)) | ((plane >> np.uint64(s)) & m)
    step = 1 << (p - 6)
    shape = plane.shape
    grouped = plane.reshape(shape[:-1] + (shape[-1] // (2 * step), 2, step))
    return np.ascontiguousarray(grouped[..., ::-1, :]).reshape(shape)


def plane_spread(plane: Any, d: int) -> Any:
    """Union of all ``d`` neighbour shifts (the one-step BFS frontier)."""
    out = plane_shift_dim(plane, 0)
    for p in range(1, d):
        out = out | plane_shift_dim(plane, p)
    return out


def plane_translate(plane: Any, xor: int, d: int) -> Any:
    """The XOR automorphism ``x -> x ^ xor`` applied to a packed plane."""
    out = plane
    for p in range(d):
        if (xor >> p) & 1:
            out = plane_shift_dim(out, p)
    return out


_POPCOUNT_LUT: Any = None


def plane_popcount(plane: Any) -> int:
    """Total set bits of a packed plane (``np.bitwise_count`` when the
    installed numpy ships it, a byte lookup table otherwise)."""
    np = _require_np()
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(plane).sum())
    global _POPCOUNT_LUT
    if _POPCOUNT_LUT is None:
        _POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
    return int(_POPCOUNT_LUT[plane.view(np.uint8)].sum())


def plane_connected(plane: Any, d: int, start: int) -> bool:
    """Frontier BFS on packed words: is the plane's node set connected?

    Starts at ``start`` when it is in the set, else at the set's lowest
    node (the same deterministic choice as the pure bitset BFS).
    """
    np = _require_np()
    total = plane_popcount(plane)
    if total == 0:
        return True
    words = plane.shape[-1]
    reached = np.zeros(words, dtype=np.uint64)
    if (int(plane[start >> 6]) >> (start & 63)) & 1:
        reached[start >> 6] = np.uint64(1 << (start & 63))
    else:
        w = int(np.nonzero(plane)[0][0])
        bit = int(plane[w]) & -int(plane[w])
        reached[w] = np.uint64(bit)
    size = 1
    while True:
        reached = reached | (plane_spread(reached, d) & plane)
        grown = plane_popcount(reached)
        if grown == size:
            return size == total
        size = grown


def mask_list_to_matrix(masks: Sequence[int], n: int) -> Any:
    """Pack a list of bigint node masks into a ``(len, words)`` plane matrix."""
    np = _require_np()
    words = plane_words(n)
    nbytes = words * 8
    out = np.empty((len(masks), words), dtype=np.uint64)
    for i, mask in enumerate(masks):
        out[i] = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint64)
    return out


def matrix_to_mask_list(matrix: Any) -> List[int]:
    """Inverse of :func:`mask_list_to_matrix` (row-per-mask bigints)."""
    rows, words = matrix.shape
    blob = matrix.tobytes()
    stride = words * 8
    return [
        int.from_bytes(blob[i * stride : (i + 1) * stride], "little")
        for i in range(rows)
    ]


# --------------------------------------------------------------------- #
# vectorized Mersenne Twister (CPython random.Random, row per scenario)
# --------------------------------------------------------------------- #

_MT_N = 624
_MT_M = 397

#: Cached ``init_genrand(19650218)`` words as uint32 scalars
#: (seed-independent, so computed once per process).
_MT_SEED_BASE: Optional[List[Any]] = None


class VectorMT19937:
    """CPython's ``random.Random`` as a structure-of-arrays.

    One MT19937 state row per seed; :meth:`getrandbits32` /
    :meth:`getrandbits64` / :meth:`randbelow` / :meth:`randint_matrix`
    return one column of draws across all rows, consuming each row's
    stream exactly as ``random.Random(seed)`` would — including the
    per-row rejection loops of ``_randbelow_with_getrandbits``, which
    advance different rows by different amounts (tracked by per-row
    cursors).  Seeding replicates ``random_seed``: the key is the
    little-endian 32-bit word expansion of ``abs(seed)`` (at least one
    word), fed to ``init_by_array`` with the reference constants.
    """

    def __init__(self, seeds: Sequence[int]) -> None:
        np = _require_np()
        self._np = np
        rows = len(seeds)
        self.rows = rows
        # word-major (624, rows) layout: the seeding recurrence and the
        # twist walk word index sequentially, so each step touches one
        # contiguous row instead of a strided column
        self._state = np.empty((_MT_N, rows), dtype=np.uint32)
        self._buf = np.empty((_MT_N, rows), dtype=np.uint32)
        self._cursor = np.full(rows, _MT_N, dtype=np.int64)
        self._rowidx = np.arange(rows)
        # lockstep bookkeeping: while every row is in the same block
        # phase the twist runs lazily and in place (`_fill_to`), only as
        # far as the deepest cursor — a short campaign touches ~20 of
        # the 624 words, so the other ~600 are never computed
        self._synced = True
        self._filled = 0
        # fast path: campaign sub-seeds are `getrandbits(64)` outputs,
        # whose one- or two-word little-endian keys extract vectorially
        # (`np.array(..., uint64)` raises on negatives / >64-bit values)
        np_seeds = None
        if rows:
            try:
                np_seeds = np.array(seeds, dtype=np.uint64)
            except (OverflowError, TypeError):
                np_seeds = None
        if np_seeds is not None:
            lo = (np_seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
            hi = (np_seeds >> np.uint64(32)).astype(np.uint32)
            short = np.nonzero(hi == 0)[0]
            wide = np.nonzero(hi)[0]
            if not len(short):
                # homogeneous key widths adopt the seeded matrix as-is
                # instead of scattering 25 MB through a fancy index
                self._state = self._init_by_array(np.stack([lo, hi]))
            elif not len(wide):
                self._state = self._init_by_array(lo[None, :])
            else:
                self._state[:, short] = self._init_by_array(lo[short][None, :])
                self._state[:, wide] = self._init_by_array(
                    np.stack([lo[wide], hi[wide]])
                )
            return
        # generic path: group scenarios by key length so init_by_array
        # vectorizes per group (arbitrary-precision / negative seeds)
        by_len: Dict[int, List[int]] = {}
        keys: List[List[int]] = []
        for row, seed in enumerate(seeds):
            a = -seed if seed < 0 else seed
            key = [
                (a >> (32 * i)) & 0xFFFFFFFF
                for i in range(max(1, (a.bit_length() + 31) // 32))
            ]
            keys.append(key)
            by_len.setdefault(len(key), []).append(row)
        for klen, group in by_len.items():
            key_matrix = np.array([keys[r] for r in group], dtype=np.uint32).T
            self._state[:, group] = self._init_by_array(key_matrix)

    def _init_by_array(self, key: Any) -> Any:
        """Reference ``init_by_array`` across a ``(klen, rows)`` key matrix."""
        np = self._np
        klen = key.shape[0]
        rows = key.shape[1]
        # init_genrand(19650218) is seed-independent: computed once per
        # process (scalar Python ints: uint32 wraparound without
        # overflow warnings) and kept as uint32 scalars — word i's
        # pre-update value on the first wrap is base[i] for every row,
        # so no (624, rows) broadcast copy is ever materialized
        global _MT_SEED_BASE
        if _MT_SEED_BASE is None:
            base_words = [19650218]
            for i in range(1, _MT_N):
                prev = base_words[-1]
                base_words.append(
                    (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
                )
            _MT_SEED_BASE = [np.uint32(w) for w in base_words]
        base = _MT_SEED_BASE
        mt = np.empty((_MT_N, rows), dtype=np.uint32)
        mt[0].fill(int(base[0]))
        # the recurrences run ~2N sequential steps over `rows`-wide
        # words: keep them allocation-free (one scratch row, `out=`
        # everywhere), fold the per-step `key[j] + j` into a precomputed
        # matrix, and hoist the row views and scalar constants out of
        # the loop — per-step Python overhead is the dominant cost
        tmp = np.empty(rows, dtype=np.uint32)
        key_plus = key + np.arange(klen, dtype=np.uint32)[:, None]
        kp = [key_plus[j] for j in range(klen)]
        row_v = [mt[i] for i in range(_MT_N)]
        i_u32 = [np.uint32(i) for i in range(_MT_N)]
        mult1 = np.uint32(1664525)
        mult2 = np.uint32(1566083941)
        thirty = np.uint32(30)
        steps = max(_MT_N, klen)
        scalar_steps = min(steps, _MT_N - 1)
        i, j = 1, 0
        # words 1..623 are untouched before their first update, so the
        # `^ mt[i]` term is the scalar base word, not an array read
        for _ in range(scalar_steps):
            prev = row_v[i - 1]
            np.right_shift(prev, thirty, out=tmp)
            np.bitwise_xor(prev, tmp, out=tmp)
            np.multiply(tmp, mult1, out=tmp)
            np.bitwise_xor(tmp, base[i], out=tmp)
            np.add(tmp, kp[j], out=row_v[i])
            i += 1
            j += 1
            if j >= klen:
                j = 0
        for _ in range(steps - scalar_steps):
            if i >= _MT_N:
                np.copyto(row_v[0], row_v[_MT_N - 1])
                i = 1
            prev = row_v[i - 1]
            cur = row_v[i]
            np.right_shift(prev, thirty, out=tmp)
            np.bitwise_xor(prev, tmp, out=tmp)
            np.multiply(tmp, mult1, out=tmp)
            np.bitwise_xor(cur, tmp, out=tmp)
            np.add(tmp, kp[j], out=cur)
            i += 1
            j += 1
            if j >= klen:
                j = 0
        if i >= _MT_N:
            np.copyto(row_v[0], row_v[_MT_N - 1])
            i = 1
        for _ in range(_MT_N - 1):
            prev = row_v[i - 1]
            cur = row_v[i]
            np.right_shift(prev, thirty, out=tmp)
            np.bitwise_xor(prev, tmp, out=tmp)
            np.multiply(tmp, mult2, out=tmp)
            np.bitwise_xor(cur, tmp, out=tmp)
            np.subtract(tmp, i_u32[i], out=cur)
            i += 1
            if i >= _MT_N:
                np.copyto(row_v[0], row_v[_MT_N - 1])
                i = 1
        mt[0] = np.uint32(0x80000000)
        return mt

    def _fill_to(self, upto: int) -> None:
        """Advance the lockstep in-place twist through word ``upto``.

        Valid only while every row shares the same block phase
        (``_synced``).  Words are produced in index order, which makes
        the reference recurrence safe fully in place: ``y_k`` reads the
        still-old ``s[k]``/``s[k+1]``, words below ``N-M`` read the
        still-old tail ``s[k+M]``, later words read the already-new
        ``s[k-(N-M)]`` in sub-chunks of at most ``N-M``, and word 623
        reads the new ``s[0]``/``s[M-1]`` plus its own old value.
        """
        np = self._np
        a = self._filled
        b = min(upto, _MT_N)
        if b <= a:
            return
        s = self._state
        upper, lower = np.uint32(0x80000000), np.uint32(0x7FFFFFFF)
        bb = min(b, _MT_N - 1)
        if bb > a:
            y = (s[a:bb] & upper) | (s[a + 1 : bb + 1] & lower)
            v = (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * np.uint32(0x9908B0DF))
            lo, hi = a, min(bb, _MT_N - _MT_M)
            if hi > lo:
                s[lo:hi] = s[lo + _MT_M : hi + _MT_M] ^ v[lo - a : hi - a]
            lo = max(a, _MT_N - _MT_M)
            while lo < bb:
                hi = min(bb, lo + (_MT_N - _MT_M))
                s[lo:hi] = (
                    s[lo - (_MT_N - _MT_M) : hi - (_MT_N - _MT_M)]
                    ^ v[lo - a : hi - a]
                )
                lo = hi
        if b == _MT_N:
            y_last = (s[_MT_N - 1] & upper) | (s[0] & lower)
            s[_MT_N - 1] = (
                s[_MT_M - 1]
                ^ (y_last >> np.uint32(1))
                ^ ((y_last & np.uint32(1)) * np.uint32(0x9908B0DF))
            )
        t = s[a:b].copy()
        t ^= t >> np.uint32(11)
        t ^= (t << np.uint32(7)) & np.uint32(0x9D2C5680)
        t ^= (t << np.uint32(15)) & np.uint32(0xEFC60000)
        t ^= t >> np.uint32(18)
        self._buf[a:b] = t
        self._filled = b

    def _twist_rows(self, rows: Any) -> None:
        """Regenerate + temper the block for the given scenario columns.

        The per-row slow path once streams have diverged across a block
        boundary; the lockstep fast path is :meth:`_fill_to`.
        """
        np = self._np
        s = self._state[:, rows]
        old = s.copy()
        upper, lower = np.uint32(0x80000000), np.uint32(0x7FFFFFFF)
        nxt = np.concatenate([old[1:], old[:1]], axis=0)
        y = (old & upper) | (nxt & lower)
        v = (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * np.uint32(0x9908B0DF))
        # reference order: mt[k] = mt[k+M] ^ tw(...) reads already-updated
        # words once k+M wraps, so the tail fills in M-sized stages
        s[: _MT_N - _MT_M] = old[_MT_M:] ^ v[: _MT_N - _MT_M]
        s[_MT_N - _MT_M : 2 * (_MT_N - _MT_M)] = (
            s[: _MT_N - _MT_M] ^ v[_MT_N - _MT_M : 2 * (_MT_N - _MT_M)]
        )
        s[2 * (_MT_N - _MT_M) : _MT_N - 1] = (
            s[_MT_N - _MT_M : _MT_N - 1 - (_MT_N - _MT_M)]
            ^ v[2 * (_MT_N - _MT_M) : _MT_N - 1]
        )
        y_last = (old[_MT_N - 1] & upper) | (s[0] & lower)
        s[_MT_N - 1] = (
            s[_MT_M - 1]
            ^ (y_last >> np.uint32(1))
            ^ ((y_last & np.uint32(1)) * np.uint32(0x9908B0DF))
        )
        t = s.copy()
        t ^= t >> np.uint32(11)
        t ^= (t << np.uint32(7)) & np.uint32(0x9D2C5680)
        t ^= (t << np.uint32(15)) & np.uint32(0xEFC60000)
        t ^= t >> np.uint32(18)
        self._state[:, rows] = s
        self._buf[:, rows] = t
        self._cursor[rows] = 0

    def _next_word(self, active: Optional[Any] = None) -> Any:
        """The next tempered word of every (active) scenario's stream.

        A scenario whose buffer is exhausted is re-twisted whether or not
        it is active this draw — an exhausted buffer has no unread words,
        so twisting early is stream-neutral.  While every row stays in
        the same block phase the twist is materialized lazily in place
        (:meth:`_fill_to`), only as deep as the furthest cursor; rows
        that cross a block boundary out of lockstep fall back to per-row
        twists for the rest of the run.
        """
        np = self._np
        cur = self._cursor
        if self._synced:
            stale = cur >= _MT_N
            if bool(stale.all()):
                # lockstep roll: a row only reaches 624 by reading word
                # 623, so the block is already fully filled (or, at
                # seeding time, untouched) — restart the lazy fill
                if self._filled:
                    self._fill_to(_MT_N)
                    self._filled = 0
                cur[:] = 0
            elif bool(stale.any()):
                # rows crossed the boundary at different draws: the
                # lockstep fill no longer describes every row — pin the
                # full state, then twist per row from here on
                self._fill_to(_MT_N)
                self._synced = False
                self._twist_rows(np.nonzero(stale)[0])
            if self._synced:
                scope = cur if active is None else cur[active]
                needed = int(scope.max()) + 1
                if needed > self._filled:
                    grown = min(2 * max(self._filled, 32), _MT_N)
                    self._fill_to(max(needed, grown))
        else:
            stale = cur >= _MT_N
            if bool(stale.any()):
                self._twist_rows(np.nonzero(stale)[0])
        gather = np.minimum(cur, _MT_N - 1)
        words = self._buf[gather, self._rowidx]
        if active is None:
            cur += 1
        else:
            cur[active] += 1
        return words

    def getrandbits32(self) -> Any:
        """One ``getrandbits(32)`` column (uint32 per row)."""
        return self._next_word()

    def getrandbits64(self) -> Any:
        """One ``getrandbits(64)`` column (low word drawn first)."""
        np = self._np
        lo = self._next_word().astype(np.uint64)
        hi = self._next_word().astype(np.uint64)
        return lo | (hi << np.uint64(32))

    def _roll_if_lockstep(self) -> None:
        """Start the next block when every row exhausted the current one."""
        if self._synced and bool((self._cursor >= _MT_N).all()):
            if self._filled:
                self._fill_to(_MT_N)
                self._filled = 0
            self._cursor[:] = 0

    def randbelow_matrix(self, width: int, count: int) -> Any:
        """``count`` sequential ``_randbelow_with_getrandbits(width)``
        draws per row, as an ``(rows, count)`` int64 matrix.

        ``k = width.bit_length()`` top bits per draw, per-row rejection
        while the candidate is ``>= width`` — rejected rows consume
        extra words exactly like their scalar twins.  In lockstep the
        whole matrix resolves by block rejection sampling: a window of
        words per row, acceptance ranks by cumulative sum, one scatter —
        a handful of array ops instead of a word-at-a-time loop whose
        late rounds wait on a shrinking tail of unlucky rows.
        """
        np = self._np
        if width <= 0:
            raise ScheduleError("randbelow needs a positive width")
        out = np.empty((self.rows, count), dtype=np.int64)
        if count == 0 or self.rows == 0:
            return out
        kshift = np.uint32(32 - width.bit_length())
        done = np.zeros(self.rows, dtype=np.int64)
        cur = self._cursor
        while self._synced:
            pending = done < count
            if not bool(pending.any()):
                return out
            self._roll_if_lockstep()
            maxcur = int(cur.max())
            remaining = count - done
            window = min(2 * int(remaining.max()) + 8, _MT_N - maxcur)
            if window <= 0:
                break  # rows straddle the block edge: word-at-a-time
            self._fill_to(maxcur + window)
            if int(cur.min()) == maxcur:
                words = self._buf[maxcur : maxcur + window]
            else:
                words = self._buf[
                    cur[None, :] + np.arange(window)[:, None], self._rowidx
                ]
            cand = (words >> kshift).astype(np.int64)
            acc = cand < width
            rank = np.cumsum(acc, axis=0)
            take = np.minimum(rank[-1], remaining)
            keep = acc & (rank <= take[None, :])
            rpos, wpos = np.nonzero(keep.T)
            out[rpos, done[rpos] + rank[wpos, rpos] - 1] = cand[wpos, rpos]
            # a satisfied row stops at its last acceptance; a row still
            # short (every candidate rejected the whole window) scanned
            # all of it; untouched rows scanned nothing
            lastpos = np.argmax(rank >= np.maximum(take, 1)[None, :], axis=0)
            consumed = np.where(take == remaining, lastpos + 1, window)
            np.add(cur, np.where(pending, consumed, 0), out=cur)
            done += take
        # diverged across a block boundary (or mid-roll): finish with
        # the per-word path, which twists stragglers row by row
        while True:
            pending = done < count
            if not bool(pending.any()):
                return out
            words = self._next_word(pending)
            cand = (words >> kshift).astype(np.int64)
            ok = pending & (cand < width)
            out[np.nonzero(ok)[0], done[ok]] = cand[ok]
            done[ok] += 1

    def randbelow(self, width: int) -> Any:
        """One ``_randbelow_with_getrandbits(width)`` column (int64 per row)."""
        return self.randbelow_matrix(width, 1)[:, 0]

    def randint_matrix(self, low: int, high: int, count: int) -> Any:
        """``count`` sequential ``randint(low, high)`` draws per row,
        as an ``(rows, count)`` int64 matrix."""
        return low + self.randbelow_matrix(high - low + 1, count)


# --------------------------------------------------------------------- #
# the bit-plane chunk verifier
# --------------------------------------------------------------------- #


class KernelFallback(Exception):
    """The fast path declined a block; replay the pending rows purely.

    Raised by :class:`NPChunkVerifier` *after* restoring its block-start
    snapshot, so the committed state it exports plus the pending rows it
    retains reproduce the pure replay exactly — anomalies include every
    actual violation, and false alarms only cost speed, never the
    verdict.
    """


#: "never cleaned" sentinel for the order/unit tables (beyond any index).
_INF = 1 << 62

#: Agent ids above this bound stay on the pure dict-keyed path rather
#: than allocating per-id array slots.
_MAX_AGENT_ID = 1 << 22


class NPChunkVerifier:
    """Vectorized replay state for one (non-cloning) schedule.

    The per-node tables of the pure ``_ReplayState`` become flat numpy
    arrays (``guard`` counts, first-clean move index and time unit, the
    packed clean plane); agents live in dense position/clock arrays.
    :meth:`feed` buffers the trailing — possibly still open — time unit
    and commits every complete unit through one sorted, segmented pass:

    * structure checks (row-local + per-agent chains) by stable sort;
    * exact sequential guard occupancy as a per-node running minimum;
    * the departure rule per (node, unit) group — a vacated node with a
      neighbour whose first-clean unit is later than the group's unit is
      exactly the pure verifier's recontamination trigger;
    * contiguity as the adjacent-extension invariant — every newly
      cleaned node needs a neighbour with a smaller first-clean index.

    Any detector firing restores the block-start snapshot and raises
    :class:`KernelFallback`; :meth:`export_pure_state` +
    :meth:`pending_rows` then hand the pure replay an identical
    mid-stream state.
    """

    def __init__(self, dimension: int, homebase: int, team: int) -> None:
        np = _require_np()
        self._np = np
        self.d = dimension
        self.n = 1 << dimension
        self.words = plane_words(self.n)
        self.home = homebase
        self.team = team
        n = self.n
        self.guard = np.zeros(n, dtype=np.int64)
        self.guard[homebase] = team
        self.clean_order = np.full(n, _INF, dtype=np.int64)
        self.clean_order[homebase] = -1
        self.clean_unit = np.full(n, _INF, dtype=np.int64)
        self.clean_unit[homebase] = 0
        self.clean_plane = pack_nodes(np.array([homebase]), n)
        self.region_size = 1
        cap = max(team, 1)
        self.pos = np.full(cap, -1, dtype=np.int64)
        self.clock = np.zeros(cap, dtype=np.int64)
        self.moves_seen = 0
        self.last_unit = 0
        empty = np.empty(0, dtype=np.int64)
        self._tail: Tuple[Any, Any, Any, Any] = (empty, empty, empty, empty)
        self._pending: Optional[Tuple[Any, Any, Any, Any]] = None

    # -- feeding -------------------------------------------------------- #

    def _fallback(self, cols: Tuple[Any, Any, Any, Any]) -> None:
        self._pending = cols
        raise KernelFallback()

    def feed(self, times: Any, agents: Any, srcs: Any, dsts: Any) -> None:
        """Buffer + commit one block of columns (any length/alignment)."""
        np = self._np
        cols = tuple(np.asarray(c, dtype=np.int64) for c in (times, agents, srcs, dsts))
        t, a, s, dd = (
            np.concatenate([old, new]) for old, new in zip(self._tail, cols)
        )
        full = (t, a, s, dd)
        if not len(t):
            return
        # row-local checks on everything pending: any failure is an
        # anomaly the pure replay will turn into the exact error
        edge = s ^ dd
        bad = (
            (t[0] < max(self.last_unit, 1))
            or bool(np.any(np.diff(t) < 0))
            or bool(np.any((s < 0) | (s >= self.n) | (dd < 0) | (dd >= self.n)))
            or bool(np.any((edge == 0) | (edge & (edge - 1) != 0) | (edge >= self.n)))
            or bool(np.any((a < 0) | (a >= _MAX_AGENT_ID)))
        )
        if bad:
            self._fallback(full)
        # only complete units commit; rows of the (open) last unit wait
        cut = int(np.searchsorted(t, t[-1], side="left"))
        if cut:
            self._commit(tuple(c[:cut] for c in full), full)
        self._tail = tuple(c[cut:] for c in full)

    def finish_tail(self) -> None:
        """Commit the buffered final unit (call once, before the verdict)."""
        if len(self._tail[0]):
            block = self._tail
            empty = self._np.empty(0, dtype=self._np.int64)
            self._tail = (empty, empty, empty, empty)
            self._commit(block, block)

    def _grow_agents(self, upto: int) -> None:
        np = self._np
        cap = len(self.pos)
        new_cap = max(upto + 1, 2 * cap)
        pos = np.full(new_cap, -1, dtype=np.int64)
        pos[:cap] = self.pos
        clock = np.zeros(new_cap, dtype=np.int64)
        clock[:cap] = self.clock
        self.pos, self.clock = pos, clock

    def _commit(self, block: Tuple[Any, Any, Any, Any], pending: Tuple[Any, Any, Any, Any]) -> None:
        """Validate + apply one block of complete time units."""
        np = self._np
        t, a, s, dd = block
        m = len(t)
        if int(a.max()) >= len(self.pos):
            self._grow_agents(int(a.max()))
        snapshot = (
            self.guard.copy(),
            self.clean_order.copy(),
            self.clean_unit.copy(),
            self.clean_plane.copy(),
            self.pos.copy(),
            self.clock.copy(),
            self.region_size,
            self.moves_seen,
            self.last_unit,
        )
        try:
            self._check_chains(t, a, s, dd)
            ev = self._check_occupancy(t, s, dd)
            self._apply_moves(t, a, s, dd)
            self._check_departures(ev)
        except KernelFallback:
            (
                self.guard,
                self.clean_order,
                self.clean_unit,
                self.clean_plane,
                self.pos,
                self.clock,
                self.region_size,
                self.moves_seen,
                self.last_unit,
            ) = snapshot
            self._fallback(pending)
        self.moves_seen += m
        self.last_unit = int(t[-1])

    def _check_chains(self, t: Any, a: Any, s: Any, dd: Any) -> None:
        """Per-agent structure: homebase starts, chained positions, one
        move per unit per agent (strictly increasing per-agent times)."""
        np = self._np
        order = np.argsort(a, kind="stable")
        sa, st, ss, sd = a[order], t[order], s[order], dd[order]
        first = np.empty(len(sa), dtype=bool)
        first[0] = True
        first[1:] = sa[1:] != sa[:-1]
        if len(sa) > 1:
            chained = (~first[1:]) & ((ss[1:] != sd[:-1]) | (st[1:] <= st[:-1]))
            if bool(chained.any()):
                raise KernelFallback()
        prev_pos = self.pos[sa[first]]
        prev_clock = self.clock[sa[first]]
        bad_first = np.where(
            prev_pos < 0,
            ss[first] != self.home,
            (ss[first] != prev_pos) | (st[first] <= prev_clock),
        )
        if bool(bad_first.any()):
            raise KernelFallback()

    def _check_occupancy(self, t: Any, s: Any, dd: Any) -> Tuple[Any, ...]:
        """Exact sequential guard occupancy as a segmented running min.

        Each move emits a ``-1`` (src) and ``+1`` (dst) event keyed by
        its column index; per node, the running count from the
        pre-block guard must never dip below zero — precisely the pure
        replay's ``no agent on src to move`` check, in column order.
        Returns the sorted event arrays for the departure-rule pass.
        """
        np = self._np
        m = len(t)
        idx = np.arange(m, dtype=np.int64)
        ev_node = np.concatenate([s, dd])
        ev_delta = np.concatenate(
            [np.full(m, -1, dtype=np.int64), np.ones(m, dtype=np.int64)]
        )
        ev_key = np.concatenate([idx, idx])
        ev_unit = np.concatenate([t, t])
        order = np.lexsort((ev_key, ev_node))
        en, edel, eu = ev_node[order], ev_delta[order], ev_unit[order]
        seg_start = np.empty(2 * m, dtype=bool)
        seg_start[0] = True
        seg_start[1:] = en[1:] != en[:-1]
        seg_idx = np.nonzero(seg_start)[0]
        cs = np.cumsum(edel)
        seg_base = cs[seg_idx] - edel[seg_idx]  # cumsum just before each segment
        seg_id = np.cumsum(seg_start) - 1
        running = self.guard[en] + cs - seg_base[seg_id]
        if bool((np.minimum.reduceat(running, seg_idx) < 0).any()):
            raise KernelFallback()
        return en, edel, eu, running, seg_start

    def _apply_moves(self, t: Any, a: Any, s: Any, dd: Any) -> None:
        """Commit guard deltas, agent tables and newly cleaned nodes."""
        np = self._np
        # agent tables: last row of each agent's segment wins
        order = np.argsort(a, kind="stable")
        sa, st, sd = a[order], t[order], dd[order]
        last = np.empty(len(sa), dtype=bool)
        last[-1] = True
        last[:-1] = sa[1:] != sa[:-1]
        self.pos[sa[last]] = sd[last]
        self.clock[sa[last]] = st[last]
        # guard counts
        self.guard += np.bincount(dd, minlength=self.n) - np.bincount(s, minlength=self.n)
        # newly cleaned nodes: first arrival per destination
        uniq, first_idx = np.unique(dd, return_index=True)
        new = self.clean_order[uniq] == _INF
        nodes, at = uniq[new], first_idx[new]
        if len(nodes):
            self.clean_order[nodes] = self.moves_seen + at
            self.clean_unit[nodes] = t[at]
            # adjacent extension: every new node needs a neighbour
            # cleaned strictly earlier (the pure contam_count[dst] < d
            # test) — in-block assignments above participate, so chains
            # of same-block extensions validate front to back
            nb_min = np.full(len(nodes), _INF, dtype=np.int64)
            for p in range(self.d):
                nb_min = np.minimum(nb_min, self.clean_order[nodes ^ (1 << p)])
            if bool((nb_min >= self.clean_order[nodes]).any()):
                raise KernelFallback()
            bits = np.left_shift(np.uint64(1), (nodes & 63).astype(np.uint64))
            np.bitwise_or.at(self.clean_plane, nodes >> 6, bits)
            self.region_size += len(nodes)

    def _check_departures(self, ev: Tuple[Any, ...]) -> None:
        """The departure rule, one segmented pass over (node, unit) groups.

        A group whose end-of-unit guard count is zero and which contains
        a departure marks a vacated node; it recontaminates — an anomaly
        here — exactly when some neighbour's first-clean unit is later
        than the group's unit (i.e. the neighbour was still contaminated
        at the unit boundary).  End-of-block ``clean_unit`` values make
        this exact: in-block later units compare later, unseen nodes are
        ``_INF``.
        """
        np = self._np
        en, edel, eu, running, node_start = ev
        unit_change = np.empty(len(en), dtype=bool)
        unit_change[0] = True
        unit_change[1:] = eu[1:] != eu[:-1]
        group_start = node_start | unit_change
        g_idx = np.nonzero(group_start)[0]
        g_end = np.concatenate([g_idx[1:], [len(en)]]) - 1
        has_dep = np.add.reduceat((edel < 0).astype(np.int64), g_idx) > 0
        cand = (running[g_end] == 0) & has_dep
        if not bool(cand.any()):
            return
        cv = en[g_idx[cand]]
        cu = eu[g_idx[cand]]
        in_region = self.clean_unit[cv] <= cu
        nb_max = np.full(len(cv), -1, dtype=np.int64)
        for p in range(self.d):
            nb_max = np.maximum(nb_max, self.clean_unit[cv ^ (1 << p)])
        if bool((in_region & (nb_max > cu)).any()):
            raise KernelFallback()

    # -- verdict + fallback export -------------------------------------- #

    def contaminated_sample(self, limit: int = 8) -> List[int]:
        """The first ``limit`` still-contaminated nodes, ascending."""
        np = self._np
        bits = unpack_plane(self.clean_plane, self.n)
        return [int(x) for x in np.nonzero(bits == 0)[0][:limit]]

    def pending_rows(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """The uncommitted rows retained at fallback time, as lists."""
        if self._pending is None:
            tail = self._tail
            return tuple(c.tolist() for c in tail)  # type: ignore[return-value]
        return tuple(c.tolist() for c in self._pending)  # type: ignore[return-value]

    def export_pure_state(self) -> Dict[str, Any]:
        """Committed state in the pure ``_ReplayState``'s vocabulary."""
        np = self._np
        not_clean = ~self.clean_plane
        spare = self.n & 63
        if spare:
            not_clean[-1] &= np.uint64((1 << spare) - 1)
        contam = np.zeros(self.n, dtype=np.int64)
        for p in range(self.d):
            contam += unpack_plane(plane_shift_dim(not_clean, p), self.n)
        in_region = bytearray(unpack_plane(self.clean_plane, self.n).tobytes())
        position = {
            int(agent): int(node)
            for agent, node in enumerate(self.pos.tolist())
            if node >= 0
        }
        clock = {agent: int(self.clock[agent]) for agent in position}
        return {
            "guard_count": self.guard.tolist(),
            "in_region": in_region,
            "contam_count": contam.tolist(),
            "region_size": int(self.region_size),
            "position": position,
            "clock": clock,
            "moves_seen": int(self.moves_seen),
            "unit_time": int(self.last_unit),
        }
