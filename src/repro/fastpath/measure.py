"""The shared metric-collection kernel for sweep cells.

``Sweep.run`` and the executor's ``sweep_cell`` task used to build the
standard metric columns with two hand-mirrored copies of the same five
lines; :func:`measure_schedule` is now the single definition both call,
so the serial and parallel paths cannot drift.

It accepts either a :class:`~repro.core.schedule.Schedule` or a
:class:`~repro.fastpath.compiled.CompiledSchedule` — both expose
``team_size`` and the one-pass ``aggregates()`` block — which is what
makes the cache's warm path *deserialize-and-measure*: a compiled
schedule answers every column straight from its stats header without
materializing a single ``Move``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Protocol

from repro.core.chunkstream import ScheduleChunk
from repro.core.schedule import ScheduleAggregates
from repro.core.states import AgentRole
from repro.errors import ScheduleError

__all__ = ["measure_schedule", "measure_chunks", "Measurable"]


class Measurable(Protocol):
    """What :func:`measure_schedule` needs: ``Schedule`` or
    ``CompiledSchedule``."""

    team_size: int

    @property
    def n(self) -> int:
        """Number of hypercube nodes the schedule covers."""
        ...

    def aggregates(self) -> ScheduleAggregates:
        """The memoized one-pass aggregate block."""
        ...


def measure_schedule(schedule: Measurable) -> Dict[str, float]:
    """The standard sweep metric columns for one schedule.

    Keys match :data:`repro.analysis.sweeps.STANDARD_COLUMNS`: the
    paper's team size, total/agent/synchronizer move counts (Theorem 3's
    decomposition) and the ideal-time makespan.
    """
    agg = schedule.aggregates()
    return {
        "agents": schedule.team_size,
        "moves": agg.total_moves,
        "agent_moves": agg.role_counts[AgentRole.AGENT],
        "sync_moves": agg.role_counts[AgentRole.SYNCHRONIZER],
        "steps": agg.makespan,
    }


def measure_chunks(chunks: Iterable[ScheduleChunk]) -> Dict[str, float]:
    """Fold a chunk stream into the standard metric columns.

    Every chunk already carries the running aggregate block, so this is
    a pure fold: drain the stream, answer from the final chunk's
    ``stats_so_far`` and the header team size.  Values are identical to
    ``measure_schedule`` on the materialized schedule.  Raises
    :class:`~repro.errors.ScheduleError` on a torn stream.
    """
    last: ScheduleChunk | None = None
    seen = False
    for chunk in chunks:
        seen = True
        if chunk.is_last:
            last = chunk
    if not seen:
        raise ScheduleError("empty chunk stream (no chunks at all)")
    if last is None:
        raise ScheduleError("torn chunk stream: no final chunk seen")
    agg = last.stats_so_far
    return {
        "agents": last.header.team_size,
        "moves": agg.total_moves,
        "agent_moves": agg.role_counts[AgentRole.AGENT],
        "sync_moves": agg.role_counts[AgentRole.SYNCHRONIZER],
        "steps": agg.makespan,
    }
