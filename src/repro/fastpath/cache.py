"""Content-addressed on-disk cache of compiled schedules.

A :class:`ScheduleCache` maps a *fingerprint* — the SHA-256 of
(cache schema version, compiled-format version, strategy name, strategy
version tag, dimension, strategy params) — to one
:class:`~repro.fastpath.compiled.CompiledSchedule` blob on disk.  The
fingerprint is the file name, so a cache directory is safe to share:

* **between runs** — any input that changes the generated schedule
  (generator code via the strategy ``version`` tag, parameters, the byte
  format itself) changes the fingerprint, so stale entries are never
  *served*, they are simply never addressed again;
* **between processes** — writes go to a unique tmp file in the same
  directory followed by :func:`os.replace`, which is atomic on POSIX and
  Windows, so parallel executor workers racing on the same entry each
  publish a complete blob and the last one wins (they are byte-identical
  anyway: generation is deterministic);
* **against corruption** — a torn, truncated or bit-flipped entry fails
  the blob's CRC/length checks
  (:class:`~repro.errors.CompiledScheduleError`), is deleted, counted as
  ``corrupt`` and regenerated; it never crashes a run and never
  propagates garbage.

Hit/miss/corrupt counts are mirrored into the process-wide
:class:`~repro.obs.metrics.MetricsRegistry` (``fastpath.cache.*``
counters) for run manifests, without this module importing any
higher layer — the registry is injected by the caller via
:meth:`ScheduleCache.bind_metrics`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.schedule import Schedule
from repro.core.strategy import Strategy
from repro.errors import CompiledScheduleError, ScheduleCacheError
from repro.fastpath.compiled import FORMAT_VERSION, SCHEMA_VERSION, CompiledSchedule

__all__ = ["ScheduleCache", "CacheStats", "default_cache_dir", "fingerprint"]

#: bump to orphan every existing cache entry at once
CACHE_SCHEMA = "schedule-cache/v1"

#: environment variable naming the default cache directory
CACHE_DIR_ENV = "REPRO_SCHEDULE_CACHE"

_DEFAULT_DIR = Path(".repro-cache") / "schedules"


def default_cache_dir() -> Path:
    """``$REPRO_SCHEDULE_CACHE`` if set, else ``.repro-cache/schedules``."""
    # The variable picks WHERE entries live, never WHAT they contain —
    # content is keyed by the fingerprint alone, so this read cannot
    # leak host state into schedule bytes.
    env = os.environ.get(CACHE_DIR_ENV)  # repro-lint: disable=RPR320
    return Path(env) if env else _DEFAULT_DIR


def fingerprint(
    strategy_name: str,
    strategy_version: str,
    dimension: int,
    params: Optional[Dict[str, object]] = None,
) -> str:
    """Content address of one (strategy, dimension, params) cell.

    Hashes the canonical JSON of every input that determines generator
    output, plus both format versions, so any incompatibility surfaces
    as a clean miss.
    """
    key = json.dumps(
        {
            "cache_schema": CACHE_SCHEMA,
            "format_version": FORMAT_VERSION,
            "blob_schema": SCHEMA_VERSION,
            "strategy": strategy_name,
            "strategy_version": strategy_version,
            "dimension": dimension,
            "params": params or {},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class CacheStats:
    """Mutable hit/miss/corrupt counters, optionally mirrored to a
    :class:`~repro.obs.metrics.MetricsRegistry`."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        self._metrics: Optional[Any] = None

    def bind(self, metrics: Any) -> None:
        """Mirror every future count into ``metrics`` counters."""
        self._metrics = metrics

    def count(self, what: str) -> None:
        """Bump counter ``what`` (``hits``/``misses``/``corrupt``/``stores``)."""
        setattr(self, what, getattr(self, what) + 1)
        if self._metrics is not None:
            self._metrics.counter(f"fastpath.cache.{what}").inc()

    def as_dict(self) -> Dict[str, int]:
        """The four counters as a JSON-able dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }


class ScheduleCache:
    """Content-addressed schedule store rooted at one directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).  Safe to share
        between concurrent processes; see the module docstring.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if self.root.exists() and not self.root.is_dir():
            raise ScheduleCacheError(f"cache root {self.root} is not a directory")
        self.stats = CacheStats()
        self._tracer: Optional[Any] = None

    def bind_metrics(self, metrics: Any) -> None:
        """Mirror the counters into ``metrics`` (``fastpath.cache.*``)."""
        self.stats.bind(metrics)

    def bind_tracer(self, tracer: Any) -> None:
        """Wrap every load/store in spans on ``tracer`` (duck-typed —
        anything with a ``span(name, **attrs)`` context manager works, so
        this module never imports ``repro.obs``; ``None`` unbinds)."""
        self._tracer = tracer

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def path_for(self, fp: str) -> Path:
        """On-disk location of the entry with fingerprint ``fp``."""
        if len(fp) != 64 or not all(c in "0123456789abcdef" for c in fp):
            raise ScheduleCacheError(f"malformed fingerprint {fp!r}")
        return self.root / f"{fp}.rprc"

    @staticmethod
    def fingerprint_of(strategy: Strategy, dimension: int) -> str:
        """Fingerprint of one strategy instance at one dimension."""
        return fingerprint(
            strategy.name, strategy.version, dimension, strategy.cache_params()
        )

    # ------------------------------------------------------------------ #
    # load / store
    # ------------------------------------------------------------------ #

    def load(self, fp: str) -> Optional[CompiledSchedule]:
        """The cached compiled schedule for ``fp``, or ``None``.

        A missing entry counts as a miss; an unreadable or corrupt entry
        is deleted, counted as both ``corrupt`` and a miss, and reported
        as ``None`` so the caller regenerates.
        """
        tracer = self._tracer
        if tracer is None:
            return self._load(fp)
        with tracer.span("fastpath.cache.load", fingerprint=fp[:16]) as span:
            compiled = self._load(fp)
            span.attrs["outcome"] = "hit" if compiled is not None else "miss"
            return compiled

    def _load(self, fp: str) -> Optional[CompiledSchedule]:
        path = self.path_for(fp)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.count("misses")
            return None
        except OSError:
            self.stats.count("corrupt")
            self.stats.count("misses")
            return None
        try:
            compiled = CompiledSchedule.from_bytes(blob)
        except CompiledScheduleError:
            self.stats.count("corrupt")
            self.stats.count("misses")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        self.stats.count("hits")
        return compiled

    def store(self, fp: str, compiled: CompiledSchedule) -> Path:
        """Atomically publish ``compiled`` under fingerprint ``fp``.

        tmp-file + :func:`os.replace` in the same directory: concurrent
        writers each publish a complete blob, readers never observe a
        torn one.
        """
        tracer = self._tracer
        if tracer is None:
            return self._store(fp, compiled)
        with tracer.span("fastpath.cache.store", fingerprint=fp[:16]):
            return self._store(fp, compiled)

    def _store(self, fp: str, compiled: CompiledSchedule) -> Path:
        path = self.path_for(fp)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{fp[:16]}.", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(compiled.to_bytes())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise ScheduleCacheError(f"cannot write cache entry {path}: {exc}") from exc
        self.stats.count("stores")
        return path

    # ------------------------------------------------------------------ #
    # the warm path
    # ------------------------------------------------------------------ #

    def load_compiled(
        self, strategy: Strategy, dimension: int
    ) -> Tuple[str, Optional[CompiledSchedule]]:
        """(fingerprint, cached compiled schedule or ``None``)."""
        fp = self.fingerprint_of(strategy, dimension)
        return fp, self.load(fp)

    def schedule_for(self, strategy: Strategy, dimension: int) -> Schedule:
        """The strategy's schedule, served warm when possible.

        This is the hook :meth:`repro.core.strategy.Strategy.run`
        consults when this cache is installed as the process-wide active
        cache: a hit decompiles the stored columns (no generation), a
        miss generates, compiles and publishes.
        """
        fp, compiled = self.load_compiled(strategy, dimension)
        if compiled is None:
            from repro.topology.hypercube import Hypercube

            schedule = strategy.generate(Hypercube(dimension))
            self.store(fp, CompiledSchedule.from_schedule(schedule))
            return schedule
        return compiled.to_schedule()

    # ------------------------------------------------------------------ #
    # maintenance (the ``repro-search cache`` subcommand)
    # ------------------------------------------------------------------ #

    def entries(self) -> Iterator[Path]:
        """Every entry file currently in the cache directory."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.rprc")))

    def info(self) -> Dict[str, object]:
        """Summary of the on-disk state plus this process's counters."""
        paths = list(self.entries())
        total = 0
        for p in paths:
            try:
                total += p.stat().st_size
            except OSError:  # pragma: no cover - racing delete
                pass
        return {
            "root": str(self.root),
            "entries": len(paths),
            "total_bytes": total,
            "stats": self.stats.as_dict(),
        }

    def clear(self) -> int:
        """Delete every entry (and stray tmp file); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("*.rprc")) + list(self.root.glob("*.tmp")):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing delete
                pass
        return removed
