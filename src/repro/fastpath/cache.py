"""Content-addressed on-disk cache of compiled schedules.

A :class:`ScheduleCache` maps a *fingerprint* — the SHA-256 of
(cache schema version, compiled-format version, strategy name, strategy
version tag, dimension, strategy params) — to one
:class:`~repro.fastpath.compiled.CompiledSchedule` blob on disk.  The
fingerprint is the file name, so a cache directory is safe to share:

* **between runs** — any input that changes the generated schedule
  (generator code via the strategy ``version`` tag, parameters, the byte
  format itself) changes the fingerprint, so stale entries are never
  *served*, they are simply never addressed again;
* **between processes** — writes go to a unique tmp file in the same
  directory followed by :func:`os.replace`, which is atomic on POSIX and
  Windows, so parallel executor workers racing on the same entry each
  publish a complete blob and the last one wins (they are byte-identical
  anyway: generation is deterministic);
* **against corruption** — a torn, truncated or bit-flipped entry fails
  the blob's CRC/length checks
  (:class:`~repro.errors.CompiledScheduleError`), is deleted, counted as
  ``corrupt`` and regenerated; it never crashes a run and never
  propagates garbage.

Entries come in two layouts under one fingerprint: the monolithic v1
blob (``.rprc``, the whole compiled schedule with one trailing CRC) and
the chunked v2 blob (``.rprk``, fixed-size column blocks each with its
own length + CRC record, header up front, metadata/stats footer at the
end).  The classic accessors (:meth:`ScheduleCache.schedule_for`,
:meth:`ScheduleCache.compiled_for`) and the streaming one
(:meth:`ScheduleCache.stream_for`) each serve from either layout, so a
cell is stored once in whichever layout produced it.  The chunked
layout is what makes ``d >= 16`` warm paths bounded-memory: chunks
stream straight off disk — never the whole entry in memory, never a
``Move`` object — and a corrupt chunk costs one deterministic
regeneration spliced invisibly into the stream, not a crash.

Hit/miss/corrupt counts are mirrored into the process-wide
:class:`~repro.obs.metrics.MetricsRegistry` (``fastpath.cache.*``
counters) for run manifests, without this module importing any
higher layer — the registry is injected by the caller via
:meth:`ScheduleCache.bind_metrics`.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zlib
from array import array
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.chunkstream import (
    DEFAULT_CHUNK_MOVES,
    KIND_CODE,
    KINDS,
    ROLE_CODE,
    ROLES,
    AggregateScanner,
    ChunkStreamHeader,
    ScheduleChunk,
    rechunk,
)
from repro.core.schedule import MoveKind, Schedule, ScheduleAggregates
from repro.core.states import AgentRole
from repro.core.strategy import Strategy
from repro.errors import CompiledScheduleError, ScheduleCacheError, ScheduleError
from repro.fastpath.compiled import (
    COLUMN_NAMES,
    FORMAT_VERSION,
    SCHEMA_VERSION,
    CompiledSchedule,
    _native,
    decode_metadata,
    encode_metadata,
)

__all__ = ["ScheduleCache", "CacheStats", "default_cache_dir", "fingerprint"]

#: bump to orphan every existing cache entry at once
CACHE_SCHEMA = "schedule-cache/v1"

#: magic prefix of a chunked (v2) cache entry
CHUNK_MAGIC = b"RPRK"
#: version tag of the chunked byte layout below
CHUNK_FORMAT_VERSION = 2
#: logical schema tag of the chunked blob (documentation; the cache
#: fingerprint deliberately does NOT include it — a v1 and a v2 entry
#: of the same cell are the same content in two layouts, so they share
#: one content address and either satisfies a lookup)
CHUNK_SCHEMA_VERSION = "compiled-schedule-chunked/v2"

# chunked entry layout:
#   CHUNK_MAGIC | version u16 | header_len u32 | header JSON |
#   chunk records: n_rows u32 | crc32(payload) u32 | payload |
#   footer record: 0xFFFFFFFF u32 | crc32(footer JSON) u32 |
#                  footer_len u32 | footer JSON
# The header holds everything known before the first move (the chunk
# stream header fields + enum value tables + the stored block size);
# the footer holds what only the end of generation knows (metadata,
# final aggregate stats).  Each chunk payload is the six int64 columns
# of the block, concatenated in COLUMN_NAMES order, little-endian, and
# is independently CRC-protected: one flipped bit costs one chunk's
# regeneration, not the whole entry's trust.
_CHUNK_PREAMBLE = struct.Struct("<4sHI")
_CHUNK_RECORD = struct.Struct("<II")
_FOOTER_SENTINEL = 0xFFFFFFFF

#: environment variable naming the default cache directory
CACHE_DIR_ENV = "REPRO_SCHEDULE_CACHE"

_DEFAULT_DIR = Path(".repro-cache") / "schedules"


def default_cache_dir() -> Path:
    """``$REPRO_SCHEDULE_CACHE`` if set, else ``.repro-cache/schedules``."""
    # The variable picks WHERE entries live, never WHAT they contain —
    # content is keyed by the fingerprint alone, so this read cannot
    # leak host state into schedule bytes.
    env = os.environ.get(CACHE_DIR_ENV)  # repro-lint: disable=RPR320
    return Path(env) if env else _DEFAULT_DIR


def fingerprint(
    strategy_name: str,
    strategy_version: str,
    dimension: int,
    params: Optional[Dict[str, object]] = None,
) -> str:
    """Content address of one (strategy, dimension, params) cell.

    Hashes the canonical JSON of every input that determines generator
    output, plus both format versions, so any incompatibility surfaces
    as a clean miss.
    """
    key = json.dumps(
        {
            "cache_schema": CACHE_SCHEMA,
            "format_version": FORMAT_VERSION,
            "blob_schema": SCHEMA_VERSION,
            "strategy": strategy_name,
            "strategy_version": strategy_version,
            "dimension": dimension,
            "params": params or {},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class CacheStats:
    """Mutable hit/miss/corrupt counters, optionally mirrored to a
    :class:`~repro.obs.metrics.MetricsRegistry`."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        # chunk-level counters of the streaming path: one ``chunk_hits``
        # per chunk served to a consumer from a warm on-disk entry, one
        # ``chunk_stores`` per chunk record persisted while streaming
        self.chunk_hits = 0
        self.chunk_stores = 0
        self._metrics: Optional[Any] = None

    def bind(self, metrics: Any) -> None:
        """Mirror every future count into ``metrics`` counters."""
        self._metrics = metrics

    def count(self, what: str) -> None:
        """Bump counter ``what`` (``hits``/``misses``/``corrupt``/
        ``stores``/``chunk_hits``/``chunk_stores``)."""
        setattr(self, what, getattr(self, what) + 1)
        if self._metrics is not None:
            self._metrics.counter(f"fastpath.cache.{what}").inc()

    def as_dict(self) -> Dict[str, int]:
        """The six counters as a JSON-able dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
            "chunk_hits": self.chunk_hits,
            "chunk_stores": self.chunk_stores,
        }


class ScheduleCache:
    """Content-addressed schedule store rooted at one directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).  Safe to share
        between concurrent processes; see the module docstring.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if self.root.exists() and not self.root.is_dir():
            raise ScheduleCacheError(f"cache root {self.root} is not a directory")
        self.stats = CacheStats()
        self._tracer: Optional[Any] = None

    def bind_metrics(self, metrics: Any) -> None:
        """Mirror the counters into ``metrics`` (``fastpath.cache.*``)."""
        self.stats.bind(metrics)

    def bind_tracer(self, tracer: Any) -> None:
        """Wrap every load/store in spans on ``tracer`` (duck-typed —
        anything with a ``span(name, **attrs)`` context manager works, so
        this module never imports ``repro.obs``; ``None`` unbinds)."""
        self._tracer = tracer

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def path_for(self, fp: str) -> Path:
        """On-disk location of the monolithic (v1) entry for ``fp``."""
        if len(fp) != 64 or not all(c in "0123456789abcdef" for c in fp):
            raise ScheduleCacheError(f"malformed fingerprint {fp!r}")
        return self.root / f"{fp}.rprc"

    def chunk_path_for(self, fp: str) -> Path:
        """On-disk location of the chunked (v2) entry for ``fp``.

        The two layouts share one fingerprint — same content, different
        bytes — so a cell is stored at most once: the classic path
        publishes ``.rprc``, the streaming path ``.rprk``, and each
        loader falls back to the other's file.
        """
        return self.path_for(fp).with_suffix(".rprk")

    @staticmethod
    def fingerprint_of(strategy: Strategy, dimension: int) -> str:
        """Fingerprint of one strategy instance at one dimension."""
        return fingerprint(
            strategy.name, strategy.version, dimension, strategy.cache_params()
        )

    # ------------------------------------------------------------------ #
    # load / store
    # ------------------------------------------------------------------ #

    def load(self, fp: str) -> Optional[CompiledSchedule]:
        """The cached compiled schedule for ``fp``, or ``None``.

        A missing entry counts as a miss; an unreadable or corrupt entry
        is deleted, counted as both ``corrupt`` and a miss, and reported
        as ``None`` so the caller regenerates.
        """
        tracer = self._tracer
        if tracer is None:
            return self._load(fp)
        with tracer.span("fastpath.cache.load", fingerprint=fp[:16]) as span:
            compiled = self._load(fp)
            span.attrs["outcome"] = "hit" if compiled is not None else "miss"
            return compiled

    def _load(self, fp: str) -> Optional[CompiledSchedule]:
        path = self.path_for(fp)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return self._load_chunked_fallback(fp)
        except OSError:
            self.stats.count("corrupt")
            self.stats.count("misses")
            return None
        try:
            compiled = CompiledSchedule.from_bytes(blob)
        except CompiledScheduleError:
            self.stats.count("corrupt")
            self.stats.count("misses")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        self.stats.count("hits")
        return compiled

    def _load_chunked_fallback(self, fp: str) -> Optional[CompiledSchedule]:
        """Serve a :meth:`load` request from a chunked (v2) entry.

        A cell generated by the streaming path exists only as ``.rprk``;
        assembling its chunks gives classic consumers a warm hit instead
        of a pointless regeneration.  Corruption is handled exactly like
        a corrupt v1 blob: delete, count, miss.
        """
        cpath = self.chunk_path_for(fp)
        if not cpath.exists():
            self.stats.count("misses")
            return None
        try:
            compiled = CompiledSchedule.from_chunks(self._read_chunk_entry(cpath))
        except (CompiledScheduleError, ScheduleError, OSError):
            self.stats.count("corrupt")
            self.stats.count("misses")
            try:
                cpath.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        self.stats.count("hits")
        return compiled

    def store(self, fp: str, compiled: CompiledSchedule) -> Path:
        """Atomically publish ``compiled`` under fingerprint ``fp``.

        tmp-file + :func:`os.replace` in the same directory: concurrent
        writers each publish a complete blob, readers never observe a
        torn one.
        """
        tracer = self._tracer
        if tracer is None:
            return self._store(fp, compiled)
        with tracer.span("fastpath.cache.store", fingerprint=fp[:16]):
            return self._store(fp, compiled)

    def _store(self, fp: str, compiled: CompiledSchedule) -> Path:
        path = self.path_for(fp)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{fp[:16]}.", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(compiled.to_bytes())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            raise ScheduleCacheError(f"cannot write cache entry {path}: {exc}") from exc
        self.stats.count("stores")
        return path

    # ------------------------------------------------------------------ #
    # chunked (v2) entry I/O
    # ------------------------------------------------------------------ #

    def _read_chunk_entry(
        self,
        path: Path,
        expect_strategy: Optional[str] = None,
        expect_dimension: Optional[int] = None,
    ) -> Iterator[ScheduleChunk]:
        """Stream the chunks of a chunked (v2) entry off disk.

        Bounded memory: one chunk record is resident at a time (plus a
        one-chunk lookahead so the final record can be flagged
        ``is_last`` when the footer arrives).  Raises
        :class:`~repro.errors.CompiledScheduleError` on any
        malformation — bad magic, truncated record, per-chunk CRC
        failure, footer stats disagreeing with the payloads — which the
        callers translate into delete-and-regenerate.
        """
        with path.open("rb") as fh:
            pre = fh.read(_CHUNK_PREAMBLE.size)
            if len(pre) != _CHUNK_PREAMBLE.size:
                raise CompiledScheduleError(f"chunked blob too short ({len(pre)} bytes)")
            magic, version, header_len = _CHUNK_PREAMBLE.unpack(pre)
            if magic != CHUNK_MAGIC:
                raise CompiledScheduleError(f"bad chunked magic {magic!r}")
            if version != CHUNK_FORMAT_VERSION:
                raise CompiledScheduleError(
                    f"unsupported chunked format version {version}"
                )
            header_bytes = fh.read(header_len)
            if len(header_bytes) != header_len:
                raise CompiledScheduleError("truncated chunked header")
            try:
                raw = json.loads(header_bytes.decode("utf-8"))
                dimension = int(raw["dimension"])
                strategy = str(raw["strategy"])
                columns = list(raw["columns"])
                kind_values = [MoveKind(v) for v in raw["kind_values"]]
                role_values = [AgentRole(v) for v in raw["role_values"]]
                header = ChunkStreamHeader(
                    dimension=dimension,
                    strategy=strategy,
                    homebase=int(raw["homebase"]),
                    uses_cloning=bool(raw["uses_cloning"]),
                    team_size=int(raw["team_size"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise CompiledScheduleError(
                    f"undecodable chunked header: {exc}"
                ) from exc
            if columns != list(COLUMN_NAMES):
                raise CompiledScheduleError(f"unexpected column set {columns}")
            # the fingerprint already binds content, so a mismatch here
            # means a hash collision or a renamed file: treat as corrupt
            if expect_strategy is not None and strategy != expect_strategy:
                raise CompiledScheduleError(
                    f"entry holds strategy {strategy!r}, expected {expect_strategy!r}"
                )
            if expect_dimension is not None and dimension != expect_dimension:
                raise CompiledScheduleError(
                    f"entry holds d={dimension}, expected d={expect_dimension}"
                )
            scanner = AggregateScanner()
            pending: Optional[ScheduleChunk] = None
            index = 0
            start = 0
            while True:
                head = fh.read(_CHUNK_RECORD.size)
                if len(head) != _CHUNK_RECORD.size:
                    raise CompiledScheduleError(
                        "truncated chunked blob (no footer record)"
                    )
                n_rows, crc = _CHUNK_RECORD.unpack(head)
                if n_rows == _FOOTER_SENTINEL:
                    lenb = fh.read(4)
                    if len(lenb) != 4:
                        raise CompiledScheduleError("truncated footer record")
                    (footer_len,) = struct.unpack("<I", lenb)
                    footer_bytes = fh.read(footer_len)
                    if len(footer_bytes) != footer_len:
                        raise CompiledScheduleError("truncated footer record")
                    if zlib.crc32(footer_bytes) != crc:
                        raise CompiledScheduleError("footer CRC mismatch")
                    try:
                        footer = json.loads(footer_bytes.decode("utf-8"))
                        stats = ScheduleAggregates.from_dict(footer["stats"])
                        metadata = decode_metadata(footer["metadata"])
                    except (KeyError, TypeError, ValueError) as exc:
                        raise CompiledScheduleError(
                            f"undecodable chunked footer: {exc}"
                        ) from exc
                    break
                payload = fh.read(n_rows * len(COLUMN_NAMES) * 8)
                if len(payload) != n_rows * len(COLUMN_NAMES) * 8:
                    raise CompiledScheduleError(f"truncated chunk {index}")
                if zlib.crc32(payload) != crc:
                    raise CompiledScheduleError(
                        f"chunk {index} CRC mismatch (corrupt entry)"
                    )
                cols: List["array[int]"] = []
                for c in range(len(COLUMN_NAMES)):
                    col = array("q", bytes(0))
                    col.frombytes(payload[c * n_rows * 8 : (c + 1) * n_rows * 8])
                    cols.append(_native(col))
                # re-map stored enum codes if declaration order changed
                if kind_values != list(KINDS):  # pragma: no cover - enum reorder
                    cols[4] = array("q", (KIND_CODE[kind_values[v]] for v in cols[4]))
                if role_values != list(ROLES):  # pragma: no cover - enum reorder
                    cols[5] = array("q", (ROLE_CODE[role_values[v]] for v in cols[5]))
                try:
                    for i in range(n_rows):
                        scanner.add(cols[0][i], cols[1][i], cols[4][i], cols[5][i])
                except (IndexError, ScheduleError) as exc:
                    raise CompiledScheduleError(
                        f"chunk {index} holds malformed moves: {exc}"
                    ) from exc
                chunk = ScheduleChunk(
                    header=header,
                    index=index,
                    start_move=start,
                    times=cols[0],
                    agents=cols[1],
                    srcs=cols[2],
                    dsts=cols[3],
                    kinds=cols[4],
                    roles=cols[5],
                    stats_so_far=scanner.snapshot(),
                )
                if pending is not None:
                    yield pending
                pending = chunk
                index += 1
                start += n_rows
            if pending is None:
                raise CompiledScheduleError("chunked blob has no chunk records")
            if pending.stats_so_far != stats:
                raise CompiledScheduleError(
                    "footer stats disagree with chunk payloads (corrupt entry)"
                )
            pending.is_last = True
            pending.metadata = dict(metadata) if isinstance(metadata, dict) else {}
            yield pending

    def _write_chunk_stream(
        self, fp: str, chunks: Iterable[ScheduleChunk], chunk_moves: int
    ) -> Iterator[ScheduleChunk]:
        """Tee a chunk stream to a chunked (v2) entry while yielding it.

        Store-while-streaming: each chunk is appended to a tmp file the
        moment it is yielded, and the entry is published atomically
        (:func:`os.replace`) as soon as the final chunk — and therefore
        the footer — has been written, *before* that chunk is handed to
        the consumer.  An abandoned or torn stream leaves no entry
        behind, only a tmp file that is unlinked on the way out.
        """
        path = self.chunk_path_for(fp)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{fp[:16]}.", suffix=".tmp", dir=self.root
            )
        except OSError as exc:
            raise ScheduleCacheError(f"cannot write cache entry {path}: {exc}") from exc
        published = False
        handle = os.fdopen(fd, "wb")
        try:
            wrote_preamble = False
            for chunk in chunks:
                try:
                    if not wrote_preamble:
                        head = chunk.header
                        header_bytes = json.dumps(
                            {
                                "schema": CHUNK_SCHEMA_VERSION,
                                "dimension": head.dimension,
                                "strategy": head.strategy,
                                "team_size": head.team_size,
                                "homebase": head.homebase,
                                "uses_cloning": head.uses_cloning,
                                "chunk_moves": chunk_moves,
                                "columns": list(COLUMN_NAMES),
                                "kind_values": [k.value for k in KINDS],
                                "role_values": [r.value for r in ROLES],
                            },
                            separators=(",", ":"),
                        ).encode("utf-8")
                        handle.write(
                            _CHUNK_PREAMBLE.pack(
                                CHUNK_MAGIC, CHUNK_FORMAT_VERSION, len(header_bytes)
                            )
                        )
                        handle.write(header_bytes)
                        wrote_preamble = True
                    payload = b"".join(
                        _native(col).tobytes() for col in chunk.columns().values()
                    )
                    handle.write(_CHUNK_RECORD.pack(len(chunk), zlib.crc32(payload)))
                    handle.write(payload)
                    self.stats.count("chunk_stores")
                    if chunk.is_last:
                        footer_bytes = json.dumps(
                            {
                                "metadata": encode_metadata(chunk.metadata),
                                "stats": chunk.stats_so_far.as_dict(),
                                "total_moves": chunk.start_move + len(chunk),
                                "num_chunks": chunk.index + 1,
                            },
                            separators=(",", ":"),
                        ).encode("utf-8")
                        handle.write(
                            _CHUNK_RECORD.pack(
                                _FOOTER_SENTINEL, zlib.crc32(footer_bytes)
                            )
                        )
                        handle.write(struct.pack("<I", len(footer_bytes)))
                        handle.write(footer_bytes)
                        handle.close()
                        os.replace(tmp, path)
                        published = True
                        self.stats.count("stores")
                except OSError as exc:
                    raise ScheduleCacheError(
                        f"cannot write cache entry {path}: {exc}"
                    ) from exc
                yield chunk
        finally:
            if not handle.closed:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - close of broken fd
                    pass
            if not published:
                try:
                    os.unlink(tmp)
                except OSError:  # pragma: no cover - racing unlink
                    pass

    # ------------------------------------------------------------------ #
    # the warm path
    # ------------------------------------------------------------------ #

    def load_compiled(
        self, strategy: Strategy, dimension: int
    ) -> Tuple[str, Optional[CompiledSchedule]]:
        """(fingerprint, cached compiled schedule or ``None``)."""
        fp = self.fingerprint_of(strategy, dimension)
        return fp, self.load(fp)

    def compiled_for(self, strategy: Strategy, dimension: int) -> CompiledSchedule:
        """The strategy's compiled schedule, served warm when possible.

        The columnar twin of :meth:`schedule_for`: a warm hit returns
        the deserialized columns *as columns* — no ``Move`` object is
        ever constructed — which is what the batch verifier, the metric
        collector and the scenario engine actually consume.  A miss
        generates, compiles, publishes and returns the compiled form.
        """
        fp, compiled = self.load_compiled(strategy, dimension)
        if compiled is None:
            from repro.topology.hypercube import Hypercube

            compiled = CompiledSchedule.from_schedule(
                strategy.generate(Hypercube(dimension))
            )
            self.store(fp, compiled)
        return compiled

    def schedule_for(self, strategy: Strategy, dimension: int) -> Schedule:
        """The strategy's schedule, served warm when possible.

        This is the hook :meth:`repro.core.strategy.Strategy.run`
        consults when this cache is installed as the process-wide active
        cache: a hit decompiles the stored columns (no generation), a
        miss generates, compiles and publishes.

        ``run``'s contract is a materialized :class:`Schedule`, so a
        warm hit here necessarily pays ``to_schedule()`` — one ``Move``
        object per stored row.  Columnar consumers must not route
        through this accessor: use :meth:`compiled_for` (columns, stats
        header) or :meth:`stream_for` (bounded-memory chunks) instead.
        """
        fp, compiled = self.load_compiled(strategy, dimension)
        if compiled is None:
            from repro.topology.hypercube import Hypercube

            schedule = strategy.generate(Hypercube(dimension))
            self.store(fp, CompiledSchedule.from_schedule(schedule))
            return schedule
        return compiled.to_schedule()

    # ------------------------------------------------------------------ #
    # the streaming warm path
    # ------------------------------------------------------------------ #

    def stream_chunks(
        self,
        strategy: Strategy,
        dimension: int,
        chunk_moves: int = DEFAULT_CHUNK_MOVES,
    ) -> Iterator[ScheduleChunk]:
        """The strategy's schedule as a bounded-memory chunk stream.

        Resolution order:

        1. a chunked (v2) entry — chunks stream straight off disk,
           re-sliced to ``chunk_moves`` if the stored block size
           differs; one ``chunk_hits`` count per chunk served;
        2. a monolithic (v1) entry — sliced via
           :meth:`CompiledSchedule.iter_chunks` (in-memory columns, but
           still zero ``Move`` objects);
        3. cold — the strategy's streaming generator, teed to a new
           chunked entry while the consumer drains it
           (store-while-streaming), published atomically at the final
           chunk.

        A chunk that fails its CRC mid-stream is handled without
        disturbing the consumer: the entry is deleted and counted
        ``corrupt``, generation restarts (deterministic, same block
        size), already-delivered chunks are skipped, and the stream
        continues seamlessly while the entry is re-published.
        """
        if chunk_moves < 1:
            raise ScheduleCacheError(f"chunk_moves must be >= 1, got {chunk_moves}")
        fp = self.fingerprint_of(strategy, dimension)
        inner = self._stream_chunks(fp, strategy, dimension, chunk_moves)
        if self._tracer is None:
            return inner
        return self._traced_chunks(inner, fp)

    def _traced_chunks(
        self, inner: Iterator[ScheduleChunk], fp: str
    ) -> Iterator[ScheduleChunk]:
        with self._tracer.span(  # type: ignore[union-attr]
            "fastpath.cache.stream", fingerprint=fp[:16]
        ) as span:
            chunks = 0
            moves = 0
            for chunk in inner:
                chunks += 1
                moves = chunk.stats_so_far.total_moves
                yield chunk
            span.attrs["chunks"] = chunks
            span.attrs["moves"] = moves

    def _stream_chunks(
        self, fp: str, strategy: Strategy, dimension: int, chunk_moves: int
    ) -> Iterator[ScheduleChunk]:
        from repro.topology.hypercube import Hypercube

        cpath = self.chunk_path_for(fp)
        if cpath.exists():
            delivered = 0  # moves already handed over (complete chunks only)
            warm = False
            try:
                source = self._read_chunk_entry(cpath, strategy.name, dimension)
                for chunk in rechunk(source, chunk_moves):
                    if not warm:
                        self.stats.count("hits")
                        warm = True
                    self.stats.count("chunk_hits")
                    yield chunk
                    delivered += len(chunk)
                return
            except (CompiledScheduleError, ScheduleError, OSError):
                self.stats.count("corrupt")
                self.stats.count("misses")
                try:
                    cpath.unlink()
                except OSError:  # pragma: no cover - racing unlink
                    pass
                # regenerate deterministically at the same block size;
                # every chunk yielded before the failure was a complete
                # chunk_moves block (rechunk only emits its final,
                # possibly-short chunk after a clean source), so the
                # replacement chunks line up exactly and the consumer
                # never notices the splice
                regen = strategy.generate_chunks(Hypercube(dimension), chunk_moves)
                for chunk in self._write_chunk_stream(fp, regen, chunk_moves):
                    if chunk.start_move < delivered and not chunk.is_last:
                        continue
                    yield chunk
                return
        compiled = self.load(fp)
        if compiled is not None:
            for chunk in compiled.iter_chunks(chunk_moves):
                self.stats.count("chunk_hits")
                yield chunk
            return
        regen = strategy.generate_chunks(Hypercube(dimension), chunk_moves)
        yield from self._write_chunk_stream(fp, regen, chunk_moves)

    def stream_for(
        self,
        strategy: Strategy,
        dimension: int,
        chunk_moves: int = DEFAULT_CHUNK_MOVES,
    ) -> Iterator[ScheduleChunk]:
        """The hook :meth:`repro.core.strategy.Strategy.run_chunks`
        consults when this cache is the process-wide active cache
        (duck-typed, like ``schedule_for``)."""
        return self.stream_chunks(strategy, dimension, chunk_moves)

    # ------------------------------------------------------------------ #
    # maintenance (the ``repro-search cache`` subcommand)
    # ------------------------------------------------------------------ #

    def entries(self) -> Iterator[Path]:
        """Every entry file (monolithic and chunked) in the cache dir."""
        if not self.root.is_dir():
            return iter(())
        return iter(
            sorted(list(self.root.glob("*.rprc")) + list(self.root.glob("*.rprk")))
        )

    def info(self) -> Dict[str, object]:
        """Summary of the on-disk state plus this process's counters."""
        paths = list(self.entries())
        total = 0
        chunked = 0
        for p in paths:
            if p.suffix == ".rprk":
                chunked += 1
            try:
                total += p.stat().st_size
            except OSError:  # pragma: no cover - racing delete
                pass
        return {
            "root": str(self.root),
            "entries": len(paths),
            "chunked_entries": chunked,
            "total_bytes": total,
            "stats": self.stats.as_dict(),
        }

    def clear(self) -> int:
        """Delete every entry (and stray tmp file); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        doomed = (
            list(self.root.glob("*.rprc"))
            + list(self.root.glob("*.rprk"))
            + list(self.root.glob("*.tmp"))
        )
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing delete
                pass
        return removed
