"""Columnar compiled schedules: struct-of-arrays ``Schedule`` twins.

A :class:`CompiledSchedule` stores the move list of a
:class:`~repro.core.schedule.Schedule` as six parallel stdlib
``array('q')`` columns (time, agent, src, dst, kind, role) plus the
one-pass :class:`~repro.core.schedule.ScheduleAggregates` stats block.
The paper's strategies emit ``O(n log n)`` moves (Theorems 3/8), so at
d=16 a schedule is ~1M Python ``Move`` objects; the columnar twin packs
the same information into six contiguous int64 buffers that serialize,
hash and replay without materializing a single ``Move``.

Two invariants define the format:

* **losslessness** — ``CompiledSchedule.from_schedule(s).to_schedule()``
  is ``==`` to ``s``, including metadata that plain JSON cannot round-trip
  (the generators record int-keyed dicts and tuples; see
  :func:`encode_metadata`);
* **self-verification** — the byte form carries a magic, a format
  version, explicit lengths and a CRC-32 footer, so a torn or bit-flipped
  cache entry raises :class:`~repro.errors.CompiledScheduleError` on load
  instead of decoding into garbage.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.chunkstream import DEFAULT_CHUNK_MOVES, AggregateScanner

from repro.core.chunkstream import (
    KIND_CODE,
    KINDS,
    ROLE_CODE,
    ROLES,
    ChunkStreamHeader,
    ScheduleChunk,
)
from repro.core.schedule import Move, MoveKind, Schedule, ScheduleAggregates, scan_moves
from repro.core.states import AgentRole
from repro.errors import CompiledScheduleError, ScheduleError

__all__ = [
    "CompiledSchedule",
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
    "encode_metadata",
    "decode_metadata",
]

#: magic prefix of every compiled-schedule blob
MAGIC = b"RPRC"
#: bump on any incompatible change to the byte layout below
FORMAT_VERSION = 1
#: logical schema tag; part of every cache fingerprint
SCHEMA_VERSION = "compiled-schedule/v1"

#: column order in the binary payload (each an int64 array)
COLUMN_NAMES: Tuple[str, ...] = ("time", "agent", "src", "dst", "kind", "role")

# enum <-> small-int codes, shared with the chunk plane so a chunk's
# columns and a compiled column slice are interchangeable.  The *byte*
# form never stores these indices bare: the header records the enum
# value strings in index order, so a blob decodes correctly even if the
# enum declaration order changes.
_KINDS: Tuple[MoveKind, ...] = KINDS
_ROLES: Tuple[AgentRole, ...] = ROLES
_KIND_CODE = KIND_CODE
_ROLE_CODE = ROLE_CODE

# MAGIC | format version (u16) | header length (u32), little-endian
_PREAMBLE = struct.Struct("<4sHI")
_CRC = struct.Struct("<I")

_TAG = "__repro__"


def encode_metadata(obj: object) -> object:
    """JSON-encodable form of a metadata value, losslessly.

    Plain JSON stringifies dict keys and turns tuples into lists, so the
    generators' metadata (int-keyed ``extras_per_level`` / ``wave_sizes``
    dicts, tuple-valued extras) would not round-trip.  Non-string-keyed
    dicts and tuples are wrapped in ``{"__repro__": ...}`` marker objects
    instead; everything else passes through.
    """
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _TAG not in obj:
            return {k: encode_metadata(v) for k, v in obj.items()}
        return {
            _TAG: "dict",
            "items": [[encode_metadata(k), encode_metadata(v)] for k, v in obj.items()],
        }
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [encode_metadata(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_metadata(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise CompiledScheduleError(
        f"metadata value of type {type(obj).__name__} is not serializable"
    )


def decode_metadata(obj: object) -> object:
    """Inverse of :func:`encode_metadata`."""
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag == "dict":
            return {decode_metadata(k): decode_metadata(v) for k, v in obj["items"]}
        if tag == "tuple":
            return tuple(decode_metadata(v) for v in obj["items"])
        return {k: decode_metadata(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_metadata(v) for v in obj]
    return obj


def _native(arr: "array[int]") -> "array[int]":
    """The array with little-endian byte order (no-op on LE hosts)."""
    if sys.byteorder == "big":  # pragma: no cover - LE-only CI
        arr = array("q", arr)
        arr.byteswap()
    return arr


@dataclass
class CompiledSchedule:
    """Struct-of-arrays twin of a :class:`~repro.core.schedule.Schedule`.

    The six columns are parallel ``array('q')`` buffers, one entry per
    move, in replay order.  ``stats`` is the full aggregate block, so a
    compiled schedule answers every ``Sweep.run`` measurement without
    touching the columns at all — the cache's warm path is exactly
    "deserialize header, read stats".
    """

    dimension: int
    strategy: str
    team_size: int
    homebase: int
    uses_cloning: bool
    metadata: Dict[str, object]
    times: "array[int]"
    agents: "array[int]"
    srcs: "array[int]"
    dsts: "array[int]"
    kinds: "array[int]"
    roles: "array[int]"
    stats: ScheduleAggregates

    # ------------------------------------------------------------------ #
    # measurements (mirror the Schedule surface Sweep.run reads)
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of hypercube nodes, ``2**dimension``."""
        return 1 << self.dimension

    @property
    def total_moves(self) -> int:
        """Total number of edge traversals."""
        return self.stats.total_moves

    @property
    def makespan(self) -> int:
        """Largest completion time (ideal time)."""
        return self.stats.makespan

    def aggregates(self) -> ScheduleAggregates:
        """The aggregate block (same object the ``Schedule`` memoizes)."""
        return self.stats

    def __len__(self) -> int:
        return self.stats.total_moves

    @property
    def nbytes(self) -> int:
        """Bytes held by the six columns (the compile-ratio numerator)."""
        return sum(
            col.itemsize * len(col) for col in self.columns().values()
        )

    def columns(self) -> Dict[str, "array[int]"]:
        """The column buffers keyed by :data:`COLUMN_NAMES` name."""
        return {
            "time": self.times,
            "agent": self.agents,
            "src": self.srcs,
            "dst": self.dsts,
            "kind": self.kinds,
            "role": self.roles,
        }

    # ------------------------------------------------------------------ #
    # chunk streaming
    # ------------------------------------------------------------------ #

    def stream_header(self) -> ChunkStreamHeader:
        """This schedule's chunk-stream header."""
        return ChunkStreamHeader(
            dimension=self.dimension,
            strategy=self.strategy,
            homebase=self.homebase,
            uses_cloning=self.uses_cloning,
            team_size=self.team_size,
        )

    def iter_chunks(
        self, chunk_moves: int = DEFAULT_CHUNK_MOVES
    ) -> Iterator[ScheduleChunk]:
        """Slice the columns into a chunk stream (no ``Move`` objects).

        The output is exactly what :meth:`generate_chunks
        <repro.core.strategy.Strategy.generate_chunks>` would have
        produced for the same schedule and block size — the in-memory
        warm path of the chunk protocol.  Per-chunk ``stats_so_far``
        blocks are re-derived by an integer column scan; the final
        chunk's block is asserted against the stored stats header.
        """
        if chunk_moves < 1:
            raise CompiledScheduleError(
                f"chunk_moves must be >= 1, got {chunk_moves}"
            )
        header = self.stream_header()
        total = len(self.times)
        scanner = AggregateScanner()
        index = 0
        offset = 0
        while True:
            end = min(offset + chunk_moves, total)
            for i in range(offset, end):
                scanner.add(self.times[i], self.agents[i], self.kinds[i], self.roles[i])
            is_last = end == total
            yield ScheduleChunk(
                header=header,
                index=index,
                start_move=offset,
                times=self.times[offset:end],
                agents=self.agents[offset:end],
                srcs=self.srcs[offset:end],
                dsts=self.dsts[offset:end],
                kinds=self.kinds[offset:end],
                roles=self.roles[offset:end],
                stats_so_far=scanner.snapshot(),
                is_last=is_last,
                metadata=dict(self.metadata) if is_last else {},
            )
            if is_last:
                break
            index += 1
            offset = end

    @classmethod
    def from_chunks(cls, chunks: Iterable[ScheduleChunk]) -> "CompiledSchedule":
        """Assemble a chunk stream into one compiled schedule.

        Column concatenation only — the inverse of :meth:`iter_chunks`,
        and the bridge the cache's store-while-streaming path uses.
        Raises :class:`~repro.errors.ScheduleError` on a torn stream
        (no chunks, or no final chunk).
        """
        times = array("q", bytes(0))
        agents = array("q", bytes(0))
        srcs = array("q", bytes(0))
        dsts = array("q", bytes(0))
        kinds = array("q", bytes(0))
        roles = array("q", bytes(0))
        last: ScheduleChunk | None = None
        header: ChunkStreamHeader | None = None
        for chunk in chunks:
            header = chunk.header
            times.extend(chunk.times)
            agents.extend(chunk.agents)
            srcs.extend(chunk.srcs)
            dsts.extend(chunk.dsts)
            kinds.extend(chunk.kinds)
            roles.extend(chunk.roles)
            if chunk.is_last:
                last = chunk
        if header is None:
            raise ScheduleError("empty chunk stream (no chunks at all)")
        if last is None:
            raise ScheduleError("torn chunk stream: no final chunk seen")
        return cls(
            dimension=header.dimension,
            strategy=header.strategy,
            team_size=header.team_size,
            homebase=header.homebase,
            uses_cloning=header.uses_cloning,
            metadata=dict(last.metadata),
            times=times,
            agents=agents,
            srcs=srcs,
            dsts=dsts,
            kinds=kinds,
            roles=roles,
            stats=last.stats_so_far,
        )

    # ------------------------------------------------------------------ #
    # compile / decompile
    # ------------------------------------------------------------------ #

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "CompiledSchedule":
        """Compile ``schedule`` into columnar form (one pass over moves)."""
        moves = schedule.moves
        times = array("q", bytes(0))
        agents = array("q", bytes(0))
        srcs = array("q", bytes(0))
        dsts = array("q", bytes(0))
        kinds = array("q", bytes(0))
        roles = array("q", bytes(0))
        for m in moves:
            times.append(m.time)
            agents.append(m.agent)
            srcs.append(m.src)
            dsts.append(m.dst)
            kinds.append(_KIND_CODE[m.kind])
            roles.append(_ROLE_CODE[m.role])
        return cls(
            dimension=schedule.dimension,
            strategy=schedule.strategy,
            team_size=schedule.team_size,
            homebase=schedule.homebase,
            uses_cloning=schedule.uses_cloning,
            metadata=schedule.metadata,
            times=times,
            agents=agents,
            srcs=srcs,
            dsts=dsts,
            kinds=kinds,
            roles=roles,
            stats=schedule.aggregates(),
        )

    def to_schedule(self) -> Schedule:
        """Materialize the full ``Schedule`` (exact inverse of compile)."""
        moves: List[Move] = [
            Move(
                agent=self.agents[i],
                src=self.srcs[i],
                dst=self.dsts[i],
                time=self.times[i],
                role=_ROLES[self.roles[i]],
                kind=_KINDS[self.kinds[i]],
            )
            for i in range(len(self.times))
        ]
        schedule = Schedule(
            dimension=self.dimension,
            strategy=self.strategy,
            moves=moves,
            team_size=self.team_size,
            homebase=self.homebase,
            uses_cloning=self.uses_cloning,
            metadata=self.metadata,
        )
        # hand the precomputed aggregates over so the warm path never
        # rescans what the compiler already measured
        schedule._agg = self.stats
        schedule._agg_key = (len(moves), moves[-1] if moves else None)
        return schedule

    # ------------------------------------------------------------------ #
    # binary serialization
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Versioned binary form::

            MAGIC | version u16 | header_len u32 | header JSON |
            6 * total_moves int64 column payload | crc32 u32

        The CRC covers everything before the footer.
        """
        header = {
            "schema": SCHEMA_VERSION,
            "dimension": self.dimension,
            "strategy": self.strategy,
            "team_size": self.team_size,
            "homebase": self.homebase,
            "uses_cloning": self.uses_cloning,
            "metadata": encode_metadata(self.metadata),
            "stats": self.stats.as_dict(),
            "total_moves": len(self.times),
            "columns": list(COLUMN_NAMES),
            "kind_values": [k.value for k in _KINDS],
            "role_values": [r.value for r in _ROLES],
        }
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        parts = [_PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header_bytes)), header_bytes]
        for col in self.columns().values():
            parts.append(_native(col).tobytes())
        body = b"".join(parts)
        return body + _CRC.pack(zlib.crc32(body))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledSchedule":
        """Decode :meth:`to_bytes` output; raises
        :class:`~repro.errors.CompiledScheduleError` on any malformation
        (short blob, bad magic, unknown version, length mismatch, CRC
        failure, undecodable header)."""
        if len(blob) < _PREAMBLE.size + _CRC.size:
            raise CompiledScheduleError(f"blob too short ({len(blob)} bytes)")
        magic, version, header_len = _PREAMBLE.unpack_from(blob)
        if magic != MAGIC:
            raise CompiledScheduleError(f"bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise CompiledScheduleError(f"unsupported format version {version}")
        body, (crc,) = blob[: -_CRC.size], _CRC.unpack(blob[-_CRC.size :])
        if zlib.crc32(body) != crc:
            raise CompiledScheduleError("CRC mismatch (torn or corrupt blob)")
        header_end = _PREAMBLE.size + header_len
        if header_end > len(body):
            raise CompiledScheduleError("header length exceeds blob")
        try:
            header = json.loads(body[_PREAMBLE.size : header_end].decode("utf-8"))
            total = int(header["total_moves"])
            columns = list(header["columns"])
            kind_values = [MoveKind(v) for v in header["kind_values"]]
            role_values = [AgentRole(v) for v in header["role_values"]]
            stats = ScheduleAggregates.from_dict(header["stats"])
            metadata = decode_metadata(header["metadata"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CompiledScheduleError(f"undecodable header: {exc}") from exc
        if columns != list(COLUMN_NAMES):
            raise CompiledScheduleError(f"unexpected column set {columns}")
        expected = header_end + len(COLUMN_NAMES) * total * 8
        if expected != len(body):
            raise CompiledScheduleError(
                f"payload length mismatch ({len(body)} != {expected})"
            )
        cols: List["array[int]"] = []
        offset = header_end
        for _ in COLUMN_NAMES:
            col = array("q", bytes(0))
            col.frombytes(body[offset : offset + total * 8])
            cols.append(_native(col))
            offset += total * 8
        times, agents, srcs, dsts, kinds, roles = cols
        # re-map stored enum codes if the declaration order ever changed
        if kind_values != list(_KINDS):
            remap = array("q", (_KIND_CODE[kind_values[c]] for c in kinds))
            kinds = remap  # pragma: no cover - only on enum reorder
        if role_values != list(_ROLES):
            roles = array("q", (_ROLE_CODE[role_values[c]] for c in roles))  # pragma: no cover
        for code_col, bound, label in ((kinds, len(_KINDS), "kind"), (roles, len(_ROLES), "role")):
            if code_col and not (min(code_col) >= 0 and max(code_col) < bound):
                raise CompiledScheduleError(f"{label} code out of range")
        return cls(
            dimension=int(header["dimension"]),
            strategy=str(header["strategy"]),
            team_size=int(header["team_size"]),
            homebase=int(header["homebase"]),
            uses_cloning=bool(header["uses_cloning"]),
            metadata=metadata,  # type: ignore[arg-type]
            times=times,
            agents=agents,
            srcs=srcs,
            dsts=dsts,
            kinds=kinds,
            roles=roles,
            stats=stats,
        )

    def verify_stats(self) -> bool:
        """Cross-check the stats block against a fresh column scan."""
        return scan_moves(self.to_schedule().moves) == self.stats
