"""Scenario-batch Monte Carlo simulation of compiled schedules.

One :class:`~repro.fastpath.compiled.CompiledSchedule` answers one
question ("does this sweep work?"); a Monte Carlo campaign asks thousands
of small variations of it — intruder placement × intruder policy × delay
adversary × homebase translation.  Looping ``Engine.run`` pays the full
discrete-event machinery per trial even though every trial replays the
*same* move columns.  This module replays the columns **once per
homebase** into a :class:`ScenarioTimeline` — per-time-unit guard/clean
bitmasks plus cumulative move counts — and then scores each scenario
against that shared timeline with a handful of big-integer operations,
so a 10k-trial sweep is one columnar replay plus 10k cheap scoring
passes instead of 10k engine runs.

Intruder policies
-----------------
``reachable``
    The paper's omniscient arbitrarily-fast intruder
    (:class:`~repro.sim.intruder.ReachableSetIntruder` semantics): its
    possible-location set is the contaminated region, so capture time is
    the unit at which the region empties — independent of the seed.
``inert``
    The *inert fugitive* of arXiv:0802.3512 ("recontamination does
    help"): it hides at its seed node and moves only when a searcher
    steps onto its node, at which instant it flees arbitrarily far
    through unguarded nodes and hides at a reachable contaminated node
    (or is captured if none exists).  Tracked as a per-seed
    possible-location set at time-unit granularity — this is the policy
    that makes capture accounting *seed-dependent* (a homebase-adjacent
    seed is disturbed in the first unit and survives until the sweep's
    last pocket is cleaned, long after its own node was cleaned).
``walker`` / ``walkers``
    Exact batch replicas of :class:`~repro.sim.intruder.WalkerIntruder`
    and :class:`~repro.sim.intruder.MultiWalkerIntruder`: the same
    reachable-region BFS, the same guard-distance greedy target choice,
    the same RNG draw discipline (``rng.choice(sorted(candidates))`` per
    observation, sub-walker seeds via ``getrandbits(64)``), applied at
    each move completion in the **engine's** replay order (see
    :func:`replay_order`), so per-scenario capture times are identical
    to ``Engine.run`` with the same ``intruder_seed``.

Delay models
------------
Scenario delays are per-time-unit integer *stretches* (unit ``u`` takes
``stretch[u] >= 1`` wall ticks): ``unit`` (all ones), ``random``
(uniform integers from the trial sub-stream) and ``adversarial`` (every
``period``-th unit stretched by ``factor`` — the slowest-link
adversary).  Stretches relabel the clock without reordering moves, so
capture *units* are delay-invariant and capture *wall times* are the
prefix sums — exactly the paper's ideal-time/asynchronous-time split.

Determinism
-----------
A master ``random.Random(spec.rng_seed)`` yields one ``getrandbits(64)``
sub-seed per trial; each trial draws, in fixed order, its homebase, its
infection seeds, its intruder seed and its delay seed from its own
``random.Random`` sub-stream.  Shard workers draw the same master
sequence and skip the first ``start`` sub-seeds, so sharded and serial
campaigns produce identical scenarios trial-for-trial.

Layering: like the rest of ``repro.fastpath`` this module imports only
``core``/``topology``/``errors`` (lint rule RPR220); the engine-twin
semantics are cross-checked by randomized batch≡scalar tests instead of
shared code.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError, SimulationError
import repro.fastpath.npkernels as npkernels
from repro.fastpath.batchverify import batch_verify
from repro.fastpath.compiled import CompiledSchedule
from repro.topology.hypercube import Hypercube

__all__ = [
    "BatchResult",
    "BatchScenarioSpec",
    "BatchStats",
    "DELAY_KINDS",
    "INTRUDER_POLICIES",
    "ScenarioTimeline",
    "compile_for_spec",
    "replay_order",
    "run_batch",
]

#: Intruder policies a scenario may score against (module docstring).
INTRUDER_POLICIES = ("reachable", "inert", "walker", "walkers")

#: Per-unit stretch families for the delay adversary.
DELAY_KINDS = ("unit", "random", "adversarial")


# --------------------------------------------------------------------- #
# scenario specification
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BatchScenarioSpec:
    """One Monte Carlo campaign: a strategy plus a scenario distribution.

    Parameters
    ----------
    dimension, strategy:
        Which sweep schedule to score scenarios against.
    trials:
        Number of scenarios.
    intruder:
        Scoring policy (:data:`INTRUDER_POLICIES`).
    seeds_per_trial:
        Infection seeds sampled per trial (``inert`` policy only).
    intruder_count:
        Pack size for the ``walkers`` policy.
    delay, delay_low, delay_high, delay_factor, delay_period:
        The per-unit stretch family (module docstring).
    rotate_homebase:
        Sample a uniform homebase per trial (XOR automorphism) instead
        of launching every sweep from node 0.
    rng_seed:
        Master seed; the whole campaign is a pure function of the spec.
    """

    dimension: int
    strategy: str = "visibility"
    trials: int = 1000
    intruder: str = "inert"
    seeds_per_trial: int = 1
    intruder_count: int = 2
    delay: str = "unit"
    delay_low: int = 1
    delay_high: int = 3
    delay_factor: int = 4
    delay_period: int = 4
    rotate_homebase: bool = False
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ScheduleError("batch spec needs dimension >= 1")
        if self.trials < 0:
            raise ScheduleError("batch spec needs trials >= 0")
        if self.intruder not in INTRUDER_POLICIES:
            raise ScheduleError(
                f"unknown intruder policy {self.intruder!r} (try one of {INTRUDER_POLICIES})"
            )
        if self.delay not in DELAY_KINDS:
            raise ScheduleError(
                f"unknown delay model {self.delay!r} (try one of {DELAY_KINDS})"
            )
        if self.seeds_per_trial < 1:
            raise ScheduleError("need at least one infection seed per trial")
        if self.intruder_count < 1:
            raise ScheduleError("need at least one walker")
        if not 1 <= self.delay_low <= self.delay_high:
            raise ScheduleError("random delay needs 1 <= delay_low <= delay_high")
        if self.delay_factor < 1 or self.delay_period < 1:
            raise ScheduleError("adversarial delay needs factor >= 1 and period >= 1")

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able form (the ``batch_cell`` task payload)."""
        return {
            "dimension": self.dimension,
            "strategy": self.strategy,
            "trials": self.trials,
            "intruder": self.intruder,
            "seeds_per_trial": self.seeds_per_trial,
            "intruder_count": self.intruder_count,
            "delay": self.delay,
            "delay_low": self.delay_low,
            "delay_high": self.delay_high,
            "delay_factor": self.delay_factor,
            "delay_period": self.delay_period,
            "rotate_homebase": self.rotate_homebase,
            "rng_seed": self.rng_seed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BatchScenarioSpec":
        """Inverse of :meth:`to_payload` (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise ScheduleError(f"unknown batch spec fields: {sorted(extra)}")
        return cls(**payload)


def compile_for_spec(
    spec: BatchScenarioSpec, topology: Optional[Hypercube] = None
) -> CompiledSchedule:
    """Generate + compile the spec's base schedule (homebase 0)."""
    from repro.core.strategy import get_strategy  # lazy: strategy registry
    # imports the generators, which fastpath never needs at import time

    schedule = get_strategy(spec.strategy).run(spec.dimension)
    return CompiledSchedule.from_schedule(schedule)


# --------------------------------------------------------------------- #
# counters
# --------------------------------------------------------------------- #


class BatchStats:
    """Mutable campaign counters, optionally mirrored to a
    :class:`~repro.obs.metrics.MetricsRegistry` (``fastpath.batchsim.*``
    counters — same idiom as :class:`~repro.fastpath.cache.CacheStats`,
    so fastpath never imports ``repro.obs``)."""

    FIELDS = (
        "trials",
        "captures",
        "escapes",
        "timelines_built",
        "timelines_reused",
        "inert_seed_evals",
        "inert_seed_cached",
        "walker_observations",
    )

    def __init__(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0)
        self._metrics: Optional[Any] = None

    def bind(self, metrics: Any) -> None:
        """Mirror every future count into ``metrics`` counters."""
        self._metrics = metrics

    def count(self, what: str, amount: int = 1) -> None:
        """Bump counter ``what`` by ``amount``."""
        setattr(self, what, getattr(self, what) + amount)
        if self._metrics is not None:
            self._metrics.counter(f"fastpath.batchsim.{what}").inc(amount)

    def as_dict(self) -> Dict[str, int]:
        """All counters as a JSON-able dict."""
        return {name: int(getattr(self, name)) for name in self.FIELDS}


# --------------------------------------------------------------------- #
# engine replay order
# --------------------------------------------------------------------- #


def replay_order(compiled: CompiledSchedule) -> List[int]:
    """Column indices in the order ``Engine.run`` applies the moves.

    The scripted replay (:mod:`repro.sim.replay`) turns each agent's
    move list into ``WaitUntil(time >= t-1)`` + ``Move`` pairs on the
    event queue, and the engine's queue discipline — FIFO among equal
    times, wake tokens superseding stale wake events, blocked agents
    re-pushed in agent-id order after every processed event — fixes an
    intra-unit completion order that is *not* the column order.  The
    walker policies consume one RNG draw per completed move, so scoring
    them against the wrong order would desynchronize every draw; this
    mini-scheduler reproduces the engine's discipline exactly (tested
    move-for-move against ``Engine.run`` across strategies and
    dimensions).

    Cloning schedules spawn agents via ``CloneSelf`` at times that
    depend on the parent's script, which this model does not cover —
    they are rejected.
    """
    if compiled.uses_cloning:
        raise SimulationError(
            "replay_order models scripted (non-cloning) replay only; "
            "cloning schedules spawn agents mid-run"
        )
    times = compiled.times
    agents = compiled.agents
    per_agent: Dict[int, List[int]] = {}
    for col, agent in enumerate(agents):
        per_agent.setdefault(agent, []).append(col)
    ids = sorted(per_agent)
    # engine agent ids are densely renumbered in sorted schedule-agent
    # order; columns are already time-sorted, so each per-agent list is
    # that agent's script in execution order
    moves = [per_agent[a] for a in ids]
    k = len(ids)

    idx = [0] * k
    status = ["ready"] * k  # ready | inflight | blocked | done
    token = [0] * k
    heap: List[Tuple[float, int, int, int]] = []
    seq = 0
    order: List[int] = []
    now = 0.0

    def push(t: float, a: int) -> None:
        nonlocal seq
        token[a] += 1
        heapq.heappush(heap, (t, seq, a, token[a]))
        seq += 1

    def resume(a: int) -> None:
        # run the agent's script until it blocks or goes in flight;
        # mirrors Engine._resume on _scripted behaviours
        while True:
            if idx[a] >= len(moves[a]):
                status[a] = "done"
                return
            col = moves[a][idx[a]]
            if status[a] == "inflight":
                order.append(col)
                idx[a] += 1
                status[a] = "ready"
                continue
            t = times[col]
            if now >= t - 1:
                status[a] = "inflight"
                push(now + 1.0, a)  # unit-delay arrival
                return
            status[a] = "blocked"
            if t - 1 > now:
                push(float(t - 1), a)  # WaitUntil wake_at hint
            return

    for a in range(k):
        push(0.0, a)
    while heap:
        t, _, a, tok = heapq.heappop(heap)
        now = max(now, t)
        if tok != token[a] or status[a] == "done":
            continue
        if status[a] == "blocked" and now < times[moves[a][idx[a]]] - 1:
            continue  # predicate still false: engine leaves it blocked
        if status[a] == "blocked":
            status[a] = "ready"
        resume(a)
        # Engine._wake_blocked: after every processed event, every
        # blocked agent whose predicate now holds is re-pushed at the
        # current time (agent insertion order), superseding older wakes
        for b in range(k):
            if status[b] == "blocked" and now >= times[moves[b][idx[b]]] - 1:
                push(now, b)
    if len(order) != len(times):
        raise SimulationError(
            f"replay-order model applied {len(order)} of {len(times)} moves "
            "(scripted replay would deadlock)"
        )
    return order


# --------------------------------------------------------------------- #
# the shared timeline
# --------------------------------------------------------------------- #


def _saturate(frontier: int, allowed: int, topo: Hypercube) -> int:
    """Bitset BFS closure of ``frontier`` inside ``allowed``."""
    reached = frontier
    while frontier:
        frontier = topo.spread_mask(frontier) & allowed & ~reached
        reached |= frontier
    return reached


class ScenarioTimeline:
    """Per-unit mask history of one compiled schedule at one homebase.

    Replays the six columns once (translated through the XOR
    automorphism when ``homebase`` differs from the compiled one) with
    the engine's contamination semantics — arrivals clean, departures
    recontaminate through unguarded clean neighbours — and records, per
    time unit: the post-unit guard mask, clean mask, arrival
    (disturbance) mask and cumulative move count.  Every scenario of a
    campaign that shares the homebase scores against this one object.

    The ``inert`` policy's per-seed capture units are memoized here
    (:meth:`inert_capture_index`), as are the per-move snapshots and
    guard-distance tables the walker policies replay against
    (:meth:`walker_support`), so their cost is paid once per homebase
    rather than once per trial.
    """

    def __init__(
        self,
        compiled: CompiledSchedule,
        homebase: int = 0,
        topology: Optional[Hypercube] = None,
        stats: Optional[BatchStats] = None,
    ) -> None:
        topo = topology or Hypercube(compiled.dimension)
        if topo.n != compiled.n:
            raise ScheduleError(
                f"topology has {topo.n} nodes but schedule is d={compiled.dimension}"
            )
        if not 0 <= homebase < topo.n:
            raise ScheduleError(f"homebase {homebase} not a node of H_{compiled.dimension}")
        self.topo = topo
        self.compiled = compiled
        self.home = homebase
        self.full = topo.full_mask
        self._stats = stats
        xor = homebase ^ compiled.homebase
        self._xor = xor
        self._srcs = [s ^ xor for s in compiled.srcs]
        self._dsts = [t ^ xor for t in compiled.dsts]
        self._times = list(compiled.times)

        self.unit_times: List[int] = []
        self.guard_after: List[int] = []
        self.clean_after: List[int] = []
        self.arrivals: List[int] = []
        self.cum_moves: List[int] = []
        #: first unit index at which the cube is fully clean (-1: never)
        self.complete_index = -1
        self.recontaminated = False
        self._replay()
        self.final_clean = self.clean_after[-1] if self.clean_after else 1 << homebase
        self.final_guard = self.guard_after[-1] if self.guard_after else 1 << homebase

        self._inert_cache: Dict[int, int] = {}
        self._walker: Optional[Tuple[List[int], List[int], List[int], List[int]]] = None
        self._dist_cache: Dict[int, List[int]] = {}
        if stats is not None:
            stats.count("timelines_built")

    # -- columnar replay ------------------------------------------------ #

    def _replay(self) -> None:
        topo = self.topo
        n = topo.n
        home = self.home
        srcs, dsts, times = self._srcs, self._dsts, self._times
        total = len(times)
        uses_cloning = self.compiled.uses_cloning
        team = max(self.compiled.team_size, self.compiled.stats.agents_used, 1)

        guard_count = [0] * n
        guard_count[home] = 1 if uses_cloning else team
        gmask = 1 << home
        clean = 1 << home
        seen_agent: Dict[int, bool] = {}
        agents = self.compiled.agents
        if uses_cloning and total:
            # the root agent is the homebase deployment, not a clone
            seen_agent[min(agents)] = True

        def flood_from(v: int) -> int:
            # departure-rule violation: v and everything clean+unguarded
            # reachable from it is recontaminated (engine semantics)
            nonlocal clean
            self.recontaminated = True
            wave = 1 << v
            clean &= ~wave
            while wave:
                wave = topo.spread_mask(wave) & clean & ~gmask
                clean &= ~wave
            return clean

        i = 0
        while i < total:
            unit_time = times[i]
            j = i
            while j < total and times[j] == unit_time:
                j += 1
            arrivals = 0
            if uses_cloning:
                # clones materialize at the head of their birth unit: the
                # engine's parent spawns them *before* its own move, so a
                # same-unit parent departure must already see the clone
                # guarding the birth node
                for k in range(i, j):
                    if not seen_agent.get(agents[k], False):
                        src = srcs[k]
                        guard_count[src] += 1
                        gmask |= 1 << src
                        clean |= 1 << src
                        arrivals |= 1 << src
                        seen_agent[agents[k]] = True
            for k in range(i, j):
                src, dst = srcs[k], dsts[k]
                # arrival first: the engine's move is atomic, so the
                # departure rule already sees the destination clean
                guard_count[dst] += 1
                gmask |= 1 << dst
                clean |= 1 << dst
                arrivals |= 1 << dst
                guard_count[src] -= 1
                if guard_count[src] == 0:
                    gmask &= ~(1 << src)
                    # departure rule, move-granular like ContaminationMap
                    if clean & (1 << src) and topo.neighbor_mask(src) & self.full & ~clean:
                        flood_from(src)
            self.unit_times.append(unit_time)
            self.guard_after.append(gmask)
            self.clean_after.append(clean)
            self.arrivals.append(arrivals)
            self.cum_moves.append(j)
            if self.complete_index < 0 and clean == self.full:
                self.complete_index = len(self.unit_times) - 1
            i = j

    # -- reachable policy ----------------------------------------------- #

    def reachable_capture_index(self) -> int:
        """Unit index at which the omniscient intruder's region empties."""
        return self.complete_index

    # -- inert-fugitive policy ------------------------------------------ #

    def inert_capture_index(self, seed: int) -> int:
        """Unit index at whose boundary the inert fugitive seeded at
        ``seed`` has no possible location left (-1: never captured).

        The possible-location set starts as ``{seed}``; each unit, the
        undisturbed part stays put, while any possibility on a node a
        searcher arrived at flees — arbitrarily far through post-unit
        unguarded nodes — to reachable contaminated hideouts.  Capture
        is the unit the set empties.  Memoized per seed: campaigns
        re-ask the same (homebase, seed) pairs constantly.
        """
        if seed == self.home:
            raise SimulationError(f"seed {seed} is the homebase; nothing to capture")
        if not 0 <= seed < self.topo.n:
            raise ScheduleError(f"seed {seed} not a node of H_{self.compiled.dimension}")
        cached = self._inert_cache.get(seed)
        if cached is not None:
            if self._stats is not None:
                self._stats.count("inert_seed_cached")
            return cached
        topo = self.topo
        full = self.full
        possible = 1 << seed
        result = -1
        for i in range(len(self.unit_times)):
            guards = self.guard_after[i]
            contam = full & ~self.clean_after[i]
            disturbed = possible & self.arrivals[i]
            safe = full & ~guards
            next_possible = possible & ~self.arrivals[i] & contam & safe
            if disturbed:
                ring = topo.spread_mask(disturbed) & safe
                next_possible |= _saturate(ring, safe, topo) & contam
            possible = next_possible
            if possible == 0:
                result = i
                break
        self._inert_cache[seed] = result
        if self._stats is not None:
            self._stats.count("inert_seed_evals")
        return result

    # -- walker policies ------------------------------------------------ #

    def walker_support(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Per-move snapshots in engine replay order (lazy, shared).

        Returns ``(move_times, guard_masks, clean_masks, capture_bits)``
        — for each completed move ``j`` (engine order): its stamped time
        unit, the post-move guard mask, the post-move clean mask, and
        the single-bit mask of the move's destination.  The walker
        policies observe after every entry, exactly like the engine.
        """
        if self._walker is not None:
            return self._walker
        order = replay_order(self.compiled)
        topo = self.topo
        n = topo.n
        team = max(self.compiled.team_size, self.compiled.stats.agents_used, 1)
        guard_count = [0] * n
        guard_count[self.home] = team
        gmask = 1 << self.home
        clean = 1 << self.home
        move_times: List[int] = []
        guard_masks: List[int] = []
        clean_masks: List[int] = []
        dst_bits: List[int] = []
        full = self.full
        for col in order:
            src, dst = self._srcs[col], self._dsts[col]
            guard_count[dst] += 1
            gmask |= 1 << dst
            clean |= 1 << dst
            guard_count[src] -= 1
            if guard_count[src] == 0:
                gmask &= ~(1 << src)
                if clean & (1 << src) and topo.neighbor_mask(src) & full & ~clean:
                    # same flood as the unit replay, move-granular
                    wave = 1 << src
                    clean &= ~wave
                    while wave:
                        wave = topo.spread_mask(wave) & clean & ~gmask
                        clean &= ~wave
            move_times.append(self._times[col])
            guard_masks.append(gmask)
            clean_masks.append(clean)
            dst_bits.append(1 << dst)
        self._walker = (move_times, guard_masks, clean_masks, dst_bits)
        return self._walker

    def guard_distances(self, move_index: int) -> List[int]:
        """Distance of every node from the post-move guard set (memoized).

        Shared across scenarios: the guard set after move ``j`` is
        scenario-independent, only the walker's position differs.
        """
        cached = self._dist_cache.get(move_index)
        if cached is not None:
            return cached
        assert self._walker is not None
        gmask = self._walker[1][move_index]
        topo = self.topo
        dist = [0] * topo.n
        layer = gmask
        reached = gmask
        step = 0
        while reached != self.full:
            step += 1
            layer = topo.spread_mask(layer) & ~reached
            if not layer:
                break
            m = layer
            while m:
                bit = m & -m
                dist[bit.bit_length() - 1] = step
                m ^= bit
            reached |= layer
        self._dist_cache[move_index] = dist
        return dist


def _mask_nodes(mask: int) -> List[int]:
    """Set bits of ``mask`` as an ascending node list."""
    out = []
    while mask:
        bit = mask & -mask
        out.append(bit.bit_length() - 1)
        mask ^= bit
    return out


class _Walker:
    """Batch replica of one :class:`~repro.sim.intruder.WalkerIntruder`."""

    __slots__ = ("pos", "captured", "rng", "capture_move")

    def __init__(self, pos: int, rng: random.Random) -> None:
        self.pos = pos
        self.captured = False
        self.rng = rng
        self.capture_move = -1

    def observe(self, timeline: ScenarioTimeline, move_index: int) -> None:
        """The exact ``WalkerIntruder.observe`` on mask snapshots."""
        if self.captured:
            return
        move_times, guard_masks, clean_masks, _ = timeline.walker_support()
        gmask = guard_masks[move_index]
        clean = clean_masks[move_index]
        full = timeline.full
        here = 1 << self.pos
        if gmask & here:
            self.captured = True
            self.capture_move = move_index
            return
        reached = _saturate(here, full & ~gmask, timeline.topo)
        hideouts = reached & full & ~clean
        if not hideouts:
            self.captured = True
            self.capture_move = move_index
            return
        if gmask:
            dist = timeline.guard_distances(move_index)
            nodes = _mask_nodes(hideouts)
            best = max(dist[x] for x in nodes)
            candidates = [x for x in nodes if dist[x] == best]
        else:
            candidates = _mask_nodes(hideouts)
        self.pos = self.rng.choice(candidates)


def _run_walkers(
    timeline: ScenarioTimeline,
    starts: Sequence[int],
    rngs: Sequence[random.Random],
    stats: Optional[BatchStats],
) -> Tuple[bool, int, int]:
    """Drive a walker pack over the timeline's move snapshots.

    Returns ``(captured, capture_unit_index, capture_move_count)`` where
    the unit index is that of the move completing the capture (-1 if the
    pack survives the sweep).
    """
    move_times, _, _, _ = timeline.walker_support()
    walkers = [_Walker(p, r) for p, r in zip(starts, rngs)]
    alive = len(walkers)
    observations = 0
    for j in range(len(move_times)):
        for w in walkers:
            if w.captured:
                continue
            w.observe(timeline, j)
            observations += 1
            if w.captured:
                alive -= 1
        if alive == 0:
            if stats is not None:
                stats.count("walker_observations", observations)
            unit_index = timeline.unit_times.index(move_times[j])
            return True, unit_index, j + 1
    if stats is not None:
        stats.count("walker_observations", observations)
    return False, -1, len(move_times)


# --------------------------------------------------------------------- #
# delay stretches
# --------------------------------------------------------------------- #


def _stretches(spec: BatchScenarioSpec, units: int, rng: random.Random) -> Optional[List[int]]:
    """Per-unit wall-tick stretches; ``None`` means all ones (unit)."""
    if spec.delay == "unit":
        return None
    if spec.delay == "random":
        return [rng.randint(spec.delay_low, spec.delay_high) for _ in range(units)]
    # adversarial: every period-th unit runs factor times slower
    return [
        spec.delay_factor if (u % spec.delay_period) == 0 else 1
        for u in range(1, units + 1)
    ]


def _wall_times(stretches: Optional[List[int]], units: int) -> Tuple[List[int], int]:
    """Prefix sums of the stretches (wall clock at each unit boundary)."""
    if stretches is None:
        walls = list(range(1, units + 1))
        return walls, units
    walls = []
    acc = 0
    for s in stretches:
        acc += s
        walls.append(acc)
    return walls, acc


# --------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------- #


def _percentile(sorted_values: Sequence[int], q: int) -> int:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0
    rank = (q * len(sorted_values) + 99) // 100
    rank = min(max(rank, 1), len(sorted_values))
    return int(sorted_values[rank - 1])


def _distribution(values: Sequence[int]) -> Dict[str, float]:
    """min/p50/p90/p99/max/mean of a value list (0s when empty)."""
    if not values:
        return {"min": 0, "p50": 0, "p90": 0, "p99": 0, "max": 0, "mean": 0.0}
    ordered = sorted(values)
    return {
        "min": int(ordered[0]),
        "p50": _percentile(ordered, 50),
        "p90": _percentile(ordered, 90),
        "p99": _percentile(ordered, 99),
        "max": int(ordered[-1]),
        "mean": round(sum(ordered) / len(ordered), 3),
    }


@dataclass
class BatchResult:
    """Columnar outcome of a (shard of a) campaign.

    One entry per trial, in trial order: the homebase, the verdict, the
    capture unit (ideal time; -1 when the intruder survives), the
    capture wall time under the trial's delay stretches, the sweep's
    total wall duration, and the moves completed up to capture.
    ``verdict`` is the schedule-level :func:`batch_verify` predicate
    block (shared by every trial — translation preserves it).
    """

    spec: BatchScenarioSpec
    start: int
    homebases: List[int] = field(default_factory=list)
    captured: List[bool] = field(default_factory=list)
    capture_units: List[int] = field(default_factory=list)
    capture_walls: List[int] = field(default_factory=list)
    duration_walls: List[int] = field(default_factory=list)
    moves_to_capture: List[int] = field(default_factory=list)
    verdict: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def count(self) -> int:
        """Trials recorded in this result."""
        return len(self.captured)

    def capture_rate(self) -> float:
        """Fraction of trials whose intruder was captured."""
        return (sum(self.captured) / self.count) if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-able campaign summary (the manifest block)."""
        caught_walls = [w for w, c in zip(self.capture_walls, self.captured) if c]
        caught_units = [u for u, c in zip(self.capture_units, self.captured) if c]
        caught_moves = [m for m, c in zip(self.moves_to_capture, self.captured) if c]
        return {
            "spec": self.spec.to_payload(),
            "start": self.start,
            "trials": self.count,
            "capture_rate": round(self.capture_rate(), 6),
            "capture_units": _distribution(caught_units),
            "capture_walls": _distribution(caught_walls),
            "duration_walls": _distribution(self.duration_walls),
            "moves_to_capture": _distribution(caught_moves),
            "distinct_homebases": len(set(self.homebases)),
            "verdict": dict(self.verdict),
            "counters": dict(self.counters),
        }

    def describe(self) -> str:
        """Multi-line human summary (the CLI output)."""
        s = self.summary()
        spec = self.spec
        lines = [
            f"montecarlo {spec.strategy}(d={spec.dimension}): {self.count} trials, "
            f"intruder={spec.intruder}, delays={spec.delay}",
            f"  capture rate : {s['capture_rate']:.4f}",
        ]
        for label, key in (
            ("capture unit ", "capture_units"),
            ("capture wall ", "capture_walls"),
            ("sweep wall   ", "duration_walls"),
            ("moves@capture", "moves_to_capture"),
        ):
            d = s[key]
            lines.append(
                f"  {label}: p50={d['p50']} p90={d['p90']} p99={d['p99']} "
                f"max={d['max']} mean={d['mean']}"
            )
        v = self.verdict
        if v:
            lines.append(
                f"  schedule     : monotone={v.get('monotone')} "
                f"contiguous={v.get('contiguous')} complete={v.get('complete')} "
                f"moves={v.get('total_moves')} makespan={v.get('makespan')} "
                f"team={v.get('team_size')}"
            )
        lines.append(f"  homebases    : {s['distinct_homebases']} distinct")
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able shard form (the ``batch_cell`` task result)."""
        return {
            "spec": self.spec.to_payload(),
            "start": self.start,
            "homebases": list(self.homebases),
            "captured": [bool(c) for c in self.captured],
            "capture_units": list(self.capture_units),
            "capture_walls": list(self.capture_walls),
            "duration_walls": list(self.duration_walls),
            "moves_to_capture": list(self.moves_to_capture),
            "verdict": dict(self.verdict),
            "counters": dict(self.counters),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BatchResult":
        """Inverse of :meth:`to_payload`."""
        return cls(
            spec=BatchScenarioSpec.from_payload(dict(payload["spec"])),
            start=int(payload["start"]),
            homebases=[int(x) for x in payload["homebases"]],
            captured=[bool(x) for x in payload["captured"]],
            capture_units=[int(x) for x in payload["capture_units"]],
            capture_walls=[int(x) for x in payload["capture_walls"]],
            duration_walls=[int(x) for x in payload["duration_walls"]],
            moves_to_capture=[int(x) for x in payload["moves_to_capture"]],
            verdict=dict(payload.get("verdict", {})),
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
        )

    @classmethod
    def merge(cls, parts: Sequence["BatchResult"]) -> "BatchResult":
        """Concatenate shards (sorted by ``start``) into one result.

        Shards must come from the same spec; counters are summed.  Gaps
        (a shard that permanently failed) are tolerated and surface as
        ``counters["missing_trials"]`` so a partial campaign still
        renders — the executor's degrade-don't-crash contract.
        """
        if not parts:
            raise ScheduleError("nothing to merge")
        ordered = sorted(parts, key=lambda r: r.start)
        spec = ordered[0].spec
        for part in ordered:
            if part.spec != spec:
                raise ScheduleError("cannot merge shards from different specs")
        merged = cls(spec=spec, start=ordered[0].start, verdict=dict(ordered[0].verdict))
        expected = ordered[0].start
        missing = 0
        counters: Dict[str, int] = {}
        for part in ordered:
            if part.start > expected:
                missing += part.start - expected
            expected = max(expected, part.start + part.count)
            merged.homebases.extend(part.homebases)
            merged.captured.extend(part.captured)
            merged.capture_units.extend(part.capture_units)
            merged.capture_walls.extend(part.capture_walls)
            merged.duration_walls.extend(part.duration_walls)
            merged.moves_to_capture.extend(part.moves_to_capture)
            for key, value in part.counters.items():
                counters[key] = counters.get(key, 0) + value
        if missing:
            counters["missing_trials"] = counters.get("missing_trials", 0) + missing
        merged.counters = counters
        return merged


# --------------------------------------------------------------------- #
# the campaign driver
# --------------------------------------------------------------------- #


def _trial_subseeds(spec: BatchScenarioSpec, start: int, count: int) -> List[int]:
    """Sub-seeds for trials ``[start, start+count)`` — the master stream
    is replayed from the top and the first ``start`` draws skipped, so a
    shard sees exactly the trials the serial run would."""
    master = random.Random(spec.rng_seed)
    for _ in range(start):
        master.getrandbits(64)
    return [master.getrandbits(64) for _ in range(count)]


def run_batch(
    spec: BatchScenarioSpec,
    *,
    start: int = 0,
    count: Optional[int] = None,
    compiled: Optional[CompiledSchedule] = None,
    topology: Optional[Hypercube] = None,
    stats: Optional[BatchStats] = None,
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
    backend: Optional[str] = None,
) -> BatchResult:
    """Score trials ``[start, start+count)`` of the campaign.

    The default ``(0, spec.trials)`` window runs the whole campaign;
    shard workers pass disjoint windows and :meth:`BatchResult.merge`
    reassembles the serial result exactly (determinism section of the
    module docstring).  ``compiled`` short-circuits schedule generation
    when the caller already holds the columns; ``metrics`` mirrors the
    :class:`BatchStats` counters into an observability registry;
    ``tracer`` (duck-typed — rule ``RPR220`` keeps ``repro.obs`` out of
    this layer) wraps the shard in a ``fastpath.run_batch`` span with
    compile / verify / per-homebase-timeline child spans.

    ``backend`` picks the kernel backend
    (:func:`repro.fastpath.npkernels.resolve_backend`): under
    ``"numpy"`` the schedule verdict replays through the bit-plane
    verifier and ``reachable``-policy campaigns score all trials as
    column vectors (one timeline, vectorized RNG streams) — results and
    counters are byte-identical to the pure path, which remains the
    fallback for every other policy.
    """
    if count is None:
        count = spec.trials - start
    if start < 0 or count < 0 or start + count > spec.trials:
        raise ScheduleError(
            f"trial window [{start}, {start + count}) outside campaign of {spec.trials}"
        )
    if tracer is not None:
        with tracer.span(
            "fastpath.run_batch",
            strategy=spec.strategy,
            dimension=spec.dimension,
            start=start,
            count=count,
            policy=spec.intruder,
        ):
            return _run_batch(
                spec, start, count, compiled, topology, stats, metrics, tracer, backend
            )
    return _run_batch(spec, start, count, compiled, topology, stats, metrics, None, backend)


def _run_batch(
    spec: BatchScenarioSpec,
    start: int,
    count: int,
    compiled: Optional[CompiledSchedule],
    topology: Optional[Hypercube],
    stats: Optional[BatchStats],
    metrics: Optional[Any],
    tracer: Optional[Any],
    backend: Optional[str] = None,
) -> BatchResult:
    stats = stats or BatchStats()
    if metrics is not None:
        stats.bind(metrics)
    if compiled is not None:
        base = compiled
    elif tracer is not None:
        with tracer.span("fastpath.compile", strategy=spec.strategy, dimension=spec.dimension):
            base = compile_for_spec(spec)
    else:
        base = compile_for_spec(spec)
    if base.dimension != spec.dimension:
        raise ScheduleError(
            f"compiled schedule is d={base.dimension}, spec wants d={spec.dimension}"
        )
    topo = topology or Hypercube(spec.dimension)
    n = topo.n
    resolved = npkernels.resolve_backend(backend)
    report = batch_verify(base, topo, tracer=tracer, backend=resolved)
    verdict = {
        "monotone": report.monotone,
        "contiguous": report.contiguous,
        "complete": report.complete,
        "total_moves": report.total_moves,
        "makespan": report.makespan,
        "team_size": report.team_size,
    }
    result = BatchResult(spec=spec, start=start, verdict=verdict)
    timelines: Dict[int, ScenarioTimeline] = {}

    policy = spec.intruder
    if policy in ("walker", "walkers") and base.uses_cloning:
        raise SimulationError(
            "walker policies replay the engine's move order, which is only "
            "modelled for non-cloning schedules"
        )

    if resolved == "numpy" and policy == "reachable" and count > 0:
        _run_batch_reachable_np(spec, start, count, base, topo, stats, result, tracer)
        result.counters = stats.as_dict()
        return result

    for sub in _trial_subseeds(spec, start, count):
        trial_rng = random.Random(sub)
        # fixed draw order: homebase, infection seeds, intruder seed,
        # delay seed — documented so scalar twins can reproduce a trial
        home = trial_rng.randrange(n) if spec.rotate_homebase else 0
        seeds: List[int] = []
        if policy == "inert":
            candidates = [x for x in range(n) if x != home]
            seeds = sorted(trial_rng.sample(candidates, min(spec.seeds_per_trial, n - 1)))
        intruder_seed = trial_rng.getrandbits(64)
        delay_seed = trial_rng.getrandbits(64)

        timeline = timelines.get(home)
        if timeline is None:
            if tracer is not None:
                with tracer.span("fastpath.timeline", homebase=home):
                    timeline = ScenarioTimeline(base, home, topo, stats=stats)
            else:
                timeline = ScenarioTimeline(base, home, topo, stats=stats)
            timelines[home] = timeline
        elif stats is not None:
            stats.count("timelines_reused")

        moves_total = len(base)
        if policy == "reachable":
            cap_index = timeline.reachable_capture_index()
            caught = cap_index >= 0
            moves_at = timeline.cum_moves[cap_index] if caught else moves_total
        elif policy == "inert":
            indices = [timeline.inert_capture_index(s) for s in seeds]
            caught = all(i >= 0 for i in indices)
            cap_index = max(indices) if caught else -1
            moves_at = timeline.cum_moves[cap_index] if caught else moves_total
        else:
            irng = random.Random(intruder_seed)
            if policy == "walker":
                starts = [home ^ (n - 1)]  # the contaminated node farthest
                # from the homebase — the hypercube antipode
                rngs = [irng]
            else:
                contaminated = [x for x in range(n) if x != home]
                if spec.intruder_count <= len(contaminated):
                    starts = irng.sample(contaminated, spec.intruder_count)
                else:
                    starts = [irng.choice(contaminated) for _ in range(spec.intruder_count)]
                rngs = [random.Random(irng.getrandbits(64)) for _ in starts]
            caught, cap_index, moves_at = _run_walkers(timeline, starts, rngs, stats)

        units = len(timeline.unit_times)
        stretches = _stretches(spec, units, random.Random(delay_seed))
        walls, duration = _wall_times(stretches, units)
        result.homebases.append(home)
        result.captured.append(caught)
        result.capture_units.append(timeline.unit_times[cap_index] if caught else -1)
        result.capture_walls.append(walls[cap_index] if caught else -1)
        result.duration_walls.append(duration)
        result.moves_to_capture.append(moves_at)
        stats.count("trials")
        stats.count("captures" if caught else "escapes")

    result.counters = stats.as_dict()
    return result


def _run_batch_reachable_np(
    spec: BatchScenarioSpec,
    start: int,
    count: int,
    base: CompiledSchedule,
    topo: Hypercube,
    stats: BatchStats,
    result: BatchResult,
    tracer: Optional[Any],
) -> None:
    """Score a ``reachable``-policy shard as column vectors.

    The omniscient intruder's capture unit is the index at which the
    contaminated region empties — a property of the *translated* replay,
    and the XOR automorphism maps any homebase's replay onto any
    other's, so capture units, cumulative moves and unit counts are
    homebase-invariant.  One :class:`ScenarioTimeline` therefore scores
    every trial; what actually varies per trial is the drawn homebase
    and the delay stretches, which :class:`~repro.fastpath.npkernels.
    VectorMT19937` draws for all trials at once, word-for-word on each
    trial's ``random.Random`` sub-stream.  Counters report the
    scalar-equivalent accounting (a timeline "build" per distinct
    homebase, a "reuse" per repeat) so both backends publish identical
    statistics.
    """
    np = npkernels._require_np()
    n = topo.n
    vmt = npkernels.VectorMT19937(_trial_subseeds(spec, start, count))
    # fixed draw order per trial sub-stream (see _run_batch): homebase,
    # intruder seed, delay seed — the intruder seed is drawn to keep the
    # stream aligned even though the reachable policy never uses it
    if spec.rotate_homebase:
        homes = vmt.randbelow(n)
    else:
        homes = np.zeros(count, dtype=np.int64)
    vmt.getrandbits64()
    delay_seeds = vmt.getrandbits64()

    if tracer is not None:
        with tracer.span("fastpath.timeline", homebase=base.homebase):
            timeline = ScenarioTimeline(base, base.homebase, topo, stats=None)
    else:
        timeline = ScenarioTimeline(base, base.homebase, topo, stats=None)
    distinct = int(len(np.unique(homes)))
    stats.count("timelines_built", distinct)
    if count > distinct:
        stats.count("timelines_reused", count - distinct)

    cap_index = timeline.reachable_capture_index()
    caught = cap_index >= 0
    moves_at = timeline.cum_moves[cap_index] if caught else len(base)
    cap_unit = timeline.unit_times[cap_index] if caught else -1
    units = len(timeline.unit_times)

    if spec.delay == "random":
        delay_vmt = npkernels.VectorMT19937(delay_seeds)
        stretches = delay_vmt.randint_matrix(spec.delay_low, spec.delay_high, units)
        walls = np.cumsum(stretches, axis=1)
        durations = walls[:, -1].tolist() if units else [0] * count
        cap_walls = walls[:, cap_index].tolist() if caught else [-1] * count
    else:
        shared = _stretches(spec, units, random.Random(0))  # rng unused
        wall_list, duration = _wall_times(shared, units)
        durations = [duration] * count
        cap_walls = [wall_list[cap_index]] * count if caught else [-1] * count

    result.homebases.extend(int(h) for h in homes)
    result.captured.extend([caught] * count)
    result.capture_units.extend([cap_unit] * count)
    result.capture_walls.extend(cap_walls)
    result.duration_walls.extend(durations)
    result.moves_to_capture.extend([moves_at] * count)
    stats.count("trials", count)
    stats.count("captures" if caught else "escapes", count)
