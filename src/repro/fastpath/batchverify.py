"""Mask-kernel batch verification of compiled schedules.

:func:`batch_verify` replays a :class:`~repro.fastpath.CompiledSchedule`
one *time unit* at a time directly on the int64 columns, evolving the
same bigint node-set masks the simulation layer uses
(:meth:`~repro.topology.hypercube.Hypercube.neighbor_mask` /
:meth:`~repro.topology.hypercube.Hypercube.spread_mask`), and checks the
same predicates as :class:`~repro.analysis.verify.ScheduleVerifier`:
structure, monotonicity, contiguity (at time-unit boundaries),
completeness and intruder capture.  No ``Move`` objects, no per-move
contamination-map dispatch: the per-move work is a handful of int ops on
plain columns, and the expensive checks (departure rule, recontamination
flood, connectivity BFS) run once per time unit on whole masks.

Verdict equivalence
-------------------
For every schedule the generators emit, the verdict (``monotone``,
``contiguous``, ``complete``, ``intruder_captured``, ``ok``) equals the
classic verifier's.  The one semantic difference is *intra-unit* timing:
the classic verifier evaluates the departure rule after each move, while
the batch kernel evaluates each unit with all of the unit's arrivals in
effect.  The schedule plane's documented replay-order convention (moves
whose safety depends on another move of the same unit are ordered after
it, and each unit is internally consistent) makes the two equivalent on
generator output; a hand-built schedule that is only transiently unsafe
*within* one unit can pass here and fail there.  The equivalence tests
therefore exercise injected violations with one move per unit, where the
two replays are exactly the same computation.

Capture note: the omniscient reachable-set intruder is captured exactly
when no contaminated node remains (see
:class:`~repro.sim.intruder.ReachableSetIntruder`), so
``intruder_captured == complete`` by construction in both verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    ContiguityError,
    IncompleteCleaningError,
    RecontaminationError,
    ScheduleError,
    SimulationError,
    VerificationError,
)
from repro.fastpath.compiled import CompiledSchedule
from repro.topology.hypercube import Hypercube

__all__ = ["BatchVerificationReport", "batch_verify"]


@dataclass
class BatchVerificationReport:
    """Verdict of one batch replay (mirrors ``VerificationReport``).

    Carries the same predicate fields and the same ``ok`` /
    ``raise_if_failed`` / ``summary`` surface as
    :class:`~repro.analysis.verify.VerificationReport`, so callers can
    treat the two interchangeably; the per-node timing maps the classic
    report collects for the figure benches are deliberately absent — the
    batch path exists to *not* do per-node Python bookkeeping.
    """

    dimension: int
    strategy: str
    monotone: bool
    contiguous: bool
    complete: bool
    intruder_captured: bool
    total_moves: int
    makespan: int
    team_size: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All four correctness predicates hold and nothing was violated."""
        return (
            self.monotone
            and self.contiguous
            and self.complete
            and self.intruder_captured
            and not self.violations
        )

    def raise_if_failed(self) -> None:
        """Raise the most specific error if verification failed."""
        if not self.monotone:
            raise RecontaminationError(
                f"{self.strategy}(d={self.dimension}): recontamination occurred"
            )
        if not self.contiguous:
            raise ContiguityError(
                f"{self.strategy}(d={self.dimension}): decontaminated region disconnected"
            )
        if not self.complete:
            raise IncompleteCleaningError(
                f"{self.strategy}(d={self.dimension}): contaminated nodes remain"
            )
        if not self.intruder_captured:
            raise VerificationError(
                f"{self.strategy}(d={self.dimension}): intruder not captured"
            )
        if self.violations:
            raise VerificationError(
                f"{self.strategy}(d={self.dimension}): {self.violations[0]}"
            )

    def summary(self) -> str:
        """One-line verdict in the classic report's format."""
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"[{verdict}] {self.strategy}(d={self.dimension}): "
            f"monotone={self.monotone} contiguous={self.contiguous} "
            f"complete={self.complete} captured={self.intruder_captured} "
            f"moves={self.total_moves} makespan={self.makespan} team={self.team_size}"
        )


def _region_connected(region: int, homebase: int, topo: Hypercube) -> bool:
    """Bitset BFS: is ``region`` connected?  Start at the homebase when it
    is in the region, else at the lowest set bit (deterministic)."""
    if not region:
        return True
    home_bit = 1 << homebase
    frontier = home_bit if region & home_bit else region & -region
    reached = frontier
    while frontier:
        frontier = topo.spread_mask(frontier) & region & ~reached
        reached |= frontier
    return reached == region


def _region_mask_from(in_region: bytearray) -> int:
    """Pack the 0/1 per-node region table into a node bitmask."""
    out = 0
    for x, flag in enumerate(in_region):
        if flag:
            out |= 1 << x
    return out


def batch_verify(
    compiled: CompiledSchedule,
    topology: Optional[Hypercube] = None,
    *,
    tracer: Optional[object] = None,
) -> BatchVerificationReport:
    """Replay ``compiled`` per time unit with O(1)-per-move kernels.

    ``tracer`` is duck-typed (anything with a ``span(name, **attrs)``
    context manager — this module must not import ``repro.obs``, lint
    rule ``RPR220``); when given, the replay runs under a
    ``fastpath.batch_verify`` span.

    The hot loop touches no Python objects beyond flat integer tables:
    guard counts, agent positions/clocks, a 0/1 decontaminated-region
    table, and — the key trick — a per-node *contaminated-neighbour
    counter*.  Decontamination is monotone outside the (rare) violation
    path, so each node's counter is decremented exactly once per
    neighbour over the whole replay: O(n·d) total maintenance, and the
    departure rule collapses to ``counter[v] != 0`` — one list index per
    vacated node instead of a neighbourhood mask intersection whose cost
    grows with ``n``.  The bigint mask machinery
    (:meth:`~repro.topology.hypercube.Hypercube.spread_mask` BFS) only
    runs on the paths where whole-region work is unavoidable: the
    contiguity re-derivation after a non-extending event and the
    recontamination flood, both of which never fire on a valid schedule.

    Structure malformation raises :class:`~repro.errors.ScheduleError`
    (and illegal clone placement :class:`~repro.errors.SimulationError`),
    matching the classic verifier; invariant failures never raise — they
    are recorded on the returned report.
    """
    if tracer is not None:
        with tracer.span(  # type: ignore[attr-defined]
            "fastpath.batch_verify",
            dimension=compiled.dimension,
            moves=compiled.total_moves,
        ) as span:
            report = batch_verify(compiled, topology)
            span.attrs["ok"] = report.ok
            return report
    topo = topology or Hypercube(compiled.dimension)
    if topo.n != compiled.n:
        raise ScheduleError(
            f"topology has {topo.n} nodes but schedule is d={compiled.dimension}"
        )
    d, n = compiled.dimension, topo.n
    homebase = compiled.homebase
    times = compiled.times.tolist()
    agents = compiled.agents.tolist()
    srcs = compiled.srcs.tolist()
    dsts = compiled.dsts.tolist()
    total = len(times)
    uses_cloning = compiled.uses_cloning

    # neighbour ids come from on-the-fly XOR with these single-bit masks
    # (an eager per-node adjacency table would cost O(n·d) to build —
    # more than the whole replay for sparse schedules)
    bits = [1 << p for p in range(d)]

    # --- initial deployment -------------------------------------------- #
    team = max(compiled.team_size, compiled.stats.agents_used, 1)
    guard_count = [0] * n
    guard_count[homebase] = 1 if uses_cloning else team
    in_region = bytearray(n)
    in_region[homebase] = 1
    region_size = 1
    # contam_count[x] = number of contaminated neighbours of x; the
    # departure rule and the "arrival adjacent to region?" test both
    # become O(1) reads of this table
    contam_count = [d] * n
    for b in bits:
        contam_count[homebase ^ b] -= 1
    position: Dict[int, int] = {}
    clock: Dict[int, int] = {}
    if uses_cloning:
        position[0] = homebase

    violations: List[str] = []
    recontaminated = False
    contiguous = True
    # incremental contiguity cache, same trichotomy as ContaminationMap:
    # True = known connected, False = known verdict already recorded,
    # None = stale (non-extending growth or recontamination) -> BFS
    contig_cache: Optional[bool] = True

    def flood_from(v: int, first_cause: int) -> None:
        """Violation path: recontaminate ``v`` and spread through every
        unguarded clean node reachable from it (never fires on valid
        schedules, so clarity over speed)."""
        nonlocal region_size, recontaminated, contig_cache
        recontaminated = True
        contig_cache = None
        stack = [(v, first_cause)]
        while stack:
            x, cause = stack.pop()
            if not in_region[x]:
                continue
            in_region[x] = 0
            region_size -= 1
            violations.append(f"node {x} recontaminated from {cause}")
            for b in bits:
                u = x ^ b
                contam_count[u] += 1
                if in_region[u] and guard_count[u] == 0:
                    stack.append((u, x))

    vacated: List[int] = []
    last_time = 0
    i = 0
    while i < total:
        unit_time = times[i]
        if unit_time < last_time:
            raise ScheduleError(
                f"move #{i} goes back in time ({unit_time} < {last_time})"
            )
        if unit_time < 1:
            raise ScheduleError(f"move time must be >= 1, got {unit_time}")
        last_time = unit_time
        j = i
        # one time unit: columns [i, j)
        while j < total and times[j] == unit_time:
            j += 1

        del vacated[:]
        for k in range(i, j):
            agent, src, dst = agents[k], srcs[k], dsts[k]
            # structure: chained positions, homebase starts, one move per
            # unit per agent, edges only (fused into the replay scan so
            # the columns are walked exactly once)
            prev = position.get(agent)
            if prev is None:
                if uses_cloning:
                    # clone materializes at src; placement must not touch
                    # contaminated ground away from the homebase
                    if not 0 <= src < n:
                        raise ScheduleError(f"move #{k}: node {src} out of range")
                    if not in_region[src]:
                        if src != homebase:
                            raise SimulationError(
                                f"cannot place an agent on contaminated node {src} "
                                f"(contiguous model)"
                            )
                        if region_size == 0:
                            contig_cache = True
                        elif not (contig_cache is True and contam_count[src] < d):
                            contig_cache = None
                        in_region[src] = 1
                        region_size += 1
                        for b in bits:
                            contam_count[src ^ b] -= 1
                    guard_count[src] += 1
                elif src != homebase:
                    raise ScheduleError(
                        f"move #{k}: agent {agent} first appears at {src}, "
                        f"not the homebase {homebase}"
                    )
            else:
                if prev != src:
                    raise ScheduleError(
                        f"move #{k}: agent {agent} moves from {src} but is at {prev}"
                    )
                if clock.get(agent, 0) >= unit_time:
                    raise ScheduleError(
                        f"move #{k}: agent {agent} moves twice within one time unit"
                    )
            edge = src ^ dst
            if src == dst or edge & (edge - 1) or edge >= n or not 0 <= dst < n:
                raise ScheduleError(f"move #{k} ({src}->{dst}) is not an edge")
            if guard_count[src] <= 0:
                raise SimulationError(f"no agent on {src} to move")
            position[agent] = dst
            clock[agent] = unit_time
            # apply departure+arrival on the guard counts; the departure
            # rule itself is settled once per unit below
            guard_count[src] -= 1
            if guard_count[src] == 0:
                vacated.append(src)
            guard_count[dst] += 1
            if not in_region[dst]:
                # incremental contiguity bookkeeping, in arrival order:
                # extending a connected region by an adjacent node keeps
                # it connected; anything else goes stale for the BFS
                if region_size == 0:
                    contig_cache = True
                elif not (contig_cache is True and contam_count[dst] < d):
                    contig_cache = None
                in_region[dst] = 1
                region_size += 1
                for b in bits:
                    contam_count[dst ^ b] -= 1

        # --- settle the unit: departure rule on every vacated node ----- #
        if region_size < n:
            for v in vacated:
                # still unguarded (not re-arrived within the unit), now
                # clean: it stays clean iff no neighbour is contaminated
                if guard_count[v] == 0 and in_region[v] and contam_count[v]:
                    for b in bits:
                        if not in_region[v ^ b]:
                            flood_from(v, v ^ b)
                            break

        # --- boundary contiguity check --------------------------------- #
        if contig_cache is None:
            contig_cache = (
                region_size == 0
                or _region_connected(_region_mask_from(in_region), homebase, topo)
            )
        if contig_cache is False:
            contiguous = False
            violations.append(f"region disconnected at time {unit_time}")
            contig_cache = None  # re-derive at the next boundary

        i = j

    if compiled.team_size and compiled.stats.agents_used > compiled.team_size:
        raise ScheduleError(
            f"{compiled.stats.agents_used} agents appear in moves but "
            f"team_size={compiled.team_size}"
        )

    complete = region_size == n
    if not complete:
        remaining = [x for x in range(n) if not in_region[x]]
        violations.append(
            f"{len(remaining)} contaminated nodes remain: {remaining[:8]}"
        )
    return BatchVerificationReport(
        dimension=compiled.dimension,
        strategy=compiled.strategy,
        monotone=not recontaminated,
        contiguous=contiguous,
        complete=complete,
        intruder_captured=complete,
        total_moves=compiled.stats.total_moves,
        makespan=compiled.stats.makespan,
        team_size=team,
        violations=violations,
    )
