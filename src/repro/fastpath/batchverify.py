"""Mask-kernel batch verification of compiled schedules.

:func:`batch_verify` replays a :class:`~repro.fastpath.CompiledSchedule`
one *time unit* at a time directly on the int64 columns, evolving the
same bigint node-set masks the simulation layer uses
(:meth:`~repro.topology.hypercube.Hypercube.neighbor_mask` /
:meth:`~repro.topology.hypercube.Hypercube.spread_mask`), and checks the
same predicates as :class:`~repro.analysis.verify.ScheduleVerifier`:
structure, monotonicity, contiguity (at time-unit boundaries),
completeness and intruder capture.  No ``Move`` objects, no per-move
contamination-map dispatch: the per-move work is a handful of int ops on
plain columns, and the expensive checks (departure rule, recontamination
flood, connectivity BFS) run once per time unit on whole masks.

Verdict equivalence
-------------------
For every schedule the generators emit, the verdict (``monotone``,
``contiguous``, ``complete``, ``intruder_captured``, ``ok``) equals the
classic verifier's.  The one semantic difference is *intra-unit* timing:
the classic verifier evaluates the departure rule after each move, while
the batch kernel evaluates each unit with all of the unit's arrivals in
effect.  The schedule plane's documented replay-order convention (moves
whose safety depends on another move of the same unit are ordered after
it, and each unit is internally consistent) makes the two equivalent on
generator output; a hand-built schedule that is only transiently unsafe
*within* one unit can pass here and fail there.  The equivalence tests
therefore exercise injected violations with one move per unit, where the
two replays are exactly the same computation.

Capture note: the omniscient reachable-set intruder is captured exactly
when no contaminated node remains (see
:class:`~repro.sim.intruder.ReachableSetIntruder`), so
``intruder_captured == complete`` by construction in both verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.chunkstream import ScheduleChunk
from repro.errors import (
    ContiguityError,
    IncompleteCleaningError,
    RecontaminationError,
    ScheduleError,
    SimulationError,
    VerificationError,
)
import repro.fastpath.npkernels as npkernels
from repro.fastpath.compiled import CompiledSchedule
from repro.fastpath.npkernels import KernelFallback, NPChunkVerifier
from repro.topology.hypercube import Hypercube

__all__ = ["BatchVerificationReport", "batch_verify", "batch_verify_chunks"]


@dataclass
class BatchVerificationReport:
    """Verdict of one batch replay (mirrors ``VerificationReport``).

    Carries the same predicate fields and the same ``ok`` /
    ``raise_if_failed`` / ``summary`` surface as
    :class:`~repro.analysis.verify.VerificationReport`, so callers can
    treat the two interchangeably; the per-node timing maps the classic
    report collects for the figure benches are deliberately absent — the
    batch path exists to *not* do per-node Python bookkeeping.
    """

    dimension: int
    strategy: str
    monotone: bool
    contiguous: bool
    complete: bool
    intruder_captured: bool
    total_moves: int
    makespan: int
    team_size: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All four correctness predicates hold and nothing was violated."""
        return (
            self.monotone
            and self.contiguous
            and self.complete
            and self.intruder_captured
            and not self.violations
        )

    def raise_if_failed(self) -> None:
        """Raise the most specific error if verification failed."""
        if not self.monotone:
            raise RecontaminationError(
                f"{self.strategy}(d={self.dimension}): recontamination occurred"
            )
        if not self.contiguous:
            raise ContiguityError(
                f"{self.strategy}(d={self.dimension}): decontaminated region disconnected"
            )
        if not self.complete:
            raise IncompleteCleaningError(
                f"{self.strategy}(d={self.dimension}): contaminated nodes remain"
            )
        if not self.intruder_captured:
            raise VerificationError(
                f"{self.strategy}(d={self.dimension}): intruder not captured"
            )
        if self.violations:
            raise VerificationError(
                f"{self.strategy}(d={self.dimension}): {self.violations[0]}"
            )

    def summary(self) -> str:
        """One-line verdict in the classic report's format."""
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"[{verdict}] {self.strategy}(d={self.dimension}): "
            f"monotone={self.monotone} contiguous={self.contiguous} "
            f"complete={self.complete} captured={self.intruder_captured} "
            f"moves={self.total_moves} makespan={self.makespan} team={self.team_size}"
        )


def _region_connected(region: int, homebase: int, topo: Hypercube) -> bool:
    """Bitset BFS: is ``region`` connected?  Start at the homebase when it
    is in the region, else at the lowest set bit (deterministic)."""
    if not region:
        return True
    home_bit = 1 << homebase
    frontier = home_bit if region & home_bit else region & -region
    reached = frontier
    while frontier:
        frontier = topo.spread_mask(frontier) & region & ~reached
        reached |= frontier
    return reached == region


def _region_mask_from(in_region: bytearray) -> int:
    """Pack the 0/1 per-node region table into a node bitmask."""
    out = 0
    for x, flag in enumerate(in_region):
        if flag:
            out |= 1 << x
    return out


class _ReplayState:
    """The batch replay's incremental state machine.

    One instance verifies one schedule, fed as any number of column
    blocks (:meth:`feed`) followed by :meth:`finish` — the monolithic
    :func:`batch_verify` feeds a single block, the streaming
    :func:`batch_verify_chunks` one block per chunk.  All state a time
    unit can leave behind (guard counts, region tables, agent
    position/clock maps, the vacated list of a *still-open* unit, the
    contiguity trichotomy) lives on the instance, so a chunk boundary —
    even one splitting a time unit — is invisible to the verdict, and
    error messages cite the same global move index ``#k`` either way.
    """

    def __init__(
        self,
        dimension: int,
        strategy: str,
        homebase: int,
        uses_cloning: bool,
        team: int,
        topo: Hypercube,
    ) -> None:
        if topo.n != (1 << dimension):
            raise ScheduleError(
                f"topology has {topo.n} nodes but schedule is d={dimension}"
            )
        self.dimension = dimension
        self.strategy = strategy
        self.homebase = homebase
        self.uses_cloning = uses_cloning
        self.team = team
        self.topo = topo
        d, n = dimension, topo.n
        self.n = n
        # neighbour ids come from on-the-fly XOR with these single-bit
        # masks (an eager per-node adjacency table would cost O(n·d) to
        # build — more than the whole replay for sparse schedules)
        self.bits = [1 << p for p in range(d)]

        # --- initial deployment ---------------------------------------- #
        self.guard_count = [0] * n
        self.guard_count[homebase] = 1 if uses_cloning else team
        self.in_region = bytearray(n)
        self.in_region[homebase] = 1
        self.region_size = 1
        # contam_count[x] = number of contaminated neighbours of x; the
        # departure rule and the "arrival adjacent to region?" test both
        # become O(1) reads of this table
        self.contam_count = [d] * n
        for b in self.bits:
            self.contam_count[homebase ^ b] -= 1
        self.position: Dict[int, int] = {}
        self.clock: Dict[int, int] = {}
        if uses_cloning:
            self.position[0] = homebase

        self.violations: List[str] = []
        self.recontaminated = False
        self.contiguous = True
        # incremental contiguity cache, same trichotomy as
        # ContaminationMap: True = known connected, False = known verdict
        # already recorded, None = stale (non-extending growth or
        # recontamination) -> BFS
        self.contig_cache: Optional[bool] = True

        self.vacated: List[int] = []
        self.unit_time = 0  # the currently open time unit (0 = none yet)
        self.moves_seen = 0  # global index of the next move

    def _flood_from(self, v: int, first_cause: int) -> None:
        """Violation path: recontaminate ``v`` and spread through every
        unguarded clean node reachable from it (never fires on valid
        schedules, so clarity over speed)."""
        self.recontaminated = True
        self.contig_cache = None
        in_region, guard_count, contam_count = (
            self.in_region,
            self.guard_count,
            self.contam_count,
        )
        stack = [(v, first_cause)]
        while stack:
            x, cause = stack.pop()
            if not in_region[x]:
                continue
            in_region[x] = 0
            self.region_size -= 1
            self.violations.append(f"node {x} recontaminated from {cause}")
            for b in self.bits:
                u = x ^ b
                contam_count[u] += 1
                if in_region[u] and guard_count[u] == 0:
                    stack.append((u, x))

    def _settle_unit(self) -> None:
        """Close the open time unit: departure rule on every vacated
        node, then the boundary contiguity check."""
        in_region, guard_count, contam_count = (
            self.in_region,
            self.guard_count,
            self.contam_count,
        )
        if self.region_size < self.n:
            for v in self.vacated:
                # still unguarded (not re-arrived within the unit), now
                # clean: it stays clean iff no neighbour is contaminated
                if guard_count[v] == 0 and in_region[v] and contam_count[v]:
                    for b in self.bits:
                        if not in_region[v ^ b]:
                            self._flood_from(v, v ^ b)
                            break
        del self.vacated[:]

        # --- boundary contiguity check --------------------------------- #
        if self.contig_cache is None:
            self.contig_cache = self.region_size == 0 or _region_connected(
                _region_mask_from(in_region), self.homebase, self.topo
            )
        if self.contig_cache is False:
            self.contiguous = False
            self.violations.append(f"region disconnected at time {self.unit_time}")
            self.contig_cache = None  # re-derive at the next boundary

    def feed(
        self,
        times: Sequence[int],
        agents: Sequence[int],
        srcs: Sequence[int],
        dsts: Sequence[int],
    ) -> None:
        """Replay one block of columns (any length, any alignment).

        The hot loop touches no Python objects beyond flat integer
        tables.  A time unit is settled the moment a later time arrives
        — which may be in a later block: unit boundaries and block
        boundaries are independent.
        """
        d, n = self.dimension, self.n
        homebase, uses_cloning = self.homebase, self.uses_cloning
        bits = self.bits
        guard_count, in_region, contam_count = (
            self.guard_count,
            self.in_region,
            self.contam_count,
        )
        position, clock, vacated = self.position, self.clock, self.vacated
        for local in range(len(times)):
            k = self.moves_seen
            t = times[local]
            if t < self.unit_time:
                raise ScheduleError(
                    f"move #{k} goes back in time ({t} < {self.unit_time})"
                )
            if t < 1:
                raise ScheduleError(f"move time must be >= 1, got {t}")
            if t != self.unit_time:
                if self.unit_time:
                    self._settle_unit()
                self.unit_time = t
            agent, src, dst = agents[local], srcs[local], dsts[local]
            # structure: chained positions, homebase starts, one move per
            # unit per agent, edges only (fused into the replay scan so
            # the columns are walked exactly once)
            prev = position.get(agent)
            if prev is None:
                if uses_cloning:
                    # clone materializes at src; placement must not touch
                    # contaminated ground away from the homebase
                    if not 0 <= src < n:
                        raise ScheduleError(f"move #{k}: node {src} out of range")
                    if not in_region[src]:
                        if src != homebase:
                            raise SimulationError(
                                f"cannot place an agent on contaminated node {src} "
                                f"(contiguous model)"
                            )
                        if self.region_size == 0:
                            self.contig_cache = True
                        elif not (
                            self.contig_cache is True and contam_count[src] < d
                        ):
                            self.contig_cache = None
                        in_region[src] = 1
                        self.region_size += 1
                        for b in bits:
                            contam_count[src ^ b] -= 1
                    guard_count[src] += 1
                elif src != homebase:
                    raise ScheduleError(
                        f"move #{k}: agent {agent} first appears at {src}, "
                        f"not the homebase {homebase}"
                    )
            else:
                if prev != src:
                    raise ScheduleError(
                        f"move #{k}: agent {agent} moves from {src} but is at {prev}"
                    )
                if clock.get(agent, 0) >= t:
                    raise ScheduleError(
                        f"move #{k}: agent {agent} moves twice within one time unit"
                    )
            edge = src ^ dst
            if src == dst or edge & (edge - 1) or edge >= n or not 0 <= dst < n:
                raise ScheduleError(f"move #{k} ({src}->{dst}) is not an edge")
            if guard_count[src] <= 0:
                raise SimulationError(f"no agent on {src} to move")
            position[agent] = dst
            clock[agent] = t
            # apply departure+arrival on the guard counts; the departure
            # rule itself is settled once per unit at the unit boundary
            guard_count[src] -= 1
            if guard_count[src] == 0:
                vacated.append(src)
            guard_count[dst] += 1
            if not in_region[dst]:
                # incremental contiguity bookkeeping, in arrival order:
                # extending a connected region by an adjacent node keeps
                # it connected; anything else goes stale for the BFS
                if self.region_size == 0:
                    self.contig_cache = True
                elif not (self.contig_cache is True and contam_count[dst] < d):
                    self.contig_cache = None
                in_region[dst] = 1
                self.region_size += 1
                for b in bits:
                    contam_count[dst ^ b] -= 1
            self.moves_seen += 1

    def finish(
        self,
        declared_team_size: int,
        agents_used: int,
        total_moves: int,
        makespan: int,
    ) -> BatchVerificationReport:
        """Settle the last open unit and produce the verdict."""
        if self.unit_time:
            self._settle_unit()

        if declared_team_size and agents_used > declared_team_size:
            raise ScheduleError(
                f"{agents_used} agents appear in moves but "
                f"team_size={declared_team_size}"
            )

        complete = self.region_size == self.n
        if not complete:
            in_region = self.in_region
            remaining = [x for x in range(self.n) if not in_region[x]]
            self.violations.append(
                f"{len(remaining)} contaminated nodes remain: {remaining[:8]}"
            )
        return BatchVerificationReport(
            dimension=self.dimension,
            strategy=self.strategy,
            monotone=not self.recontaminated,
            contiguous=self.contiguous,
            complete=complete,
            intruder_captured=complete,
            total_moves=total_moves,
            makespan=makespan,
            team_size=max(self.team, agents_used, 1),
            violations=self.violations,
        )


class _NPReplayAdapter:
    """`_ReplayState`-shaped front for :class:`NPChunkVerifier`.

    Presents the same ``feed``/``finish`` surface, so the two batch
    entry points drive either backend through one code path.  The numpy
    verifier only ever *commits* state the pure replay would accept
    silently; the moment it declines a block (:class:`KernelFallback` —
    which covers every malformed or invariant-violating schedule), this
    adapter rebuilds a pure :class:`_ReplayState` from the committed
    state and replays the declined rows through it, so verdicts,
    violation strings and error messages (global move indices included)
    are byte-identical to the pure backend.
    """

    def __init__(
        self,
        dimension: int,
        strategy: str,
        homebase: int,
        team: int,
        topo: Hypercube,
    ) -> None:
        if topo.n != (1 << dimension):
            raise ScheduleError(
                f"topology has {topo.n} nodes but schedule is d={dimension}"
            )
        self.dimension = dimension
        self.strategy = strategy
        self.homebase = homebase
        self.team = team
        self.topo = topo
        self._kernel: Optional[NPChunkVerifier] = NPChunkVerifier(
            dimension, homebase, team
        )
        self._pure: Optional[_ReplayState] = None

    def _demote(self) -> _ReplayState:
        """Build the pure continuation state and replay the declined rows."""
        kernel = self._kernel
        assert kernel is not None
        state = _ReplayState(
            dimension=self.dimension,
            strategy=self.strategy,
            homebase=self.homebase,
            uses_cloning=False,
            team=self.team,
            topo=self.topo,
        )
        export = kernel.export_pure_state()
        state.guard_count = export["guard_count"]
        state.in_region = export["in_region"]
        state.contam_count = export["contam_count"]
        state.region_size = export["region_size"]
        state.position = export["position"]
        state.clock = export["clock"]
        state.moves_seen = export["moves_seen"]
        # the committed prefix ends on a settled unit boundary: vacated is
        # empty and the adjacent-extension invariant held throughout, so
        # the incremental contiguity cache is a known True
        state.unit_time = export["unit_time"]
        pending = kernel.pending_rows()
        self._pure = state
        self._kernel = None
        state.feed(*pending)
        return state

    def feed(
        self,
        times: Sequence[int],
        agents: Sequence[int],
        srcs: Sequence[int],
        dsts: Sequence[int],
    ) -> None:
        if self._pure is not None:
            self._pure.feed(times, agents, srcs, dsts)
            return
        assert self._kernel is not None
        try:
            self._kernel.feed(times, agents, srcs, dsts)
        except KernelFallback:
            self._demote()

    def finish(
        self,
        declared_team_size: int,
        agents_used: int,
        total_moves: int,
        makespan: int,
    ) -> BatchVerificationReport:
        if self._pure is None:
            assert self._kernel is not None
            try:
                self._kernel.finish_tail()
            except KernelFallback:
                self._demote()
        if self._pure is not None:
            return self._pure.finish(
                declared_team_size, agents_used, total_moves, makespan
            )
        kernel = self._kernel
        assert kernel is not None
        if declared_team_size and agents_used > declared_team_size:
            raise ScheduleError(
                f"{agents_used} agents appear in moves but "
                f"team_size={declared_team_size}"
            )
        violations: List[str] = []
        complete = kernel.region_size == kernel.n
        if not complete:
            remaining_count = kernel.n - kernel.region_size
            violations.append(
                f"{remaining_count} contaminated nodes remain: "
                f"{kernel.contaminated_sample(8)}"
            )
        # defensive cross-check of the committed invariant: the region
        # grew only by adjacent extension, so it must be connected — a
        # frontier BFS on the packed plane (cheap, runs once per verdict)
        contiguous = kernel.region_size == 0 or npkernels.plane_connected(
            kernel.clean_plane, kernel.d, kernel.home
        )
        return BatchVerificationReport(
            dimension=self.dimension,
            strategy=self.strategy,
            monotone=True,
            contiguous=contiguous,
            complete=complete,
            intruder_captured=complete,
            total_moves=total_moves,
            makespan=makespan,
            team_size=max(self.team, agents_used, 1),
            violations=violations,
        )


_AnyReplay = Union[_ReplayState, _NPReplayAdapter]


def _make_replay_state(
    dimension: int,
    strategy: str,
    homebase: int,
    uses_cloning: bool,
    team: int,
    topo: Hypercube,
    backend: Optional[str],
) -> _AnyReplay:
    """Replay state for the resolved backend.

    Cloning schedules always take the pure path: clone materialization
    is mid-unit stateful in a way the segmented kernels do not model
    (and cloning strategies are small — d≤8 in the catalogue).
    """
    resolved = npkernels.resolve_backend(backend)
    if resolved == "numpy" and not uses_cloning:
        return _NPReplayAdapter(dimension, strategy, homebase, team, topo)
    return _ReplayState(dimension, strategy, homebase, uses_cloning, team, topo)


def batch_verify(
    compiled: CompiledSchedule,
    topology: Optional[Hypercube] = None,
    *,
    tracer: Optional[object] = None,
    backend: Optional[str] = None,
) -> BatchVerificationReport:
    """Replay ``compiled`` per time unit with O(1)-per-move kernels.

    ``tracer`` is duck-typed (anything with a ``span(name, **attrs)``
    context manager — this module must not import ``repro.obs``, lint
    rule ``RPR220``); when given, the replay runs under a
    ``fastpath.batch_verify`` span.

    ``backend`` selects the kernel backend (``"numpy"`` / ``"pure"`` /
    ``"auto"``; ``None`` reads ``$REPRO_KERNEL_BACKEND`` — see
    :func:`repro.fastpath.npkernels.resolve_backend`).  Verdicts,
    violation strings and error messages are byte-identical across
    backends: the numpy path hands anything it cannot prove safe back
    to the pure replay.

    The hot loop (see :meth:`_ReplayState.feed`) touches no Python
    objects beyond flat integer tables: guard counts, agent
    positions/clocks, a 0/1 decontaminated-region table, and — the key
    trick — a per-node *contaminated-neighbour counter*.
    Decontamination is monotone outside the (rare) violation path, so
    each node's counter is decremented exactly once per neighbour over
    the whole replay: O(n·d) total maintenance, and the departure rule
    collapses to ``counter[v] != 0`` — one list index per vacated node
    instead of a neighbourhood mask intersection whose cost grows with
    ``n``.  The bigint mask machinery
    (:meth:`~repro.topology.hypercube.Hypercube.spread_mask` BFS) only
    runs on the paths where whole-region work is unavoidable: the
    contiguity re-derivation after a non-extending event and the
    recontamination flood, both of which never fire on a valid schedule.

    Structure malformation raises :class:`~repro.errors.ScheduleError`
    (and illegal clone placement :class:`~repro.errors.SimulationError`),
    matching the classic verifier; invariant failures never raise — they
    are recorded on the returned report.
    """
    if tracer is not None:
        with tracer.span(  # type: ignore[attr-defined]
            "fastpath.batch_verify",
            dimension=compiled.dimension,
            moves=compiled.total_moves,
        ) as span:
            report = batch_verify(compiled, topology, backend=backend)
            span.attrs["ok"] = report.ok
            return report
    topo = topology or Hypercube(compiled.dimension)
    state = _make_replay_state(
        dimension=compiled.dimension,
        strategy=compiled.strategy,
        homebase=compiled.homebase,
        uses_cloning=compiled.uses_cloning,
        team=max(compiled.team_size, compiled.stats.agents_used, 1),
        topo=topo,
        backend=backend,
    )
    if isinstance(state, _NPReplayAdapter):
        # the kernel consumes the int64 columns zero-copy
        state.feed(compiled.times, compiled.agents, compiled.srcs, compiled.dsts)
    else:
        state.feed(
            compiled.times.tolist(),
            compiled.agents.tolist(),
            compiled.srcs.tolist(),
            compiled.dsts.tolist(),
        )
    return state.finish(
        declared_team_size=compiled.team_size,
        agents_used=compiled.stats.agents_used,
        total_moves=compiled.stats.total_moves,
        makespan=compiled.stats.makespan,
    )


def batch_verify_chunks(
    chunks: Iterable[ScheduleChunk],
    topology: Optional[Hypercube] = None,
    *,
    tracer: Optional[object] = None,
    backend: Optional[str] = None,
) -> BatchVerificationReport:
    """Streaming :func:`batch_verify`: one chunk resident at a time.

    Consumes a :class:`~repro.core.chunkstream.ScheduleChunk` stream
    (from :meth:`Strategy.generate_chunks
    <repro.core.strategy.Strategy.generate_chunks>`, a cache's
    ``stream_chunks`` or :meth:`CompiledSchedule.iter_chunks
    <repro.fastpath.compiled.CompiledSchedule.iter_chunks>`), carrying
    the replay state across chunk boundaries — a boundary may split a
    time unit; the unit is settled once a later time arrives, whichever
    chunk that lands in.  The verdict and every error message (global
    move indices included) are identical to feeding the concatenated
    columns to :func:`batch_verify`.

    Peak memory: the chunk stream itself is *not* what dominates — the
    PR 9 measurements showed the O(n) per-node tables (guard counts,
    region/contamination tables) overtake the one-chunk window from
    d≈16 up, which is why the ``"numpy"`` backend packs the region into
    ``uint64`` bit-planes and flat int64 tables (about 25 MiB of state
    at d=20 versus hundreds of MiB of boxed-int lists).  Either way a
    single resident chunk bounds the *stream's* contribution; the node
    tables set the floor.

    The stream header must carry the exact team size (it seeds the
    homebase guards before the first move); the final chunk's aggregate
    block supplies the totals the classic path read from
    ``compiled.stats``.  Raises :class:`~repro.errors.ScheduleError` on
    a torn stream (no final chunk).
    """
    if tracer is not None:
        with tracer.span(  # type: ignore[attr-defined]
            "fastpath.batch_verify_chunks"
        ) as span:
            report = batch_verify_chunks(chunks, topology, backend=backend)
            span.attrs["dimension"] = report.dimension
            span.attrs["moves"] = report.total_moves
            span.attrs["ok"] = report.ok
            return report
    state: Optional[_AnyReplay] = None
    last: Optional[ScheduleChunk] = None
    for chunk in chunks:
        if state is None:
            header = chunk.header
            state = _make_replay_state(
                dimension=header.dimension,
                strategy=header.strategy,
                homebase=header.homebase,
                uses_cloning=header.uses_cloning,
                team=max(header.team_size, 1),
                topo=topology or Hypercube(header.dimension),
                backend=backend,
            )
        state.feed(chunk.times, chunk.agents, chunk.srcs, chunk.dsts)
        if chunk.is_last:
            last = chunk
    if state is None:
        raise ScheduleError("empty chunk stream (no chunks at all)")
    if last is None:
        raise ScheduleError("torn chunk stream: no final chunk seen")
    stats = last.stats_so_far
    return state.finish(
        declared_team_size=last.header.team_size,
        agents_used=stats.agents_used,
        total_moves=stats.total_moves,
        makespan=stats.makespan,
    )
