"""The paper's structural properties as executable, testable predicates.

Each ``property_N`` function checks the corresponding numbered property of
the paper exhaustively on a given hypercube and raises
:class:`~repro.errors.TopologyError` with a precise message on violation.
They return structured data (the censuses/witnesses computed along the way)
so tests and benchmarks can display them.

* Property 1 — type census per level of the broadcast tree.
* Property 2 — leaf census per level (``C(d-1, l-1)`` leaves at level l).
* Property 5 — sizes of the classes :math:`C_i`.
* Property 6 — all broadcast-tree leaves lie in :math:`C_d`.
* Property 7 — placement of smaller/bigger neighbours across classes.
* Property 8 — existence of the "witness chain" ``x -> y -> z`` used in the
  correctness proof of the visibility strategy (Theorem 7).

Lemma 1 of Section 3 is also provided (:func:`lemma_1`) since the
correctness of Algorithm `CLEAN` hinges on it and our scheduler ordering
must satisfy it.
"""

from __future__ import annotations

from math import comb
from typing import Dict, List, Tuple

from repro.errors import TopologyError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = [
    "property_1",
    "property_2",
    "property_5",
    "property_6",
    "property_7",
    "property_8",
    "lemma_1",
    "check_all_properties",
]


def property_1(tree: BroadcastTree) -> Dict[int, Dict[int, int]]:
    """Property 1: type census per level matches ``C(d-k-1, l-1)``.

    Returns ``{level: {k: count}}`` for all levels.
    """
    out: Dict[int, Dict[int, int]] = {}
    for level in range(tree.dimension + 1):
        census = tree.type_census(level)
        formula = tree.type_census_formula(level)
        if census != formula:
            raise TopologyError(
                f"Property 1 violated at level {level}: census {census} != formula {formula}"
            )
        out[level] = census
    return out


def property_2(tree: BroadcastTree) -> Dict[int, int]:
    """Property 2: there are ``C(d-1, l-1)`` leaves at level ``l > 0``.

    Returns ``{level: leaf_count}``.
    """
    h = tree.hypercube
    out: Dict[int, int] = {}
    for level in range(h.d + 1):
        measured = sum(1 for x in h.level_nodes(level) if tree.is_leaf(x))
        expected = tree.leaf_count_at_level(level)
        if measured != expected:
            raise TopologyError(
                f"Property 2 violated at level {level}: {measured} leaves, expected {expected}"
            )
        out[level] = measured
    return out


def property_5(h: Hypercube) -> List[int]:
    """Property 5: ``|C_0| == 1`` and ``|C_i| == 2**(i-1)`` for ``i > 0``.

    Returns the list of measured class sizes.
    """
    sizes = []
    for i in range(h.d + 1):
        measured = len(h.class_members(i))
        expected = 1 if i == 0 else 1 << (i - 1)
        if measured != expected:
            raise TopologyError(
                f"Property 5 violated for C_{i}: size {measured}, expected {expected}"
            )
        sizes.append(measured)
    census = h.class_census()
    if list(census) != sizes:
        raise TopologyError("vectorized class census disagrees with class_members")
    return sizes


def property_6(tree: BroadcastTree) -> List[int]:
    """Property 6: all leaves of the broadcast tree are in :math:`C_d`.

    Returns the sorted list of leaves.
    """
    h = tree.hypercube
    leaves = sorted(tree.leaves())
    for leaf in leaves:
        if h.d > 0 and h.class_index(leaf) != h.d:
            raise TopologyError(f"Property 6 violated: leaf {leaf} not in C_{h.d}")
    expected = sorted(h.class_members(h.d)) if h.d > 0 else [0]
    if leaves != expected:
        raise TopologyError("Property 6 violated: leaves differ from C_d as sets")
    return leaves


def property_7(h: Hypercube) -> None:
    """Property 7: neighbour classes of any node ``x`` in :math:`C_i`, i>0.

    Exactly one smaller neighbour lies in some :math:`C_j` with ``j < i``,
    all other smaller neighbours lie in :math:`C_i`, and all bigger
    neighbours lie in classes :math:`C_k` with ``k > i``.
    """
    for x in range(1, h.n):
        i = h.class_index(x)
        lower = [y for y in h.smaller_neighbors(x) if h.class_index(y) < i]
        same = [y for y in h.smaller_neighbors(x) if h.class_index(y) == i]
        if len(lower) != 1:
            raise TopologyError(
                f"Property 7 violated at {x}: {len(lower)} smaller neighbours below C_{i}"
            )
        if len(lower) + len(same) != len(h.smaller_neighbors(x)):
            raise TopologyError(f"Property 7 violated at {x}: smaller neighbour above C_{i}")
        for y in h.bigger_neighbors(x):
            if h.class_index(y) <= i:
                raise TopologyError(
                    f"Property 7 violated at {x}: bigger neighbour {y} in C_{h.class_index(y)}"
                )


#: The single exception to the paper's Property 8: node ``3`` (positions 1
#: and 2 set, class :math:`C_2`).  The paper's Case 2 proof picks a smaller
#: neighbour differing in a position ``j < i - 1``; for ``i = 2`` with
#: position 1 set no such ``j`` exists, and indeed node 3's only same-class
#: smaller neighbour (node 2) has no smaller neighbour in :math:`C_1`.
#: Theorem 7 is unaffected (verified by simulation); see EXPERIMENTS.md.
PROPERTY_8_EXCEPTIONS = frozenset({3})


def property_8(h: Hypercube) -> Dict[int, Tuple[int, int]]:
    """Property 8: witness chain for ``x`` in :math:`C_i`, ``i > 1``.

    There exist a smaller neighbour ``y`` of ``x`` with ``y`` in :math:`C_i`
    and a smaller neighbour ``z`` of ``y`` with ``z`` in :math:`C_{i-1}`.
    Returns ``{x: (y, z)}`` witnesses.

    The property as printed has exactly one counterexample — node ``3``
    (see :data:`PROPERTY_8_EXCEPTIONS`); it is exempted here and the tests
    confirm no *other* node ever lacks a witness.
    """
    witnesses: Dict[int, Tuple[int, int]] = {}
    for x in range(h.n):
        i = h.class_index(x)
        if i <= 1:
            continue
        found = None
        for y in h.smaller_neighbors(x):
            if h.class_index(y) != i:
                continue
            for z in h.smaller_neighbors(y):
                if h.class_index(z) == i - 1:
                    found = (y, z)
                    break
            if found:
                break
        if found is None:
            if x in PROPERTY_8_EXCEPTIONS:
                continue
            raise TopologyError(f"Property 8 violated at {x}: no witness chain")
        witnesses[x] = found
    return witnesses


def lemma_1(tree: BroadcastTree) -> None:
    """Lemma 1: non-tree upper neighbours come from earlier same-level nodes.

    For nodes ``y`` (level ``l``) and ``z`` a neighbour of ``y`` at level
    ``l+1`` that is *not* a tree child of ``y``, the tree parent ``x`` of
    ``z`` is a level-``l`` node smaller than ``y`` in the synchronizer's
    processing order (increasing integer order — the paper's lexicographic
    order on strings read from the most significant position).
    """
    h = tree.hypercube
    for y in range(h.n):
        level = h.level(y)
        if level == h.d:
            continue
        children = set(tree.children(y))
        uppers = [z for z in h.neighbors(y) if h.level(z) == level + 1]
        for z in uppers:
            if z in children:
                continue
            x = tree.parent(z)
            if h.level(x) != level:
                raise TopologyError(f"Lemma 1 violated: parent of {z} not at level {level}")
            if not x < y:
                raise TopologyError(
                    f"Lemma 1 violated: parent {x} of non-tree upper neighbour {z} "
                    f"does not precede {y}"
                )


def check_all_properties(dimension: int) -> None:
    """Run every property/lemma check for the given hypercube dimension."""
    h = Hypercube(dimension)
    tree = BroadcastTree(h)
    property_1(tree)
    property_2(tree)
    property_5(h)
    property_6(tree)
    property_7(h)
    property_8(h)
    lemma_1(tree)
    tree.validate()
