"""The ``d``-dimensional hypercube :math:`H_d` (Section 2 of the paper).

Nodes are integers in ``range(2**d)`` interpreted as bitmasks; the paper's
*position* ``i`` (1-based) is bit index ``i - 1``.  Two nodes are adjacent
iff their binary strings differ in exactly one position, and the label
``λ_x(x, z)`` of the edge ``(x, z)`` at ``x`` is that differing position
(the labelling is symmetric in a hypercube: ``λ_x(x, z) == λ_z(z, x)``).

The class exposes every structural notion the two search strategies rely
on:

* *levels*: level ``l`` holds the nodes with ``l`` one-bits,
* ``m(x)``: the position of the most significant bit of ``x``,
* *classes* :math:`C_i`: nodes whose most significant bit is in position
  ``i`` (Section 4.1, Figure 3),
* *smaller/bigger neighbours* (Definition 2): ``y`` is a smaller neighbour
  of ``x`` if ``λ(x, y) <= m(x)`` and a bigger neighbour otherwise; the
  bigger neighbours of ``x`` are exactly its children in the broadcast
  tree.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

# Predates the kernel-backend seam; the adjacency/census tables here are
# mandatory (numpy is a declared dependency), not an optional fast path.
import numpy as np  # repro-lint: disable=RPR250

from repro._bitops import (
    bitstring,
    iter_set_bits,
    msb_position,
    msb_position_array,
    popcount,
    popcount_array,
)
from repro.errors import InvalidNodeError, TopologyError

__all__ = ["Hypercube"]


class Hypercube:
    """The ``d``-dimensional hypercube with the paper's port labelling.

    Parameters
    ----------
    dimension:
        The degree ``d`` of the hypercube; the graph has ``n = 2**d`` nodes
        and ``d * 2**(d-1)`` edges.  ``dimension=0`` (a single node) is
        allowed and useful as a degenerate test case.

    Examples
    --------
    >>> h = Hypercube(3)
    >>> h.n
    8
    >>> sorted(h.neighbors(0b000))
    [1, 2, 4]
    >>> h.level(0b101)
    2
    >>> h.edge_label(0b000, 0b100)
    3
    """

    __slots__ = ("_d", "_n", "_adj", "_nbr_masks", "_dim_low")

    #: largest node count for which the adjacency table is materialized;
    #: beyond it (d > 17) neighbour lists/masks are computed on the fly.
    _ADJACENCY_TABLE_MAX_NODES = 1 << 17

    def __init__(self, dimension: int) -> None:
        if dimension < 0:
            raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
        if dimension > 30:
            raise TopologyError(
                f"dimension {dimension} would create 2**{dimension} nodes; refusing (max 30)"
            )
        self._d = dimension
        self._n = 1 << dimension
        self._adj: tuple = ()
        self._nbr_masks: tuple = ()
        self._dim_low: tuple = ()

    # ------------------------------------------------------------------ #
    # basic shape
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """The degree ``d`` of the hypercube."""
        return self._d

    #: Alias matching the paper's notation.
    @property
    def d(self) -> int:
        """Alias for :attr:`dimension`."""
        return self._d

    @property
    def n(self) -> int:
        """Number of nodes, ``2**d``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges, ``d * 2**(d-1)``."""
        return self._d * (self._n >> 1) if self._d else 0

    @property
    def homebase(self) -> int:
        """The node ``00...0`` where all agents start."""
        return 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self._n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and other._d == self._d

    def __hash__(self) -> int:
        return hash(("Hypercube", self._d))

    def __repr__(self) -> str:
        return f"Hypercube(dimension={self._d})"

    def nodes(self) -> range:
        """All node identifiers, ``0 .. n-1``."""
        return range(self._n)

    def check_node(self, node: int) -> int:
        """Validate a node id, returning it; raise :class:`InvalidNodeError`."""
        if not (isinstance(node, (int, np.integer)) and 0 <= node < self._n):
            raise InvalidNodeError(int(node) if isinstance(node, (int, np.integer)) else -1, self._n)
        return int(node)

    # ------------------------------------------------------------------ #
    # adjacency and labels
    # ------------------------------------------------------------------ #

    def neighbors(self, node: int) -> Sequence[int]:
        """The ``d`` neighbours of ``node`` (differ in exactly one bit).

        Returns a cached immutable tuple: the full adjacency table is
        precomputed on first use (for ``d <= 17``), so hot-path callers —
        the simulation state layer touches neighbourhoods on every agent
        move — never rebuild lists or re-validate node ids.
        """
        if not self._adj:
            if self._n <= self._ADJACENCY_TABLE_MAX_NODES:
                self._adj = tuple(
                    tuple(x ^ (1 << i) for i in range(self._d)) for x in range(self._n)
                )
            else:
                self.check_node(node)
                return tuple(node ^ (1 << i) for i in range(self._d))
        self.check_node(node)
        return self._adj[node]

    def neighbor_mask(self, node: int) -> int:
        """Bitmask of the neighbours of ``node`` (bit ``y`` set iff
        ``y`` is adjacent to ``node``); cached like :meth:`neighbors`."""
        if not self._nbr_masks:
            if self._n <= self._ADJACENCY_TABLE_MAX_NODES:
                self._nbr_masks = tuple(
                    sum(1 << (x ^ (1 << i)) for i in range(self._d)) for x in range(self._n)
                )
            else:
                self.check_node(node)
                return sum(1 << (node ^ (1 << i)) for i in range(self._d))
        self.check_node(node)
        return self._nbr_masks[node]

    @property
    def full_mask(self) -> int:
        """Bitmask with every node's bit set (the whole node set)."""
        return (1 << self._n) - 1

    def spread_mask(self, mask: int) -> int:
        """One-step neighbourhood of a node *set* given as a bitmask.

        Returns the union of the neighbour sets of every node in ``mask``
        (the input nodes themselves are not automatically included).  For
        the hypercube this is ``d`` big-integer shifts — per-dimension, the
        nodes with bit ``i`` clear swap places with those where it is set —
        so whole-frontier BFS expansion costs O(d) word-parallel operations
        instead of touching nodes one by one.
        """
        out = 0
        for shift, low in self._dimension_low_masks():
            out |= (mask & low) << shift
            out |= (mask >> shift) & low
        return out

    def _dimension_low_masks(self) -> tuple:
        """Per-dimension ``(shift, low)`` pairs where ``low`` masks the
        nodes whose bit ``i`` is clear (cached helper for :meth:`spread_mask`)."""
        if not self._dim_low:
            pairs = []
            all_nodes = (1 << self._n) - 1
            for i in range(self._d):
                shift = 1 << i
                period = shift << 1
                # runs of ``shift`` set bits every ``period`` bits
                low = ((1 << shift) - 1) * (all_nodes // ((1 << period) - 1))
                pairs.append((shift, low))
            self._dim_low = tuple(pairs)
        return self._dim_low

    def neighbor(self, node: int, position: int) -> int:
        """The neighbour of ``node`` across the port labelled ``position``.

        ``position`` is 1-based, matching the paper's ``λ`` labels.
        """
        self.check_node(node)
        if not 1 <= position <= self._d:
            raise TopologyError(f"port position must be in 1..{self._d}, got {position}")
        return node ^ (1 << (position - 1))

    def has_edge(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are adjacent (Hamming distance 1)."""
        self.check_node(x)
        self.check_node(y)
        diff = x ^ y
        return diff != 0 and diff & (diff - 1) == 0

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ordered pairs ``(low, high)``."""
        for x in range(self._n):
            for i in range(self._d):
                y = x ^ (1 << i)
                if x < y:
                    yield (x, y)

    def edge_label(self, x: int, y: int) -> int:
        """The paper's label ``λ_x(x, y)``: 1-based differing bit position."""
        if not self.has_edge(x, y):
            raise TopologyError(f"({x}, {y}) is not a hypercube edge")
        return (x ^ y).bit_length()

    def ports(self, node: int) -> range:
        """The port labels at ``node``: positions ``1 .. d``."""
        self.check_node(node)
        return range(1, self._d + 1)

    # ------------------------------------------------------------------ #
    # levels (popcount strata, Section 2)
    # ------------------------------------------------------------------ #

    def level(self, node: int) -> int:
        """The level of ``node``: number of 1 bits in its string."""
        self.check_node(node)
        return popcount(node)

    def level_nodes(self, level: int) -> List[int]:
        """All nodes at ``level`` in increasing integer order.

        Increasing integer order coincides with the paper's lexicographic
        order on bit strings read most-significant-position first, which is
        the order the synchronizer uses (Algorithm 1, step 2.2; Lemma 1
        requires exactly this order).
        """
        if not 0 <= level <= self._d:
            raise TopologyError(f"level must be in 0..{self._d}, got {level}")
        return [x for x in range(self._n) if popcount(x) == level]

    def level_size(self, level: int) -> int:
        """Number of nodes at ``level``: ``C(d, level)``."""
        if not 0 <= level <= self._d:
            raise TopologyError(f"level must be in 0..{self._d}, got {level}")
        from math import comb

        return comb(self._d, level)

    def levels(self) -> Iterator[List[int]]:
        """Iterate over levels ``0 .. d``, yielding node lists."""
        buckets: List[List[int]] = [[] for _ in range(self._d + 1)]
        for x in range(self._n):
            buckets[popcount(x)].append(x)
        yield from buckets

    # ------------------------------------------------------------------ #
    # m(x), classes C_i, smaller/bigger neighbours (Definition 2, §4.1)
    # ------------------------------------------------------------------ #

    def msb(self, node: int) -> int:
        """The paper's ``m(x)``: 1-based position of the most significant bit.

        ``m(homebase) == 0`` by convention (no set bit).
        """
        self.check_node(node)
        return msb_position(node)

    def class_index(self, node: int) -> int:
        """Index ``i`` of the class :math:`C_i` containing ``node``.

        ``C_0 = {00...0}``; for ``i > 0``, :math:`C_i` holds the nodes whose
        most significant bit is in position ``i`` (Section 4.1).
        """
        return self.msb(node)

    def class_members(self, index: int) -> List[int]:
        """All nodes of class :math:`C_i`, in increasing order.

        Property 5: ``|C_0| == 1`` and ``|C_i| == 2**(i-1)`` for ``i >= 1``.
        """
        if not 0 <= index <= self._d:
            raise TopologyError(f"class index must be in 0..{self._d}, got {index}")
        if index == 0:
            return [0]
        base = 1 << (index - 1)
        return [base | rest for rest in range(base)]

    def class_size(self, index: int) -> int:
        """``|C_i|`` per Property 5."""
        if not 0 <= index <= self._d:
            raise TopologyError(f"class index must be in 0..{self._d}, got {index}")
        return 1 if index == 0 else 1 << (index - 1)

    def classes(self) -> List[List[int]]:
        """All classes ``C_0 .. C_d`` as lists (Figure 3)."""
        return [self.class_members(i) for i in range(self._d + 1)]

    def smaller_neighbors(self, node: int) -> List[int]:
        """Neighbours ``y`` with ``λ(x, y) <= m(x)`` (Definition 2).

        The homebase has no smaller neighbours.
        """
        self.check_node(node)
        m = msb_position(node)
        return [node ^ (1 << i) for i in range(m)]

    def bigger_neighbors(self, node: int) -> List[int]:
        """Neighbours ``y`` with ``λ(x, y) > m(x)``; the broadcast-tree
        children of ``node`` (Definition 2 and the remark following it)."""
        self.check_node(node)
        m = msb_position(node)
        return [node | (1 << i) for i in range(m, self._d)]

    def is_smaller_neighbor(self, node: int, other: int) -> bool:
        """Whether ``other`` is a smaller neighbour of ``node``."""
        return self.edge_label(node, other) <= self.msb(node)

    # ------------------------------------------------------------------ #
    # metric structure
    # ------------------------------------------------------------------ #

    def distance(self, x: int, y: int) -> int:
        """Hamming distance (= graph distance) between ``x`` and ``y``."""
        self.check_node(x)
        self.check_node(y)
        return popcount(x ^ y)

    def shortest_path(self, x: int, y: int) -> List[int]:
        """A shortest path from ``x`` to ``y``, flipping differing bits.

        Bits are flipped from the lowest differing position upward; the
        returned list includes both endpoints.  Used by the synchronizer to
        navigate between consecutive level-``l`` nodes and back to the
        root (Algorithm 1, move accounting of Theorem 3).
        """
        self.check_node(x)
        self.check_node(y)
        path = [x]
        current = x
        for i in iter_set_bits(x ^ y):
            current ^= 1 << i
            path.append(current)
        return path

    def path_via_meet(self, x: int, y: int) -> List[int]:
        """A shortest path ``x -> y`` routed through the meet ``x & y``.

        First clears the bits of ``x`` not in ``y`` (highest first), then
        sets the bits of ``y`` not in ``x`` (lowest first).  Every
        intermediate node is a subset of ``x`` or of ``y``, so its level
        never exceeds ``max(level(x), level(y))`` — this is how the
        synchronizer navigates between level-``l`` nodes without straying
        into the contaminated levels above (Algorithm 1, step 2.2).
        """
        self.check_node(x)
        self.check_node(y)
        path = [x]
        current = x
        for i in sorted(iter_set_bits(x & ~y), reverse=True):
            current ^= 1 << i
            path.append(current)
        for i in iter_set_bits(y & ~x):
            current |= 1 << i
            path.append(current)
        return path

    def tree_path_down(self, node: int) -> List[int]:
        """The broadcast-tree path from the root to ``node``.

        Successively sets the bits of ``node`` from the lowest position
        upward, which walks root -> ... -> node along tree edges (each step
        adds the next higher set bit, so every prefix has its most
        significant bit added last, matching the tree's parent relation).
        """
        self.check_node(node)
        path = [0]
        current = 0
        for i in iter_set_bits(node):
            current |= 1 << i
            path.append(current)
        return path

    # ------------------------------------------------------------------ #
    # rendering and conversion
    # ------------------------------------------------------------------ #

    def bitstring(self, node: int) -> str:
        """Paper-convention string ``b_1 b_2 ... b_d`` (position 1 leftmost)."""
        self.check_node(node)
        return bitstring(node, self._d) if self._d else ""

    def node_from_bitstring(self, s: str) -> int:
        """Parse a paper-convention bit string back into a node id."""
        from repro._bitops import from_bitstring

        if len(s) != self._d:
            raise TopologyError(f"expected a {self._d}-bit string, got {s!r}")
        node = from_bitstring(s) if self._d else 0
        return self.check_node(node)

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` with ``label`` edge data."""
        import networkx as nx

        g = nx.Graph(name=f"H_{self._d}")
        g.add_nodes_from(self.nodes())
        for x, y in self.edges():
            g.add_edge(x, y, label=self.edge_label(x, y))
        return g

    # ------------------------------------------------------------------ #
    # vectorized censuses (hot paths for large d)
    # ------------------------------------------------------------------ #

    def level_census(self) -> np.ndarray:
        """``census[l]`` = number of nodes at level ``l`` (vectorized)."""
        values = np.arange(self._n, dtype=np.uint64)
        levels = popcount_array(values)
        return np.bincount(levels, minlength=self._d + 1)

    def class_census(self) -> np.ndarray:
        """``census[i]`` = ``|C_i|`` (vectorized; checks Property 5)."""
        values = np.arange(self._n, dtype=np.uint64)
        classes = msb_position_array(values)
        return np.bincount(classes, minlength=self._d + 1)

    def node_levels(self) -> np.ndarray:
        """Vector of levels for every node id ``0 .. n-1``."""
        return popcount_array(np.arange(self._n, dtype=np.uint64))

    def node_classes(self) -> np.ndarray:
        """Vector of class indices for every node id ``0 .. n-1``."""
        return msb_position_array(np.arange(self._n, dtype=np.uint64))

    # ------------------------------------------------------------------ #
    # subcube helpers (used by the baselines and the examples)
    # ------------------------------------------------------------------ #

    def subcube_nodes(self, fixed_positions: Sequence[int], values: int) -> List[int]:
        """Nodes of the subcube obtained by fixing some positions.

        ``fixed_positions`` is a sequence of 1-based positions, ``values`` a
        bitmask over those positions in the order given (bit ``j`` of
        ``values`` is the value at ``fixed_positions[j]``).
        """
        for p in fixed_positions:
            if not 1 <= p <= self._d:
                raise TopologyError(f"position {p} out of range 1..{self._d}")
        if len(set(fixed_positions)) != len(fixed_positions):
            raise TopologyError("fixed positions must be distinct")
        free = [i for i in range(self._d) if (i + 1) not in set(fixed_positions)]
        base = 0
        for j, p in enumerate(fixed_positions):
            if (values >> j) & 1:
                base |= 1 << (p - 1)
        out = []
        for assignment in range(1 << len(free)):
            node = base
            for j, i in enumerate(free):
                if (assignment >> j) & 1:
                    node |= 1 << i
            out.append(node)
        return sorted(out)
