"""The heap queue :math:`T(d)` of Definition 1, as an abstract rooted tree.

Definition 1 (paper):

* ``T(0)`` is a leaf;
* ``T(1)`` is a node with one child;
* ``T(k)`` is a node with ``k`` children of type ``T(0), ..., T(k-1)``.

This is exactly the binomial tree :math:`B_k`.  The class below builds the
abstract structure recursively (independent of the hypercube) and provides
an isomorphism check against the concrete
:class:`~repro.topology.broadcast_tree.BroadcastTree`, which is the paper's
"very well known" fact that the broadcast spanning tree of a hypercube of
size ``n`` is a heap queue :math:`T(\\log n)`.
"""

from __future__ import annotations

from math import comb
from typing import Dict, Iterator, List, Optional

from repro.errors import TopologyError

__all__ = ["HeapQueue"]


class HeapQueue:
    """Abstract heap queue :math:`T(k)` (binomial tree), built recursively.

    Parameters
    ----------
    order:
        The type ``k`` of the root.  The tree has ``2**k`` nodes.

    Examples
    --------
    >>> t = HeapQueue(3)
    >>> t.size
    8
    >>> [c.order for c in t.children]
    [2, 1, 0]
    >>> t.height()
    3
    """

    __slots__ = ("order", "children")

    def __init__(self, order: int, _build: bool = True) -> None:
        if order < 0:
            raise TopologyError(f"heap queue order must be >= 0, got {order}")
        if order > 24:
            raise TopologyError(f"order {order} would allocate 2**{order} nodes; refusing")
        self.order = order
        #: children in the order ``T(k-1), T(k-2), ..., T(0)`` of Definition 1.
        self.children: List[HeapQueue] = (
            [HeapQueue(i) for i in range(order - 1, -1, -1)] if _build else []
        )

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of nodes: ``2**order``."""
        return 1 << self.order

    def is_leaf(self) -> bool:
        """Whether this node is a leaf, i.e. ``T(0)``."""
        return self.order == 0

    def height(self) -> int:
        """Height of the tree: ``order`` (the deepest leaf is that far)."""
        if not self.children:
            return 0
        return 1 + max(c.height() for c in self.children)

    def count_nodes(self) -> int:
        """Actual node count by traversal (tested against :attr:`size`)."""
        return 1 + sum(c.count_nodes() for c in self.children)

    def count_leaves(self) -> int:
        """Number of leaves: ``2**(order-1)`` for ``order >= 1`` else 1."""
        if not self.children:
            return 1
        return sum(c.count_leaves() for c in self.children)

    def nodes_per_depth(self) -> List[int]:
        """``out[l]`` = number of nodes at depth ``l``; equals ``C(order, l)``.

        Matches the hypercube's level sizes, as the broadcast tree maps
        depth to level.
        """
        out = [0] * (self.order + 1)

        def walk(t: HeapQueue, depth: int) -> None:
            out[depth] += 1
            for c in t.children:
                walk(c, depth + 1)

        walk(self, 0)
        return out

    def type_census_at_depth(self, depth: int) -> Dict[int, int]:
        """Number of nodes of each type at ``depth`` (abstract Property 1)."""
        census: Dict[int, int] = {}

        def walk(t: HeapQueue, at: int) -> None:
            if at == depth:
                census[t.order] = census.get(t.order, 0) + 1
                return
            for c in t.children:
                walk(c, at + 1)

        walk(self, 0)
        return census

    def preorder_types(self) -> Iterator[int]:
        """Preorder traversal yielding node types."""
        yield self.order
        for c in self.children:
            yield from c.preorder_types()

    # ------------------------------------------------------------------ #
    # structural checks
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check Definition 1 holds recursively."""
        expected = list(range(self.order - 1, -1, -1))
        got = [c.order for c in self.children]
        if got != expected:
            raise TopologyError(f"T({self.order}) children are {got}, expected {expected}")
        for c in self.children:
            c.validate()

    def isomorphic_to_broadcast_tree(self, tree) -> bool:
        """Whether this heap queue is isomorphic to a ``BroadcastTree``.

        Compares the recursive child-type structure node by node (the
        broadcast tree lists children largest-subtree-first, matching
        Definition 1's ``T(k-1) .. T(0)`` order).
        """
        from repro.topology.broadcast_tree import BroadcastTree

        if not isinstance(tree, BroadcastTree):
            raise TopologyError("expected a BroadcastTree")

        def match(hq: HeapQueue, node: int) -> bool:
            if hq.order != tree.node_type(node):
                return False
            kids = tree.children(node)
            if len(kids) != len(hq.children):
                return False
            return all(match(hc, kn) for hc, kn in zip(hq.children, kids))

        return match(self, tree.root)

    # ------------------------------------------------------------------ #

    @staticmethod
    def expected_depth_census(order: int, depth: int) -> int:
        """``C(order, depth)`` — closed form for :meth:`nodes_per_depth`."""
        if not 0 <= depth <= order:
            return 0
        return comb(order, depth)

    def __repr__(self) -> str:
        return f"HeapQueue(order={self.order})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeapQueue):
            return NotImplemented
        return self.order == other.order  # structure is determined by order

    def __hash__(self) -> int:
        return hash(("HeapQueue", self.order))

    def find_child(self, order: int) -> Optional["HeapQueue"]:
        """The unique child of the given type, or ``None``."""
        for c in self.children:
            if c.order == order:
                return c
        return None
