"""Hypercube structure utilities: walks, decompositions, distances.

Companion facts about the interconnection topology the paper targets,
used by the examples and the extended tests:

* Gray-code Hamiltonian cycles (every hypercube ``d >= 2`` has one),
* recursive subcube decompositions ``H_d = H_{d-1} x K_2``,
* the distance distribution from any node (binomial),
* antipodes and diameter,
* matchings between adjacent levels (used implicitly by the level-sweep
  argument: level ``l`` saturates into level ``l+1`` when ``l < d/2``).
"""

from __future__ import annotations

from math import comb
from typing import Dict, List, Tuple

from repro._bitops import gray_code
from repro.errors import TopologyError
from repro.topology.hypercube import Hypercube

__all__ = [
    "hamiltonian_cycle",
    "split_subcubes",
    "distance_distribution",
    "antipode",
    "diameter",
    "level_matching",
]


def hamiltonian_cycle(h: Hypercube) -> List[int]:
    """A Hamiltonian cycle of ``H_d`` (``d >= 2``) via binary reflected Gray
    codes: consecutive entries (and last-to-first) differ in one bit.

    >>> hamiltonian_cycle(Hypercube(2))
    [0, 1, 3, 2]
    """
    if h.d < 2:
        raise TopologyError(f"H_{h.d} has no Hamiltonian cycle")
    return [gray_code(i) for i in range(h.n)]


def split_subcubes(h: Hypercube, position: int) -> Tuple[List[int], List[int]]:
    """Split ``H_d`` into two ``H_{d-1}``'s along ``position`` (1-based).

    Returns ``(zero_side, one_side)``; every cross edge flips exactly that
    position.  This is the recursive structure underlying the broadcast
    tree (the subtree of child ``1 << (position-1)`` lives in the one-side).
    """
    if not 1 <= position <= h.d:
        raise TopologyError(f"position must be in 1..{h.d}")
    bit = 1 << (position - 1)
    zero = [x for x in h.nodes() if not x & bit]
    one = [x for x in h.nodes() if x & bit]
    return zero, one


def distance_distribution(h: Hypercube, node: int) -> Dict[int, int]:
    """``{distance: count}`` from ``node``: binomial, ``C(d, k)`` at k.

    Identical from every node (vertex transitivity), which is why the
    paper may fix the homebase at ``00...0`` without loss of generality.
    """
    h.check_node(node)
    out: Dict[int, int] = {}
    for other in h.nodes():
        k = h.distance(node, other)
        out[k] = out.get(k, 0) + 1
    return out


def antipode(h: Hypercube, node: int) -> int:
    """The unique node at maximal distance ``d``: all bits flipped."""
    h.check_node(node)
    return node ^ (h.n - 1)


def diameter(h: Hypercube) -> int:
    """The hypercube's diameter: ``d``."""
    return h.d


def level_matching(h: Hypercube, level: int) -> Dict[int, int]:
    """A perfect matching of level ``level`` into level ``level + 1``.

    Exists exactly when ``C(d, level) <= C(d, level + 1)``, i.e.
    ``level < d/2`` (the middle-levels bipartite graph satisfies Hall's
    condition — the normalized matching property of the Boolean lattice).
    Computed by Hopcroft–Karp via networkx.  Illustrates why a level's
    guards can always advance, the CLEAN correctness intuition.
    """
    if not 0 <= level < h.d:
        raise TopologyError(f"level must be in 0..{h.d - 1}")
    if comb(h.d, level) > comb(h.d, level + 1):
        raise TopologyError(
            f"level {level} of H_{h.d} is larger than level {level + 1}; "
            "no injective advance exists"
        )
    import networkx as nx

    lower = h.level_nodes(level)
    upper = set(h.level_nodes(level + 1))
    bipartite = nx.Graph()
    bipartite.add_nodes_from(lower, bipartite=0)
    bipartite.add_nodes_from(upper, bipartite=1)
    for x in lower:
        for y in h.neighbors(x):
            if y in upper:
                bipartite.add_edge(x, y)
    pairing = nx.bipartite.maximum_matching(bipartite, top_nodes=lower)
    matching = {x: pairing[x] for x in lower if x in pairing}
    if len(matching) != len(lower):
        raise TopologyError("internal error: Hall's condition violated?")
    return matching
