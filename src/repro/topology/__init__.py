"""Topology substrate: the hypercube, its broadcast tree, and heap queues.

This subpackage implements everything from Section 2 ("Definitions and
Terminology") and the structural properties of Sections 3.1 and 4.1 of the
paper:

* :class:`~repro.topology.hypercube.Hypercube` — the ``d``-dimensional
  hypercube with the paper's 1-based port labelling ``λ``, levels
  (popcount), ``m(x)`` (most significant bit), classes :math:`C_i`, and
  smaller/bigger neighbour classification (Definition 2).
* :class:`~repro.topology.broadcast_tree.BroadcastTree` — the breadth-first
  broadcast spanning tree rooted at ``00...0`` whose shape is the heap
  queue :math:`T(d)` (Definition 1).
* :mod:`~repro.topology.heap_queue` — the abstract recursive heap-queue
  structure and the isomorphism with the broadcast tree.
* :mod:`~repro.topology.properties` — Properties 1, 2, 5, 6, 7 and 8 as
  executable, testable predicates.
* :mod:`~repro.topology.generic` — adapters to ``networkx`` and generic
  graphs used by the baseline searchers.
"""

from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.generic import (
    GraphAdapter,
    cube_connected_cycles,
    folded_hypercube,
    grid_graph,
    hypercube_graph,
    path_graph,
    ring_graph,
    star_graph,
    tree_graph,
)
from repro.topology.heap_queue import HeapQueue
from repro.topology.hypercube import Hypercube

__all__ = [
    "Hypercube",
    "BroadcastTree",
    "HeapQueue",
    "GraphAdapter",
    "hypercube_graph",
    "ring_graph",
    "path_graph",
    "star_graph",
    "tree_graph",
    "grid_graph",
    "folded_hypercube",
    "cube_connected_cycles",
]
