"""Generic graph adapters used by the baseline searchers and examples.

The paper's strategies are hypercube-specific, but the *problem* —
contiguous monotone node search — is defined on arbitrary graphs, and the
baselines in :mod:`repro.search` (brute-force optimal, tree search) operate
on generic graphs.  :class:`GraphAdapter` gives them a minimal uniform
interface (nodes as ``0..n-1`` ints, adjacency lists) and the module ships
constructors for the standard families used in the ablation benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import InvalidNodeError, TopologyError

__all__ = [
    "GraphAdapter",
    "hypercube_graph",
    "ring_graph",
    "path_graph",
    "star_graph",
    "tree_graph",
    "grid_graph",
    "complete_graph",
    "from_networkx",
]


class GraphAdapter:
    """A small immutable undirected graph with integer nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs; duplicates and self-loops rejected.
    name:
        Optional display name.
    """

    __slots__ = ("_n", "_adj", "_edges", "_nbr_masks", "name")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]], name: str = "G") -> None:
        if n < 1:
            raise TopologyError(f"graph needs at least one node, got n={n}")
        self._n = n
        adj: List[List[int]] = [[] for _ in range(n)]
        seen = set()
        edge_list: List[Tuple[int, int]] = []
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidNodeError(u if not 0 <= u < n else v, n)
            if u == v:
                raise TopologyError(f"self-loop at {u}")
            key = (min(u, v), max(u, v))
            if key in seen:
                raise TopologyError(f"duplicate edge {key}")
            seen.add(key)
            adj[u].append(v)
            adj[v].append(u)
            edge_list.append(key)
        self._adj = tuple(tuple(sorted(nbrs)) for nbrs in adj)
        self._edges = sorted(edge_list)
        self._nbr_masks: Tuple[int, ...] = ()
        self.name = name

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def nodes(self) -> range:
        """Node ids ``0..n-1``."""
        return range(self._n)

    def edges(self) -> List[Tuple[int, int]]:
        """Sorted edge list as ``(low, high)`` pairs."""
        return list(self._edges)

    def neighbors(self, node: int) -> List[int]:
        """Sorted adjacency list of ``node``."""
        if not 0 <= node < self._n:
            raise InvalidNodeError(node, self._n)
        return list(self._adj[node])

    def neighbor_mask(self, node: int) -> int:
        """Bitmask of the neighbours of ``node`` (bit ``y`` set iff ``y``
        is adjacent); the whole table is built once on first use so the
        simulation hot path never rebuilds adjacency structures."""
        if not self._nbr_masks:
            self._nbr_masks = tuple(
                sum(1 << y for y in nbrs) for nbrs in self._adj
            )
        if not 0 <= node < self._n:
            raise InvalidNodeError(node, self._n)
        return self._nbr_masks[node]

    @property
    def full_mask(self) -> int:
        """Bitmask with every node's bit set (the whole node set)."""
        return (1 << self._n) - 1

    def spread_mask(self, mask: int) -> int:
        """One-step neighbourhood of a node set given as a bitmask: the
        union of the neighbour masks of every node in ``mask``."""
        out = 0
        while mask:
            low = mask & -mask
            out |= self.neighbor_mask(low.bit_length() - 1)
            mask ^= low
        return out

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self.neighbors(node))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        if not 0 <= u < self._n:
            raise InvalidNodeError(u, self._n)
        return v in self._adj[u]

    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from node 0)."""
        seen = {0}
        frontier = [0]
        while frontier:
            x = frontier.pop()
            for y in self._adj[x]:
                if y not in seen:
                    seen.add(y)
                    frontier.append(y)
        return len(seen) == self._n

    def is_tree(self) -> bool:
        """Whether the graph is a tree (connected, ``n-1`` edges)."""
        return len(self._edges) == self._n - 1 and self.is_connected()

    def to_networkx(self):
        """Export as :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self._edges)
        return g

    def __repr__(self) -> str:
        return f"GraphAdapter(n={self._n}, m={len(self._edges)}, name={self.name!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphAdapter):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, tuple(self._edges)))


# ---------------------------------------------------------------------- #
# constructors
# ---------------------------------------------------------------------- #


def hypercube_graph(dimension: int) -> GraphAdapter:
    """The hypercube :math:`H_d` as a generic graph (for the baselines)."""
    from repro.topology.hypercube import Hypercube

    h = Hypercube(dimension)
    return GraphAdapter(h.n, h.edges(), name=f"H_{dimension}")


def ring_graph(n: int) -> GraphAdapter:
    """A cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise TopologyError(f"ring needs n >= 3, got {n}")
    return GraphAdapter(n, [(i, (i + 1) % n) for i in range(n)], name=f"ring_{n}")


def path_graph(n: int) -> GraphAdapter:
    """A path on ``n`` nodes."""
    return GraphAdapter(n, [(i, i + 1) for i in range(n - 1)], name=f"path_{n}")


def star_graph(leaves: int) -> GraphAdapter:
    """A star: centre node 0 and ``leaves`` leaves."""
    if leaves < 1:
        raise TopologyError(f"star needs >= 1 leaf, got {leaves}")
    return GraphAdapter(leaves + 1, [(0, i) for i in range(1, leaves + 1)], name=f"star_{leaves}")


def tree_graph(parents: Sequence[int]) -> GraphAdapter:
    """A rooted tree from a parent array.

    ``parents[i]`` is the parent of node ``i + 1`` (node 0 is the root), so
    a tree on ``n`` nodes takes a length ``n - 1`` array.
    """
    n = len(parents) + 1
    edges = []
    for i, p in enumerate(parents):
        child = i + 1
        if not 0 <= p < child:
            raise TopologyError(f"parent of node {child} must be a smaller id, got {p}")
        edges.append((p, child))
    return GraphAdapter(n, edges, name=f"tree_{n}")


def grid_graph(rows: int, cols: int) -> GraphAdapter:
    """A ``rows x cols`` grid (mesh)."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs rows, cols >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((i, i + 1))
            if r + 1 < rows:
                edges.append((i, i + cols))
    return GraphAdapter(rows * cols, edges, name=f"grid_{rows}x{cols}")


def complete_graph(n: int) -> GraphAdapter:
    """The complete graph :math:`K_n`."""
    return GraphAdapter(n, [(i, j) for i in range(n) for j in range(i + 1, n)], name=f"K_{n}")


def folded_hypercube(dimension: int) -> GraphAdapter:
    """The folded hypercube ``FQ_d``: ``H_d`` plus all antipodal edges.

    A classic interconnection network (diameter ``⌈d/2⌉``); the extra
    chords make the sweep baselines work harder — every node gains a
    neighbour on the far side of the cube.
    """
    from repro.topology.hypercube import Hypercube

    h = Hypercube(dimension)
    edges = list(h.edges())
    mask = h.n - 1
    for x in h.nodes():
        y = x ^ mask
        if x < y:
            edges.append((x, y))
    return GraphAdapter(h.n, edges, name=f"FQ_{dimension}")


def cube_connected_cycles(dimension: int) -> GraphAdapter:
    """The cube-connected cycles network ``CCC_d`` (``d >= 3``).

    Each hypercube node is replaced by a ``d``-cycle of degree-3 nodes;
    node ``(x, i)`` (encoded ``x * d + i``) links to its cycle neighbours
    and across hypercube dimension ``i``.  A bounded-degree relative of
    the hypercube — good exercise for the generic sweeps.
    """
    from repro.topology.hypercube import Hypercube

    if dimension < 3:
        raise TopologyError(f"CCC needs dimension >= 3, got {dimension}")
    h = Hypercube(dimension)
    d = dimension

    def encode(x: int, i: int) -> int:
        return x * d + i

    edges = []
    for x in h.nodes():
        for i in range(d):
            edges.append((encode(x, i), encode(x, (i + 1) % d)))  # cycle
            y = x ^ (1 << i)
            if x < y:
                edges.append((encode(x, i), encode(y, i)))  # hypercube rung
    return GraphAdapter(h.n * d, edges, name=f"CCC_{dimension}")


def from_networkx(graph) -> GraphAdapter:
    """Convert a :class:`networkx.Graph`; nodes are relabelled ``0..n-1``.

    Returns the adapter; the relabelling is by sorted node order.
    """
    nodes = sorted(graph.nodes())
    index: Dict[object, int] = {v: i for i, v in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return GraphAdapter(len(nodes), edges, name=str(graph.name or "G"))
