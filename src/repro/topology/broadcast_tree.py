"""The broadcast spanning tree of the hypercube (Section 2, Figure 1).

The broadcast tree is the breadth-first spanning tree of :math:`H_d` rooted
at the homebase ``00...0`` in which node ``x`` is connected to every node of
the next level that differs from ``x`` in a position *higher* than ``m(x)``
(the most significant bit of ``x``).  Equivalently: the parent of a nonzero
node is obtained by clearing its most significant bit, and the children of
``x`` are its *bigger neighbours* (Definition 2).

The tree is the optimal-broadcast tree of the hypercube ("a node receiving a
message from dimension ``i`` forwards it to all nodes connected by dimension
``j > i``") and its shape is the heap queue :math:`T(d)` of Definition 1 —
a.k.a. the binomial tree :math:`B_d`.

Node *types*: a node with ``k`` children is said to be of type ``T(k)``.
With bitmask nodes, ``type(x) = d - m(x)`` (and the root is ``T(d)``), so
the leaves — type ``T(0)`` — are exactly the nodes whose most significant
bit is in position ``d``, i.e. class :math:`C_d` (Property 6).
"""

from __future__ import annotations

from math import comb
from typing import Dict, Iterator, List

from repro._bitops import iter_set_bits, msb_position, popcount
from repro.errors import TopologyError
from repro.topology.hypercube import Hypercube

__all__ = ["BroadcastTree"]


class BroadcastTree:
    """The broadcast (heap-queue) spanning tree of a hypercube.

    Parameters
    ----------
    hypercube:
        The underlying :class:`~repro.topology.hypercube.Hypercube`, or an
        ``int`` dimension as a convenience.

    Examples
    --------
    >>> t = BroadcastTree(Hypercube(3))
    >>> t.children(0)            # the root has d children
    [1, 2, 4]
    >>> t.parent(0b101)          # clear the most significant bit
    1
    >>> t.node_type(0)           # the root is T(d)
    3
    >>> t.is_leaf(0b100)
    True
    """

    __slots__ = ("_h",)

    def __init__(self, hypercube: Hypercube | int) -> None:
        if isinstance(hypercube, int):
            hypercube = Hypercube(hypercube)
        if not isinstance(hypercube, Hypercube):
            raise TopologyError(f"expected Hypercube or int, got {type(hypercube).__name__}")
        self._h = hypercube

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #

    @property
    def hypercube(self) -> Hypercube:
        """The underlying hypercube."""
        return self._h

    @property
    def root(self) -> int:
        """The root / homebase, ``00...0``."""
        return 0

    @property
    def dimension(self) -> int:
        """The hypercube degree ``d``; the root's type is ``T(d)``."""
        return self._h.d

    @property
    def n(self) -> int:
        """Number of nodes, ``2**d``."""
        return self._h.n

    def __repr__(self) -> str:
        return f"BroadcastTree(Hypercube(dimension={self._h.d}))"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BroadcastTree) and other._h == self._h

    def __hash__(self) -> int:
        return hash(("BroadcastTree", self._h.d))

    # ------------------------------------------------------------------ #
    # parent / children
    # ------------------------------------------------------------------ #

    def parent(self, node: int) -> int:
        """The tree parent: ``node`` with its most significant bit cleared.

        Raises for the root, which has no parent.
        """
        self._h.check_node(node)
        if node == 0:
            raise TopologyError("the root has no parent")
        return node ^ (1 << (node.bit_length() - 1))

    def children(self, node: int) -> List[int]:
        """Children of ``node`` = its bigger neighbours, in increasing order.

        A child obtained by setting position ``j > m(x)`` is the root of a
        subtree of type ``T(d - j)``; the first child in the returned list
        is therefore the largest subtree, matching the ``T(k-1) .. T(0)``
        enumeration of Definition 1.
        """
        return self._h.bigger_neighbors(node)

    def child_types(self, node: int) -> List[int]:
        """Types ``k`` of each child of ``node``, aligned with :meth:`children`.

        For a node of type ``T(k)`` this is ``[k-1, k-2, ..., 0]``.
        """
        return [self._h.d - c.bit_length() for c in self.children(node)]

    def node_type(self, node: int) -> int:
        """The heap-queue type: ``T(k)`` where ``k`` = number of children.

        ``type(x) = d - m(x)``; the root is ``T(d)`` and leaves are ``T(0)``.
        """
        self._h.check_node(node)
        return self._h.d - msb_position(node)

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf of the tree (type ``T(0)``)."""
        return self.node_type(node) == 0

    def leaves(self) -> List[int]:
        """All ``2**(d-1)`` leaves (class :math:`C_d`, Property 6)."""
        if self._h.d == 0:
            return [0]
        return self._h.class_members(self._h.d)

    def depth(self, node: int) -> int:
        """Tree depth of ``node`` = its hypercube level (popcount)."""
        self._h.check_node(node)
        return popcount(node)

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the subtree rooted at ``node``: ``2**type``.

        A heap queue :math:`T(k)` has exactly ``2**k`` nodes.
        """
        return 1 << self.node_type(node)

    def subtree_nodes(self, node: int) -> List[int]:
        """All nodes of the subtree rooted at ``node`` (preorder)."""
        out: List[int] = []
        stack = [node]
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(reversed(self.children(x)))
        return out

    # ------------------------------------------------------------------ #
    # paths and traversal
    # ------------------------------------------------------------------ #

    def path_from_root(self, node: int) -> List[int]:
        """The tree path root -> ``node`` (bits set lowest-first)."""
        return self._h.tree_path_down(node)

    def path_to_root(self, node: int) -> List[int]:
        """The tree path ``node`` -> root (bits cleared highest-first)."""
        return list(reversed(self.path_from_root(node)))

    def edges(self) -> Iterator[tuple[int, int]]:
        """All ``n - 1`` tree edges as ``(parent, child)`` pairs."""
        for x in range(1, self._h.n):
            yield (self.parent(x), x)

    def preorder(self) -> Iterator[int]:
        """Preorder traversal from the root, children in increasing order."""
        stack = [self.root]
        while stack:
            x = stack.pop()
            yield x
            stack.extend(reversed(self.children(x)))

    def bfs_order(self) -> Iterator[int]:
        """Level-by-level traversal, increasing integer order within level."""
        for level in range(self._h.d + 1):
            yield from self._h.level_nodes(level)

    # ------------------------------------------------------------------ #
    # censuses (Properties 1 and 2)
    # ------------------------------------------------------------------ #

    def type_census(self, level: int) -> Dict[int, int]:
        """Number of nodes of each type ``T(k)`` at ``level`` (Property 1).

        Property 1: at level 0 there is a unique node of type ``T(d)``; at
        level ``l > 0`` there are ``C(d - k - 1, l - 1)`` nodes of type
        ``T(k)`` for ``0 <= k <= d - l``.
        """
        d = self._h.d
        if not 0 <= level <= d:
            raise TopologyError(f"level must be in 0..{d}, got {level}")
        census: Dict[int, int] = {}
        for x in self._h.level_nodes(level):
            k = self.node_type(x)
            census[k] = census.get(k, 0) + 1
        return census

    def type_census_formula(self, level: int) -> Dict[int, int]:
        """Closed-form of :meth:`type_census` from Property 1."""
        d = self._h.d
        if level == 0:
            return {d: 1}
        out = {}
        for k in range(0, d - level + 1):
            count = comb(d - k - 1, level - 1)
            if count:
                out[k] = count
        return out

    def leaf_count_at_level(self, level: int) -> int:
        """Number of leaves at ``level``: ``C(d-1, level-1)`` (Property 2)."""
        d = self._h.d
        if not 0 <= level <= d:
            raise TopologyError(f"level must be in 0..{d}, got {level}")
        if level == 0:
            return 1 if d == 0 else 0
        return comb(d - 1, level - 1)

    # ------------------------------------------------------------------ #
    # validation / export
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Exhaustively validate the tree invariants (test helper).

        Checks: unique parent for every nonzero node, parent at the previous
        level, children == bigger neighbours, type counts match Property 1,
        every edge is a hypercube edge with label ``> m(parent)``.
        """
        h = self._h
        for x in range(1, h.n):
            p = self.parent(x)
            if popcount(p) != popcount(x) - 1:
                raise TopologyError(f"parent of {x} not one level up")
            if not h.has_edge(p, x):
                raise TopologyError(f"tree edge ({p}, {x}) not a hypercube edge")
            if h.edge_label(p, x) <= h.msb(p):
                raise TopologyError(f"tree edge ({p}, {x}) is not a bigger-neighbour edge")
            if x not in self.children(p):
                raise TopologyError(f"{x} missing from children of its parent {p}")
        for level in range(h.d + 1):
            if self.type_census(level) != self.type_census_formula(level):
                raise TopologyError(f"Property 1 violated at level {level}")

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (edges parent -> child)."""
        import networkx as nx

        g = nx.DiGraph(name=f"T({self._h.d})")
        g.add_nodes_from(self._h.nodes())
        for p, c in self.edges():
            g.add_edge(p, c, label=self._h.edge_label(p, c))
        return g

    def ancestors(self, node: int) -> List[int]:
        """Proper ancestors of ``node``, nearest first (empty for root)."""
        out = []
        x = node
        while x:
            x = self.parent(x)
            out.append(x)
        return out

    def is_ancestor(self, anc: int, node: int) -> bool:
        """Whether ``anc`` is an ancestor of ``node`` (or equal to it).

        In bitmask terms: ``anc`` is the prefix of ``node``'s set bits, i.e.
        ``anc``'s bits are the lowest set bits of ``node``.
        """
        self._h.check_node(anc)
        self._h.check_node(node)
        if anc & ~node:
            return False
        # anc must consist of the lowest popcount(anc) set bits of node.
        bits = list(iter_set_bits(node))
        prefix = 0
        for i in bits[: popcount(anc)]:
            prefix |= 1 << i
        return prefix == anc
