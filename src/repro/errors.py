"""Exception hierarchy for the ``repro`` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Verification failures carry structured context (which
node, which step) because they are the primary debugging artifact when a
strategy or protocol violates the paper's invariants.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "InvalidNodeError",
    "ScheduleError",
    "VerificationError",
    "RecontaminationError",
    "ContiguityError",
    "IncompleteCleaningError",
    "SimulationError",
    "DeadlockError",
    "WhiteboardError",
    "AgentError",
    "CapacityError",
    "ExecutionError",
    "CheckpointError",
    "CompiledScheduleError",
    "ScheduleCacheError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """A topology object was constructed or used inconsistently."""


class InvalidNodeError(TopologyError):
    """A node identifier is outside the graph it was used with."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} not in graph of size {n}")
        self.node = node
        self.n = n


class ScheduleError(ReproError):
    """A schedule is malformed (non-adjacent move, unknown agent, ...)."""


class VerificationError(ReproError):
    """A schedule or simulation violated one of the paper's invariants."""

    def __init__(self, message: str, *, step: int | None = None, node: int | None = None) -> None:
        context = []
        if step is not None:
            context.append(f"step={step}")
        if node is not None:
            context.append(f"node={node}")
        suffix = f" ({', '.join(context)})" if context else ""
        super().__init__(message + suffix)
        self.step = step
        self.node = node


class RecontaminationError(VerificationError):
    """Monotonicity violated: a clean node became contaminated again."""


class ContiguityError(VerificationError):
    """The set of clean/guarded nodes stopped being connected."""


class IncompleteCleaningError(VerificationError):
    """The strategy terminated while contaminated nodes remain."""


class SimulationError(ReproError):
    """The discrete-event engine hit an unrecoverable condition."""


class DeadlockError(SimulationError):
    """No agent can make progress and the network is not clean."""


class WhiteboardError(SimulationError):
    """Illegal whiteboard access (wrong node, capacity overflow, ...)."""


class AgentError(SimulationError):
    """An agent behaviour yielded an invalid action."""


class CapacityError(ReproError):
    """A resource bound (agents, memory bits) was exceeded."""


class ExecutionError(ReproError):
    """The parallel job executor was misused or misconfigured."""


class CheckpointError(ExecutionError):
    """An executor checkpoint file is unreadable or inconsistent."""


class CompiledScheduleError(ReproError):
    """A compiled-schedule byte blob is malformed, truncated or corrupt.

    Raised by :meth:`repro.fastpath.CompiledSchedule.from_bytes` on any
    format-level problem (bad magic, unsupported version, length mismatch,
    checksum failure).  The schedule cache treats this as "entry missing"
    and regenerates — it never propagates to callers.
    """


class ScheduleCacheError(ReproError):
    """The schedule cache was misused (unwritable root, bad fingerprint)."""
