"""repro — reproduction of *Contiguous Search in the Hypercube for
Capturing an Intruder* (Flocchini, Huang, Luccio; IPPS 2005).

A team of asynchronous software agents, starting from one homebase, must
decontaminate a hypercube network so that an arbitrarily fast, omniscient
intruder can never re-enter cleaned territory.  This package implements the
paper's two strategies (the coordinated ``CLEAN`` and the local
``CLEAN WITH VISIBILITY``), its two Section 5 variants (cloning,
synchronous), the full substrate they run on (hypercube topology, broadcast
tree, whiteboards, an asynchronous discrete-event agent engine, exact
contamination dynamics and intruder), the closed-form complexity results,
verification of the contiguous/monotone/capture invariants, and baselines
for comparison.

Quickstart
----------
>>> from repro import Hypercube, get_strategy, verify_schedule
>>> schedule = get_strategy("visibility").run(dimension=4)
>>> report = verify_schedule(schedule)
>>> report.ok
True
>>> (schedule.team_size, schedule.total_moves, schedule.makespan)
(8, 20, 4)
"""

from repro.analysis import formulas
from repro.analysis.verify import ScheduleVerifier, VerificationReport, verify_schedule
from repro.core import (
    CleanStrategy,
    CloningStrategy,
    Move,
    MoveKind,
    Schedule,
    Strategy,
    StrategyMetrics,
    SynchronousStrategy,
    VisibilityStrategy,
    available_strategies,
    compute_metrics,
    get_strategy,
)
from repro.core.states import AgentRole, NodeState
from repro.errors import ReproError
from repro.sim import (
    AdversarialSlowestDelay,
    ContaminationMap,
    Engine,
    RandomDelay,
    SimResult,
    UnitDelay,
)
from repro.topology import BroadcastTree, HeapQueue, Hypercube

__version__ = "1.0.0"
__paper__ = (
    "Flocchini, Huang, Luccio — Contiguous Search in the Hypercube for "
    "Capturing an Intruder (IPPS 2005)"
)

__all__ = [
    "Hypercube",
    "BroadcastTree",
    "HeapQueue",
    "NodeState",
    "AgentRole",
    "Move",
    "MoveKind",
    "Schedule",
    "Strategy",
    "get_strategy",
    "available_strategies",
    "CleanStrategy",
    "VisibilityStrategy",
    "CloningStrategy",
    "SynchronousStrategy",
    "StrategyMetrics",
    "compute_metrics",
    "ScheduleVerifier",
    "VerificationReport",
    "verify_schedule",
    "ContaminationMap",
    "Engine",
    "SimResult",
    "UnitDelay",
    "RandomDelay",
    "AdversarialSlowestDelay",
    "formulas",
    "ReproError",
    "__version__",
    "__paper__",
]
