"""Command-line interface: ``repro-search``.

Subcommands::

    repro-search run -d 4 -s visibility          # generate + verify + metrics
    repro-search table -d 2 4 6 8                # the T1 comparison table
    repro-search figure fig1 -d 6                # re-render a paper figure
    repro-search simulate -d 4 -p clean --seed 3 # async protocol on the engine
    repro-search formulas -d 6                   # every closed form at one d
    repro-search lint --self                     # whole-program static analysis
    repro-search report -d 8 -p clean            # metrics snapshot + sparklines
    repro-search watch -d 4 -p visibility        # stream engine events as JSONL
    repro-search montecarlo -d 8 --trials 5000   # scenario-batch Monte Carlo
    repro-search trace .repro-trace              # render a RunLog span tree
    repro-search metrics --runlog run.jsonl      # Prometheus text exposition

The CLI is a thin veneer over the library; every command routes through
the same public API the examples and benches use.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import formulas
from repro.analysis.verify import verify_schedule
from repro.core.metrics import compute_metrics
from repro.core.strategy import available_strategies, get_strategy
from repro.topology.hypercube import Hypercube

__all__ = ["main", "build_parser"]

#: Default RunLog directory for ``--trace`` and the ``trace`` subcommand.
DEFAULT_TRACE_DIR = ".repro-trace"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the CLI tests)."""
    from repro.lint.cli import add_lint_arguments

    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Contiguous search in the hypercube (IPPS 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="generate, verify and measure one strategy")
    run.add_argument("-d", "--dimension", type=int, required=True)
    run.add_argument(
        "-s", "--strategy", default="visibility", choices=available_strategies()
    )
    run.add_argument("--show-order", action="store_true", help="print the cleaning order")
    run.add_argument("--watch", action="store_true", help="print one frame per time unit")
    run.add_argument("--homebase", type=int, default=0, help="start node (via XOR automorphism)")
    run.add_argument("--save", metavar="FILE", default=None, help="write the schedule as JSON")

    table = sub.add_parser("table", help="T1 comparison table across dimensions")
    table.add_argument("-d", "--dimensions", type=int, nargs="+", default=[2, 4, 6, 8])

    figure = sub.add_parser("figure", help="re-render a paper figure")
    figure.add_argument(
        "which", choices=["fig1", "fig2", "fig3", "fig4", "profile", "scoreboard"]
    )
    figure.add_argument("-d", "--dimension", type=int, default=None)

    simulate = sub.add_parser("simulate", help="run a protocol on the async engine")
    simulate.add_argument("-d", "--dimension", type=int, required=True)
    simulate.add_argument(
        "-p",
        "--protocol",
        default="visibility",
        choices=["clean", "visibility", "cloning", "synchronous"],
    )
    simulate.add_argument("--delays", default="unit", choices=["unit", "random"])
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--walker-intruder", action="store_true")

    forms = sub.add_parser("formulas", help="print every closed form for one d")
    forms.add_argument("-d", "--dimension", type=int, required=True)

    verify = sub.add_parser("verify", help="verify a schedule JSON file")
    verify.add_argument("file", help="path to a schedule written with --save")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper artifact (figure/table/theorem)"
    )
    experiment.add_argument(
        "id", nargs="?", default=None, help="experiment id (e.g. E4); omit for all"
    )
    _add_executor_flags(experiment)
    _add_cache_flags(experiment)
    _add_trace_flag(experiment)

    lint = sub.add_parser(
        "lint",
        help="static determinism/concurrency/model-compliance analysis",
    )
    add_lint_arguments(lint)  # same flags and exit codes as `repro-lint`

    report = sub.add_parser(
        "report", help="run a protocol with live metrics and render the snapshot"
    )
    report.add_argument("-d", "--dimension", type=int, required=True)
    report.add_argument(
        "-p",
        "--protocol",
        default="clean",
        choices=["clean", "visibility", "cloning", "synchronous"],
    )
    report.add_argument("--delays", default="unit", choices=["unit", "random"])
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--probes",
        default="lenient",
        choices=["off", "lenient", "strict"],
        help="attach the standard invariant probes (default: lenient)",
    )
    report.add_argument(
        "--json", metavar="FILE", default=None, help="also write the snapshot as JSON"
    )

    watch = sub.add_parser(
        "watch", help="stream engine events as JSONL (manifest as final record)"
    )
    watch.add_argument("-d", "--dimension", type=int, required=True)
    watch.add_argument(
        "-p",
        "--protocol",
        default="visibility",
        choices=["clean", "visibility", "cloning", "synchronous"],
    )
    watch.add_argument("--delays", default="unit", choices=["unit", "random"])
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument(
        "-o", "--output", metavar="FILE", default=None, help="write JSONL here instead of stdout"
    )
    watch.add_argument(
        "--masks", action="store_true", help="include hex state masks in move records"
    )
    watch.add_argument(
        "--kinds", nargs="+", default=None, help="only stream these event kinds"
    )

    sweep = sub.add_parser("sweep", help="measure strategies across dimensions")
    sweep.add_argument("-d", "--dimensions", type=int, nargs="+", default=[2, 4, 6, 8])
    sweep.add_argument(
        "-s", "--strategies", nargs="+", default=["clean", "visibility", "cloning"]
    )
    sweep.add_argument("--csv", metavar="FILE", default=None, help="also write CSV")
    stream_group = sweep.add_mutually_exclusive_group()
    stream_group.add_argument(
        "--stream",
        dest="stream",
        action="store_true",
        default=None,
        help="force the bounded-memory chunk pipeline for every cell "
        "(default: stream automatically at d >= 16)",
    )
    stream_group.add_argument(
        "--no-stream",
        dest="stream",
        action="store_false",
        help="force full materialization even at high dimensions",
    )
    sweep.add_argument(
        "--chunk-moves",
        type=int,
        default=None,
        metavar="N",
        help="moves per chunk on the streaming pipeline (default: 65536)",
    )
    sweep.add_argument(
        "--backend",
        choices=["auto", "numpy", "pure"],
        default=None,
        help="kernel backend for the columnar verifier "
        "(default: $REPRO_KERNEL_BACKEND, else auto)",
    )
    _add_executor_flags(sweep)
    _add_cache_flags(sweep)
    _add_trace_flag(sweep)

    montecarlo = sub.add_parser(
        "montecarlo",
        help="scenario-batch Monte Carlo over intruder/delay/homebase scenarios",
    )
    montecarlo.add_argument("-d", "--dimension", type=int, default=6)
    montecarlo.add_argument("-s", "--strategy", default="visibility")
    montecarlo.add_argument("--trials", type=int, default=1000)
    montecarlo.add_argument(
        "--intruder",
        choices=["reachable", "inert", "walker", "walkers"],
        default="inert",
        help="intruder policy scored against the sweep (default: inert)",
    )
    montecarlo.add_argument(
        "--seeds-per-trial",
        type=int,
        default=1,
        help="infection seeds per trial (inert policy only)",
    )
    montecarlo.add_argument(
        "--intruder-count", type=int, default=2, help="walkers in the 'walkers' policy"
    )
    montecarlo.add_argument(
        "--delays",
        choices=["unit", "random", "adversarial"],
        default="unit",
        help="per-unit edge-delay stretch model (default: unit)",
    )
    montecarlo.add_argument("--delay-low", type=int, default=1)
    montecarlo.add_argument("--delay-high", type=int, default=3)
    montecarlo.add_argument("--delay-factor", type=int, default=4)
    montecarlo.add_argument("--delay-period", type=int, default=4)
    montecarlo.add_argument(
        "--rotate-homebase",
        action="store_true",
        help="draw a random homebase per trial (XOR automorphism)",
    )
    montecarlo.add_argument("--seed", type=int, default=0, help="master RNG seed")
    montecarlo.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trial windows for the parallel path (default: --jobs)",
    )
    montecarlo.add_argument(
        "--json", metavar="FILE", default=None, help="write summary + manifest JSON"
    )
    montecarlo.add_argument(
        "--backend",
        choices=["auto", "numpy", "pure"],
        default=None,
        help="kernel backend for the batch engine "
        "(default: $REPRO_KERNEL_BACKEND, else auto)",
    )
    _add_executor_flags(montecarlo)
    _add_trace_flag(montecarlo)

    trace = sub.add_parser(
        "trace", help="render a RunLog span tree (critical path + top self-time)"
    )
    trace.add_argument(
        "path",
        nargs="?",
        default=None,
        help="runlog .jsonl file or trace directory "
        f"(default: latest run under {DEFAULT_TRACE_DIR})",
    )
    trace.add_argument(
        "--top", type=int, default=5, help="rows in the self-time table (default: 5)"
    )
    trace.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate the rendered tree below this depth",
    )

    metrics = sub.add_parser(
        "metrics", help="export metrics in Prometheus text exposition format"
    )
    metrics.add_argument(
        "--runlog",
        metavar="FILE",
        default=None,
        help="export the last metrics sample stored in a RunLog stream",
    )
    metrics.add_argument(
        "-d", "--dimension", type=int, default=None, help="run a protocol live instead"
    )
    metrics.add_argument(
        "-p",
        "--protocol",
        default="clean",
        choices=["clean", "visibility", "cloning", "synchronous"],
    )
    metrics.add_argument("--delays", default="unit", choices=["unit", "random"])
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="write the exposition here instead of stdout",
    )

    cache = sub.add_parser("cache", help="inspect or clear the schedule cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: $REPRO_SCHEDULE_CACHE or .repro-cache/schedules)",
    )
    return parser


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``repro.exec`` knobs (see docs/EXECUTION.md)."""
    group = parser.add_argument_group("parallel execution")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 runs cells through the fault-tolerant "
        "executor (default: 1, serial in-process)",
    )
    group.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell attempt budget; a timed-out cell is retried, then FAILED",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts after a crash or timeout (default: 2)",
    )
    group.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="checkpoint file: finished cells are reloaded from it and new "
        "ones appended, so an interrupted run restarts only unfinished cells "
        "(a merged manifest is written alongside)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """The shared schedule-cache knobs (see docs/EXECUTION.md)."""
    group = parser.add_argument_group("schedule cache")
    group.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="serve schedules from a content-addressed on-disk cache "
        "(compile+store on miss, deserialize on hit); DIR defaults to "
        "$REPRO_SCHEDULE_CACHE or .repro-cache/schedules",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the schedule cache even if $REPRO_SCHEDULE_CACHE is set",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    """The shared RunLog knob (see docs/OBSERVABILITY.md)."""
    parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="record a RunLog trajectory (spans + merged metrics) for this "
        f"run; DIR defaults to {DEFAULT_TRACE_DIR}",
    )


class _TraceSession:
    """Wires a tracer + registry around one CLI command run.

    Entering installs the tracer as the process-wide active tracer (so
    the serial ``Strategy.run`` / ``Engine.run`` paths pick it up);
    exiting restores the previous tracer and writes the RunLog stream —
    ``begin`` (with the run manifest), every finished span, the merged
    metrics snapshot, and the explicit ``end`` marker.
    """

    def __init__(self, root: str, kind: str) -> None:
        from pathlib import Path

        from repro.obs import MetricsRegistry, RunLog, Tracer, new_run_id

        self.runlog = RunLog(Path(root))
        self.run_id = new_run_id()
        self.tracer = Tracer(run_id=self.run_id)
        self.registry = MetricsRegistry()
        self.kind = kind
        self.path = self.runlog.root / f"{self.run_id}.jsonl"
        self._previous = None

    def __enter__(self) -> "_TraceSession":
        from repro.obs import set_active_tracer

        self._previous = set_active_tracer(self.tracer)
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        from repro.obs import build_manifest, set_active_tracer

        set_active_tracer(self._previous)
        with self.runlog.writer(self.run_id) as writer:
            writer.begin(
                manifest=build_manifest(extra={"command": self.kind}),
                command=self.kind,
            )
            writer.write_spans(self.tracer.to_records())
            writer.write_metrics(self.registry.snapshot())
            writer.end(status="ok" if exc_type is None else "error")


def _trace_session(args: argparse.Namespace, kind: str):
    """A :class:`_TraceSession` when ``--trace`` was given, else ``None``."""
    flag = getattr(args, "trace", None)
    if flag is None:
        return None
    return _TraceSession(flag or DEFAULT_TRACE_DIR, kind)


def _trace_epilogue(trace) -> None:
    if trace is not None:
        print(f"trace written to {trace.path} (run {trace.run_id})")


def _resolve_cache_dir(args: argparse.Namespace):
    """The cache directory the flags/environment select, or ``None``.

    ``--no-cache`` beats everything; ``--cache [DIR]`` enables with an
    explicit or default directory; otherwise the cache is on exactly
    when ``$REPRO_SCHEDULE_CACHE`` names a directory.
    """
    import os
    from pathlib import Path

    from repro.fastpath import CACHE_DIR_ENV, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    flag = getattr(args, "cache", None)
    if flag is None:
        return default_cache_dir() if os.environ.get(CACHE_DIR_ENV) else None
    return Path(flag) if flag else default_cache_dir()


def _cache_epilogue(cache) -> None:
    """One provenance line so cache behaviour is visible in run logs."""
    stats = cache.stats
    print(
        f"schedule cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.corrupt} corrupt in {cache.root}"
    )
    if stats.chunk_hits or stats.chunk_stores:
        print(
            f"schedule cache: {stats.chunk_hits} chunk hit(s), "
            f"{stats.chunk_stores} chunk store(s)"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    strategy = get_strategy(args.strategy)
    schedule = strategy.run(args.dimension)
    if args.homebase:
        schedule = schedule.translated(args.homebase)
    report = verify_schedule(schedule)
    print(compute_metrics(schedule).describe())
    print(report.summary())
    if args.show_order:
        from repro.viz.order_render import render_cleaning_order

        print(render_cleaning_order(schedule))
    if args.watch:
        from repro.viz.state_render import render_frames

        for frame in render_frames(schedule):
            print(frame)
            print()
    if args.save:
        from pathlib import Path

        Path(args.save).write_text(schedule.to_json())
        print(f"schedule written to {args.save}")
    return 0 if report.ok else 1


def _executor_requested(args: argparse.Namespace) -> bool:
    """Whether the parallel-execution flags ask for the executor path."""
    return args.jobs != 1 or args.resume is not None or args.timeout is not None


def _executor_config(args: argparse.Namespace):
    from repro.exec import ExecutorConfig

    return ExecutorConfig(jobs=args.jobs, timeout=args.timeout, retries=args.retries)


def _executor_epilogue(outcomes) -> None:
    """One summary line per retried/failed cell (the failure contract:
    errors surface as table rows plus these notes, never tracebacks)."""
    for outcome in outcomes:
        if not outcome.ok:
            print(f"FAILED {outcome.key} after {outcome.attempts} attempt(s): {outcome.error}")
        elif outcome.attempts > 1:
            print(f"retried {outcome.key}: ok on attempt {outcome.attempts}")


def _write_merged_manifest_for(resume: str, outcomes, kind: str) -> None:
    from pathlib import Path

    from repro.exec import write_merged_manifest

    target = Path(resume).with_suffix(".manifest.json")
    write_merged_manifest(target, outcomes, extra={"batch": kind})
    print(f"merged manifest written to {target}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.errors import ReproError

    cache_dir = _resolve_cache_dir(args)
    trace = _trace_session(args, "experiment")
    if _executor_requested(args):
        from repro.exec import parallel_experiments

        ids = None if args.id is None else [args.id]
        try:
            with trace or nullcontext():
                results, outcomes = parallel_experiments(
                    ids,
                    _executor_config(args),
                    checkpoint=args.resume,
                    cache_dir=cache_dir,
                    metrics=trace.registry if trace else None,
                    tracer=trace.tracer if trace else None,
                )
        except ReproError as exc:
            print(f"repro-search experiment: {exc}", file=sys.stderr)
            return 2
        for result in results:
            print(result.render())
            print()
        _executor_epilogue(outcomes)
        if args.resume:
            _write_merged_manifest_for(args.resume, outcomes, "experiment")
        _trace_epilogue(trace)
        return 0 if all(r.passed for r in results) else 1

    from repro.analysis.experiments import run_all, run_experiment
    from repro.core.strategy import set_active_cache

    cache = None
    if cache_dir is not None:
        from repro.fastpath import ScheduleCache

        cache = ScheduleCache(cache_dir)
        if trace is not None:
            cache.bind_metrics(trace.registry)
            cache.bind_tracer(trace.tracer)
    previous = set_active_cache(cache)
    try:
        with trace or nullcontext():
            results = run_all() if args.id is None else [run_experiment(args.id)]
    finally:
        set_active_cache(previous)
    for result in results:
        print(result.render())
        print()
    if cache is not None:
        _cache_epilogue(cache)
    _trace_epilogue(trace)
    return 0 if all(r.passed for r in results) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.errors import ReproError

    cache_dir = _resolve_cache_dir(args)
    trace = _trace_session(args, "sweep")
    outcomes = None
    cache = None
    if _executor_requested(args):
        from repro.exec import parallel_sweep

        try:
            with trace or nullcontext():
                sweep, rows, outcomes = parallel_sweep(
                    args.strategies,
                    args.dimensions,
                    _executor_config(args),
                    checkpoint=args.resume,
                    cache_dir=cache_dir,
                    metrics=trace.registry if trace else None,
                    tracer=trace.tracer if trace else None,
                    stream=args.stream,
                    chunk_moves=args.chunk_moves,
                    backend=args.backend,
                )
        except ReproError as exc:
            print(f"repro-search sweep: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.analysis.sweeps import run_sweep
        from repro.core.chunkstream import DEFAULT_CHUNK_MOVES
        from repro.fastpath import ScheduleCache

        if cache_dir is not None:
            cache = ScheduleCache(cache_dir)
            if trace is not None:
                cache.bind_metrics(trace.registry)
                cache.bind_tracer(trace.tracer)
        try:
            with trace or nullcontext():
                sweep, rows = run_sweep(
                    args.strategies,
                    args.dimensions,
                    cache=cache,
                    stream=args.stream,
                    chunk_moves=args.chunk_moves or DEFAULT_CHUNK_MOVES,
                    backend=args.backend,
                )
        except ReproError as exc:
            print(f"repro-search sweep: {exc}", file=sys.stderr)
            return 2
    print(sweep.to_text(rows))
    if cache is not None:
        _cache_epilogue(cache)
    elif cache_dir is not None:
        # parallel path: the counters live in the workers; per-cell
        # provenance lands in the merged manifest instead
        print(f"schedule cache: shared directory {cache_dir}")
    if outcomes is not None:
        _executor_epilogue(outcomes)
        if args.resume:
            _write_merged_manifest_for(args.resume, outcomes, "sweep")
    if args.csv:
        if not _write_text_file(args.csv, sweep.to_csv(rows), "CSV"):
            return 2
    _trace_epilogue(trace)
    return 0 if all(row.ok for row in rows) else 1


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.fastpath.batchsim import BatchScenarioSpec

    try:
        spec = BatchScenarioSpec(
            dimension=args.dimension,
            strategy=args.strategy,
            trials=args.trials,
            intruder=args.intruder,
            seeds_per_trial=args.seeds_per_trial,
            intruder_count=args.intruder_count,
            delay=args.delays,
            delay_low=args.delay_low,
            delay_high=args.delay_high,
            delay_factor=args.delay_factor,
            delay_period=args.delay_period,
            rotate_homebase=args.rotate_homebase,
            rng_seed=args.seed,
        )
    except ReproError as exc:
        print(f"repro-search montecarlo: {exc}", file=sys.stderr)
        return 2

    from contextlib import nullcontext

    trace = _trace_session(args, "montecarlo")
    outcomes = None
    if _executor_requested(args):
        from repro.exec import parallel_montecarlo

        try:
            with trace or nullcontext():
                result, outcomes = parallel_montecarlo(
                    spec,
                    _executor_config(args),
                    shards=args.shards,
                    checkpoint=args.resume,
                    metrics=trace.registry if trace else None,
                    tracer=trace.tracer if trace else None,
                    backend=args.backend,
                )
        except ReproError as exc:
            print(f"repro-search montecarlo: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.fastpath.batchsim import run_batch
        from repro.obs import MetricsRegistry

        registry = trace.registry if trace else MetricsRegistry()
        try:
            with trace or nullcontext():
                result = run_batch(
                    spec,
                    metrics=registry,
                    tracer=trace.tracer if trace else None,
                    backend=args.backend,
                )
        except ReproError as exc:
            print(f"repro-search montecarlo: {exc}", file=sys.stderr)
            return 2
    print(result.describe())
    if outcomes is not None:
        _executor_epilogue(outcomes)
        if args.resume:
            _write_merged_manifest_for(args.resume, outcomes, "montecarlo")
    if args.json:
        import json

        from repro.obs import build_manifest

        summary = result.summary()
        payload = {
            "manifest": build_manifest(extra={"montecarlo": summary}),
            "montecarlo": summary,
        }
        if not _write_text_file(
            args.json, json.dumps(payload, indent=2, sort_keys=True), "summary"
        ):
            return 2
    _trace_epilogue(trace)
    missing = result.counters.get("missing_trials", 0)
    return 0 if result.count and not missing else 1


def _write_text_file(target: str, text: str, label: str) -> bool:
    """Write ``text`` (newline-terminated, parents created); ``False`` +
    a clean stderr message instead of a traceback when the path is
    unwritable."""
    from pathlib import Path

    path = Path(target)
    if not text.endswith("\n"):
        text += "\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    except OSError as exc:
        print(f"repro-search: cannot write {label} to {target}: {exc}", file=sys.stderr)
        return False
    print(f"{label} written to {target}")
    return True


def _cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.schedule import Schedule

    schedule = Schedule.from_json(Path(args.file).read_text())
    report = verify_schedule(schedule)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_table(args: argparse.Namespace) -> int:
    names = ["clean", "visibility", "cloning", "synchronous"]
    header = f"{'d':>3} {'n':>6} | " + " | ".join(f"{s:^24}" for s in names)
    sub = f"{'':>3} {'':>6} | " + " | ".join(f"{'agents/moves/steps':^24}" for _ in names)
    print(header)
    print(sub)
    print("-" * len(header))
    for d in args.dimensions:
        cells = []
        for name in names:
            schedule = get_strategy(name).run(d)
            cells.append(
                f"{schedule.team_size:>7}/{schedule.total_moves:>7}/{schedule.makespan:>6}"
            )
        print(f"{d:>3} {1 << d:>6} | " + " | ".join(f"{c:^24}" for c in cells))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.which == "fig1":
        from repro.viz.tree_render import render_broadcast_tree, render_level_table

        d = args.dimension if args.dimension is not None else 6
        print(render_broadcast_tree(d))
        print()
        print(render_level_table(d))
    elif args.which == "fig3":
        from repro.viz.class_render import render_classes

        d = args.dimension if args.dimension is not None else 4
        print(render_classes(d))
    elif args.which == "profile":
        from repro.viz.profile_render import render_deployment_profile

        d = args.dimension if args.dimension is not None else 5
        for name in ("clean", "visibility"):
            print(render_deployment_profile(get_strategy(name).run(d), max_rows=40))
            print()
    elif args.which == "scoreboard":
        from repro.analysis.lower_bounds import monotone_agents_lower_bound
        from repro.search.harper import harper_sweep_schedule

        d_max = args.dimension if args.dimension is not None else 9
        print(f"{'d':>3} {'LB':>6} {'harper':>7} {'clean':>7} {'visibility':>11}")
        for d in range(1, d_max + 1):
            print(
                f"{d:>3} {monotone_agents_lower_bound(d):>6} "
                f"{harper_sweep_schedule(d).team_size:>7} "
                f"{formulas.clean_peak_agents(d):>7} "
                f"{formulas.visibility_agents(d):>11}"
            )
    else:
        from repro.viz.order_render import render_cleaning_order, render_wave_table

        d = args.dimension if args.dimension is not None else 4
        name = "clean" if args.which == "fig2" else "visibility"
        schedule = get_strategy(name).run(d)
        print(render_cleaning_order(schedule))
        print()
        print(render_wave_table(schedule))
    return 0


def _protocol_runner(name: str):
    """Map a CLI protocol name to its runner function."""
    from repro.protocols import (
        run_clean_protocol,
        run_cloning_protocol,
        run_synchronous_protocol,
        run_visibility_protocol,
    )

    return {
        "clean": run_clean_protocol,
        "visibility": run_visibility_protocol,
        "cloning": run_cloning_protocol,
        "synchronous": run_synchronous_protocol,
    }[name]


def _make_delay(kind: str, seed: int):
    from repro.sim.scheduling import RandomDelay, UnitDelay

    return UnitDelay() if kind == "unit" else RandomDelay(seed=seed)


def _cmd_simulate(args: argparse.Namespace) -> int:
    delay = _make_delay(args.delays, args.seed)
    intruder = "walker" if args.walker_intruder else "reachable"
    runner = _protocol_runner(args.protocol)
    result = runner(args.dimension, delay=delay, intruder=intruder)
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import SimMetricsCollector, render_report, standard_probes

    collector = SimMetricsCollector()
    subscribers = [collector]
    probes = []
    if args.probes != "off":
        probes = standard_probes(mode=args.probes)
        subscribers.extend(probes)

    runner = _protocol_runner(args.protocol)
    result = runner(
        args.dimension,
        delay=_make_delay(args.delays, args.seed),
        subscribers=subscribers,
    )
    snapshot = collector.snapshot()
    title = f"{args.protocol} protocol, d={args.dimension} (n={1 << args.dimension})"
    print(render_report(snapshot, title=title))
    print()
    print(result.summary())
    violations = [v for probe in probes for v in probe.violations]
    for violation in violations:
        print(f"PROBE: {violation.describe()}")
    git = result.manifest.get("git") or "unknown"
    print(f"manifest: {result.manifest.get('schema')} @ {git}")
    if args.json:
        import json
        from pathlib import Path

        from repro.obs import report_payload

        payload = {
            "manifest": result.manifest,
            "metrics": snapshot,
            "report": report_payload(snapshot),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"snapshot written to {args.json}")
    return 0 if result.ok and not violations else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    import contextlib

    from repro.obs import JsonlStreamer

    runner = _protocol_runner(args.protocol)
    with contextlib.ExitStack() as stack:
        if args.output:
            fh = stack.enter_context(open(args.output, "w"))
        else:
            fh = sys.stdout
        streamer = JsonlStreamer(fh, mask_fields=args.masks)
        subscriber = streamer
        if args.kinds:
            wanted = frozenset(args.kinds)

            def subscriber(event, _streamer=streamer, _wanted=wanted):
                if event.kind in _wanted:
                    _streamer(event)

        # events leave via the streamer; keep only a small trace window
        result = runner(
            args.dimension,
            delay=_make_delay(args.delays, args.seed),
            subscribers=[subscriber],
            trace_maxlen=64,
        )
        streamer.write_record({"record": "manifest", **result.manifest})
    if args.output:
        print(f"{streamer.count} events -> {args.output}")
    return 0 if result.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import RunLog, read_runlog, render_trace

    target = Path(args.path) if args.path else Path(DEFAULT_TRACE_DIR)
    if target.is_dir():
        latest = RunLog(target).latest()
        if latest is None:
            print(
                f"repro-search trace: no runs indexed under {target}", file=sys.stderr
            )
            return 2
        target = latest
    try:
        data = read_runlog(target)
    except OSError as exc:
        print(f"repro-search trace: cannot read {target}: {exc}", file=sys.stderr)
        return 2
    status = (data.end or {}).get("status", "incomplete")
    print(f"run {data.run_id or '?'}  [{data.schema or '?'}]  status: {status}")
    if data.manifest:
        git = data.manifest.get("git") or "unknown"
        print(f"manifest: {data.manifest.get('schema')} @ {git}")
    print()
    if data.spans:
        print(render_trace(data.spans, top=args.top, max_depth=args.max_depth))
    else:
        print("(no spans recorded)")
    counters = data.counters
    if counters:
        print()
        print("counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]:g}")
    if data.events:
        print(f"{len(data.events)} event record(s)")
    return 0 if data.complete else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import to_prometheus

    if args.runlog:
        from repro.obs import read_runlog

        try:
            data = read_runlog(args.runlog)
        except OSError as exc:
            print(
                f"repro-search metrics: cannot read {args.runlog}: {exc}",
                file=sys.stderr,
            )
            return 2
        if not data.metrics:
            print(
                f"repro-search metrics: no metrics records in {args.runlog}",
                file=sys.stderr,
            )
            return 2
        snapshot = data.metrics[-1]
    elif args.dimension is not None:
        from repro.obs import SimMetricsCollector

        collector = SimMetricsCollector()
        runner = _protocol_runner(args.protocol)
        runner(
            args.dimension,
            delay=_make_delay(args.delays, args.seed),
            subscribers=[collector],
        )
        snapshot = collector.snapshot()
    else:
        print(
            "repro-search metrics: pass --runlog FILE or -d DIMENSION",
            file=sys.stderr,
        )
        return 2
    text = to_prometheus(snapshot)
    if args.output:
        if not _write_text_file(args.output, text, "metrics"):
            return 2
    else:
        print(text, end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ScheduleCacheError
    from repro.fastpath import ScheduleCache, default_cache_dir

    root = Path(args.dir) if args.dir else default_cache_dir()
    try:
        cache = ScheduleCache(root)
    except ScheduleCacheError as exc:
        print(f"repro-search cache: {exc}", file=sys.stderr)
        return 2
    if args.action == "info":
        info = cache.info()
        print(f"root        : {info['root']}")
        print(f"entries     : {info['entries']}")
        print(f"chunked     : {info['chunked_entries']}")
        print(f"total bytes : {info['total_bytes']}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} file(s) from {cache.root}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_formulas(args: argparse.Namespace) -> int:
    d = args.dimension
    h = Hypercube(d)
    print(f"H_{d}: n={h.n}, edges={h.num_edges}")
    print(f"CLEAN peak agents (Thm 2)         : {formulas.clean_peak_agents(d)}")
    print(f"CLEAN agent moves (Thm 3)         : {formulas.clean_agent_moves_exact(d)}")
    print(f"CLEAN sync moves upper bound      : {formulas.clean_sync_moves_upper_bound(d)}")
    print(f"visibility agents (Thm 5)         : {formulas.visibility_agents(d)}")
    print(f"visibility steps (Thm 7)          : {formulas.visibility_time_steps(d)}")
    print(f"visibility moves (Thm 8)          : {formulas.visibility_moves_exact(d)}")
    print(f"cloning agents / moves (Sec 5)    : {formulas.cloning_agents(d)} / {formulas.cloning_moves(d)}")
    print(f"CLEAN-with-cloning agents (Sec 5) : {formulas.clean_with_cloning_agents(d)}")
    for level in range(1, d):
        print(
            f"  extras before level {level}->{level + 1} (Lemma 3): "
            f"{formulas.extra_agents_for_level(d, level)}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-search`` console script.

    A downstream pipe closing early (``repro-search trace | head``) is a
    normal way to consume the streaming subcommands, not an error: the
    resulting ``BrokenPipeError`` exits quietly with the conventional
    SIGPIPE status instead of a traceback.
    """
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # reopen stdout on devnull so the interpreter's shutdown flush
        # does not raise a second BrokenPipeError over the first
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + 13


def _dispatch(argv: Optional[List[str]]) -> int:
    """Parse ``argv`` and invoke the matching subcommand handler."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "simulate": _cmd_simulate,
        "formulas": _cmd_formulas,
        "lint": _cmd_lint,
        "verify": _cmd_verify,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "montecarlo": _cmd_montecarlo,
        "cache": _cmd_cache,
        "report": _cmd_report,
        "watch": _cmd_watch,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
