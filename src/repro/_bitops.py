"""Low-level bit manipulation helpers for hypercube nodes.

Hypercube nodes are represented as plain Python integers interpreted as
bitmasks.  Bit index ``i`` (0-based) corresponds to the paper's *position*
``i + 1`` (1-based): the paper labels hypercube dimensions ``1 .. d`` and
defines the label of edge ``(x, y)`` as the position of the bit in which the
binary strings of ``x`` and ``y`` differ.

The module also provides small vectorized (NumPy) counterparts used by the
census/analysis code where whole levels or classes of the hypercube are
processed at once; per the HPC guides, the scalar versions are kept simple
and legible, and the vectorized versions exist only for the measured hot
paths (censuses over ``2^d`` nodes).
"""

from __future__ import annotations

from typing import Iterable, Iterator

# Predates the kernel-backend seam; these census helpers are mandatory
# (numpy is a declared dependency), not an optional accelerated path.
import numpy as np  # repro-lint: disable=RPR250

__all__ = [
    "popcount",
    "msb_position",
    "lowest_set_bit",
    "iter_set_bits",
    "iter_clear_bits",
    "flip_bit",
    "with_bit",
    "without_bit",
    "bitstring",
    "from_bitstring",
    "gray_code",
    "popcount_array",
    "msb_position_array",
    "mask_from_nodes",
    "nodes_from_mask",
    "lowest_set_index",
]


def popcount(x: int) -> int:
    """Number of 1 bits in ``x`` (the hypercube *level* of the node).

    >>> popcount(0b1011)
    3
    """
    return x.bit_count()


def msb_position(x: int) -> int:
    """Paper's ``m(x)``: 1-based position of the most significant set bit.

    Returns 0 for ``x == 0`` (the homebase ``00...0`` has no set bit).  This
    is also the index ``i`` of the class :math:`C_i` that ``x`` belongs to
    (Section 4.1 of the paper).

    >>> msb_position(0)
    0
    >>> msb_position(0b00101)
    3
    """
    if x < 0:
        raise ValueError(f"node must be non-negative, got {x}")
    return x.bit_length()


def lowest_set_bit(x: int) -> int:
    """1-based position of the least significant set bit; 0 if ``x == 0``."""
    if x == 0:
        return 0
    return (x & -x).bit_length()


def iter_set_bits(x: int) -> Iterator[int]:
    """Yield the 0-based indices of set bits of ``x`` in increasing order."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


def iter_clear_bits(x: int, width: int) -> Iterator[int]:
    """Yield the 0-based indices of clear bits of ``x`` below ``width``."""
    for i in range(width):
        if not (x >> i) & 1:
            yield i


def flip_bit(x: int, index: int) -> int:
    """Flip the 0-based bit ``index`` of ``x``."""
    return x ^ (1 << index)


def with_bit(x: int, index: int) -> int:
    """Set the 0-based bit ``index`` of ``x``."""
    return x | (1 << index)


def without_bit(x: int, index: int) -> int:
    """Clear the 0-based bit ``index`` of ``x``."""
    return x & ~(1 << index)


def bitstring(x: int, width: int) -> str:
    """Render ``x`` using the paper's string convention.

    The paper writes a node as :math:`b_1 b_2 \\ldots b_d` with *position 1
    leftmost*; position ``i`` is bit index ``i - 1``.  Hence the leftmost
    character of the returned string is the least significant bit.

    >>> bitstring(0b001, 4)   # only position 1 set
    '1000'
    >>> bitstring(0b1000, 4)  # only position 4 set
    '0001'
    """
    if x >= (1 << width):
        raise ValueError(f"{x} does not fit in {width} bits")
    return format(x, f"0{width}b")[::-1]


def from_bitstring(s: str) -> int:
    """Inverse of :func:`bitstring` (paper convention, position 1 leftmost)."""
    if not s or any(c not in "01" for c in s):
        raise ValueError(f"not a bit string: {s!r}")
    return int(s[::-1], 2)


def gray_code(i: int) -> int:
    """The ``i``-th binary reflected Gray code value.

    Consecutive Gray codes differ in one bit, i.e. they are adjacent in the
    hypercube; used to build Hamiltonian walks for the baseline strategies.
    """
    return i ^ (i >> 1)


def mask_from_nodes(nodes: Iterable[int]) -> int:
    """Pack an iterable of node ids into a node-set bitmask.

    Node sets over a topology with ``n`` nodes are represented as plain
    Python integers with bit ``i`` set iff node ``i`` is in the set — the
    convention the simulation state layer uses throughout.

    >>> mask_from_nodes([0, 2, 5])
    37
    """
    mask = 0
    for node in nodes:
        mask |= 1 << node
    return mask


def nodes_from_mask(mask: int) -> set:
    """Unpack a node-set bitmask into a ``set`` of node ids.

    >>> sorted(nodes_from_mask(37))
    [0, 2, 5]
    """
    return set(iter_set_bits(mask))


def lowest_set_index(mask: int) -> int:
    """0-based index of the least significant set bit (``min`` of the set).

    Raises :class:`ValueError` on an empty mask — callers must handle the
    empty-set case themselves.

    >>> lowest_set_index(0b101000)
    3
    """
    if mask == 0:
        raise ValueError("empty mask has no set bit")
    return (mask & -mask).bit_length() - 1


def popcount_array(values: np.ndarray) -> np.ndarray:
    """Vectorized popcount over an integer array (levels of many nodes)."""
    values = np.asarray(values, dtype=np.uint64)
    counts = np.zeros(values.shape, dtype=np.int64)
    work = values.copy()
    while work.any():
        counts += (work & 1).astype(np.int64)
        work >>= np.uint64(1)
    return counts


def msb_position_array(values: np.ndarray) -> np.ndarray:
    """Vectorized ``m(x)`` (1-based MSB position, 0 for 0) over an array."""
    values = np.asarray(values, dtype=np.uint64)
    positions = np.zeros(values.shape, dtype=np.int64)
    work = values.copy()
    bit = 1
    while work.any():
        positions = np.where(work & 1, bit, positions)
        work >>= np.uint64(1)
        bit += 1
    return positions
