"""The Harper sweep: a near-optimal monotone contiguous strategy.

Combining the two halves of the open-problem analysis
(:mod:`repro.analysis.lower_bounds`):

* any monotone strategy needs at least ``max_m Γ(m)`` agents, where
  ``Γ(m)`` is the hypercube's minimal inner vertex boundary at size ``m``
  (Harper's theorem: achieved by initial segments of the simplicial
  order);
* the generic frontier sweep run *in that very order* keeps its guard set
  equal to the boundary of the current initial segment — so its team is
  ``max_m Γ(m)`` plus at most one (the agent in transit / homebase guard).

The result is a contiguous monotone strategy whose team size matches the
monotone lower bound to within one agent on every dimension we can
compute — numerically settling the paper's final open question: the true
optimum is ``Θ(C(d, d/2)) = Θ(n / √log n)``, and Algorithm ``CLEAN`` is a
constant factor (≈1.3 measured) above it.

Trade-off: like the naive sweeps, the Harper sweep routes every deployment
from the homebase, so it spends ``Θ(n log n)`` moves and ``Θ(n log n)``
sequential time — it wins the agents metric, not the others.
"""

from __future__ import annotations

from repro.analysis.lower_bounds import monotone_agents_lower_bound, simplicial_order
from repro.core.schedule import Schedule
from repro.errors import TopologyError
from repro.search.frontier_sweep import frontier_sweep_schedule
from repro.topology.generic import hypercube_graph

__all__ = ["harper_sweep_schedule"]


def harper_sweep_schedule(dimension: int) -> Schedule:
    """Sweep ``H_d`` in the simplicial order; team ≤ lower bound + 1.

    Returns a generic-graph schedule (``dimension=0`` convention; verify
    with ``ScheduleVerifier(hypercube_graph(d))``).
    """
    if dimension < 0:
        raise TopologyError("dimension must be >= 0")
    graph = hypercube_graph(dimension)
    schedule = frontier_sweep_schedule(
        graph, homebase=0, visit_order=simplicial_order(dimension)
    )
    schedule.strategy = "harper-sweep"
    schedule.metadata["monotone_lower_bound"] = monotone_agents_lower_bound(dimension)
    return schedule
