"""Classical (non-contiguous) node search, for model comparison (§1.2).

The related-work model the paper contrasts with: searchers may be *placed*
on any node and *removed* from any node (no walking constraint, no
homebase), and the objects being decontaminated are the **edges**: an edge
is cleared when searchers simultaneously occupy both endpoints, and a
cleared edge is recontaminated if it is connected to a contaminated edge
through an unguarded vertex.  The minimum number of searchers is the *node
search number* ``ns(G)`` (= pathwidth + 1).

The brute-force solver below settles ``ns`` exactly on small graphs so the
A3 bench can put the paper's contiguous numbers side by side with the
classical ones — demonstrating §1.2's point that "the contiguous assumption
considerably changes the nature of the problem" in *both* directions: a
path from its end needs 1 contiguous agent but 2 classical searchers, while
graphs with a bad homebase can need more contiguous agents than ``ns``.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterator, Tuple

from repro.errors import CapacityError

__all__ = ["node_search_number", "classical_solvable_with"]

_STATE_LIMIT = 1_000_000

Edge = Tuple[int, int]


def _edges_of(graph) -> FrozenSet[Edge]:
    return frozenset(tuple(sorted(e)) for e in graph.edges())


def _recontaminate(graph, occupied: FrozenSet[int], contaminated: FrozenSet[Edge]) -> FrozenSet[Edge]:
    """Close the contaminated edge set under spread through free vertices."""
    contaminated = set(contaminated)
    changed = True
    while changed:
        changed = False
        for u, v in _edges_of(graph) - frozenset(contaminated):
            for w in (u, v):
                if w in occupied:
                    continue
                # w is free; any contaminated edge at w spreads to (u, v)
                if any(
                    tuple(sorted((w, y))) in contaminated for y in graph.neighbors(w)
                ):
                    contaminated.add((u, v))
                    changed = True
                    break
    return frozenset(contaminated)


def _clear(graph, occupied: FrozenSet[int], contaminated: FrozenSet[Edge]) -> FrozenSet[Edge]:
    """Clear every edge with both endpoints occupied."""
    return frozenset(
        e for e in contaminated if not (e[0] in occupied and e[1] in occupied)
    )


def _successors(graph, k: int, state) -> Iterator[Tuple[FrozenSet[int], FrozenSet[Edge]]]:
    occupied, contaminated = state
    # place a searcher
    if len(occupied) < k:
        for v in graph.nodes():
            if v not in occupied:
                occ = occupied | {v}
                yield occ, _clear(graph, occ, contaminated)
    # remove a searcher (then evaluate recontamination)
    for v in occupied:
        occ = occupied - {v}
        yield occ, _recontaminate(graph, occ, contaminated)


def classical_solvable_with(graph, searchers: int) -> bool:
    """Whether ``searchers`` suffice for classical node search of ``graph``."""
    start = (frozenset(), _edges_of(graph))
    if not start[1]:
        return searchers >= 0  # no edges: vacuously clean
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        for nxt in _successors(graph, searchers, state):
            if nxt in seen:
                continue
            if len(seen) > _STATE_LIMIT:
                raise CapacityError("classical node-search state space too large")
            seen.add(nxt)
            if not nxt[1]:
                return True
            queue.append(nxt)
    return False


def node_search_number(graph, max_searchers: int | None = None) -> int:
    """The classical node search number ``ns(G)`` by brute force."""
    limit = max_searchers if max_searchers is not None else graph.n
    for k in range(1, limit + 1):
        if classical_solvable_with(graph, k):
            return k
    raise CapacityError(f"{graph!r} not searchable with {limit} searchers")


# ---------------------------------------------------------------------- #
# non-contiguous search under the *paper's* node-cleaning semantics
# ---------------------------------------------------------------------- #


def _settle_clean(graph, occupied: FrozenSet[int], clean: set) -> FrozenSet[int]:
    """Flood recontamination through unguarded clean nodes (paper rules)."""
    changed = True
    while changed:
        changed = False
        for w in list(clean):
            if w in occupied:
                continue
            for y in graph.neighbors(w):
                if y not in occupied and y not in clean:
                    clean.discard(w)
                    changed = True
                    break
    return frozenset(clean)


def _node_successors(graph, k: int, state) -> Iterator[Tuple[FrozenSet[int], FrozenSet[int]]]:
    occupied, clean = state
    # place a searcher anywhere (teleportation allowed in this model)
    if len(occupied) < k:
        for v in graph.nodes():
            if v not in occupied:
                yield occupied | {v}, clean - {v}
    for v in occupied:
        # remove a searcher entirely
        occ = occupied - {v}
        yield occ, _settle_clean(graph, occ, set(clean) | {v})
        # or slide it atomically along an edge (the contiguous model's only
        # action; including it makes this model a strict relaxation)
        for y in graph.neighbors(v):
            if y not in occupied:
                occ2 = (occupied - {v}) | {y}
                yield occ2, _settle_clean(graph, occ2, (set(clean) - {y}) | {v})


def node_cleaning_solvable_with(graph, searchers: int) -> bool:
    """Whether ``searchers`` clean every node with placement/removal allowed
    — the paper's node semantics *without* the contiguity/walking
    constraint.  Lower-bounds the contiguous number from any homebase."""
    start = (frozenset(), frozenset())
    seen = {start}
    queue = deque([start])
    n = graph.n
    while queue:
        state = queue.popleft()
        for nxt in _node_successors(graph, searchers, state):
            if nxt in seen:
                continue
            if len(seen) > _STATE_LIMIT:
                raise CapacityError("node-cleaning state space too large")
            seen.add(nxt)
            occupied, clean = nxt
            if len(occupied | clean) == n:
                return True
            queue.append(nxt)
    return False


def node_cleaning_search_number(graph, max_searchers: int | None = None) -> int:
    """Minimal searchers for non-contiguous node cleaning (see above)."""
    limit = max_searchers if max_searchers is not None else graph.n
    for k in range(1, limit + 1):
        if node_cleaning_solvable_with(graph, k):
            return k
    raise CapacityError(f"{graph!r} not cleanable with {limit} searchers")
