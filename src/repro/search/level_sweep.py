"""Naive hypercube baseline: guard two whole adjacent levels at once.

The obvious level-by-level sweep without the paper's reuse trick: to
advance the frontier from level ``l`` to ``l+1``, first guard *every*
level-``l+1`` node with a fresh agent dispatched from the root (walking
down the broadcast tree through the clean region), and only then release
the level-``l`` guards back to the root.

This is trivially monotone and contiguous, but it needs
``max_l [C(d, l) + C(d, l+1)]`` agents — roughly *twice* Algorithm
``CLEAN``'s ``C(d, l+1) + C(d-1, l-1) + 1`` peak (the paper's strategy
lets the level-``l`` guards themselves march down tree edges, so only the
leaf surplus needs replacing).  The A1 ablation bench quantifies exactly
this gap, which is what the broadcast-tree choreography buys.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional

from repro.analysis.counting import binomial
from repro.core.chunkstream import (
    ChunkStreamHeader,
    TimeOrderedEmitter,
    collect_stream,
)
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.core.strategy import Strategy, register
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = ["LevelSweepStrategy", "level_sweep_peak_agents"]


def level_sweep_peak_agents(d: int) -> int:
    """Team size of the naive sweep.

    Pass ``l >= 1`` holds both full levels deployed — ``C(d,l) + C(d,l+1)``
    agents; pass 0 needs only the ``d`` level-1 guards (the root is covered
    by the undeployed pool sitting on it).
    """
    if d == 0:
        return 1
    candidates = [d]
    candidates += [binomial(d, l) + binomial(d, l + 1) for l in range(1, d)]
    return max(candidates)


@register
class LevelSweepStrategy(Strategy):
    """The naive two-full-levels baseline (whiteboard model)."""

    name = "level-sweep"
    model = "whiteboard"

    def expected_team_size(self, d: int) -> Optional[int]:
        return level_sweep_peak_agents(d)

    def generate(self, hypercube: Hypercube) -> Schedule:
        header = ChunkStreamHeader(
            dimension=hypercube.d,
            strategy=self.name,
            homebase=0,
            uses_cloning=False,
            team_size=level_sweep_peak_agents(hypercube.d),
        )
        return collect_stream(header, self.stream_moves(hypercube))

    def stream_moves(self, hypercube: Hypercube) -> Iterator[Move]:
        """Native streaming generator: two levels of walks buffered.

        Same watermark argument as CLEAN's: every walk starts at
        ``max(ready, clock)`` and ``clock`` never decreases, so flushing
        the time-ordered buffer up to the clock reproduces the old
        post-hoc stable sort exactly.
        """
        d = hypercube.d
        tree = BroadcastTree(hypercube)
        emitter = TimeOrderedEmitter()
        # pool of (ready_time, agent_id) at the root; hire on demand
        pool: List[tuple[int, int]] = []
        next_id = 0
        guard_of: Dict[int, int] = {}
        guard_ready: Dict[int, int] = {}
        clock = 0

        def acquire() -> tuple[int, int]:
            nonlocal next_id
            if pool:
                return heapq.heappop(pool)
            agent = next_id
            next_id += 1
            return (0, agent)

        def walk(agent: int, path: List[int], start: int, kind: MoveKind) -> int:
            t = start
            for src, dst in zip(path, path[1:]):
                t += 1
                emitter.emit(
                    Move(agent=agent, src=src, dst=dst, time=t, role=AgentRole.AGENT, kind=kind)
                )
            return t

        if d == 0:
            return {  # type: ignore[return-value]
                "team_size": 1,
                "metadata": {},
            }

        for level in range(0, d):
            # guard every level-(l+1) node with a dispatched agent
            for x in hypercube.level_nodes(level + 1):
                ready, agent = acquire()
                start = max(ready, clock)
                arrival = walk(agent, tree.path_from_root(x), start, MoveKind.DISPATCH)
                guard_of[x] = agent
                guard_ready[x] = arrival
            clock = max(clock, max(guard_ready[x] for x in hypercube.level_nodes(level + 1)))
            yield from emitter.release(clock)
            # release every level-l guard back to the root
            for x in hypercube.level_nodes(level):
                if x == 0:
                    continue  # the root has no single guard to release
                agent = guard_of.pop(x)
                start = max(guard_ready.pop(x), clock)
                back = walk(agent, tree.path_to_root(x), start, MoveKind.RETURN)
                heapq.heappush(pool, (back, agent))

        # finally release the level-d guard
        top = (1 << d) - 1
        agent = guard_of.pop(top)
        walk(agent, tree.path_to_root(top), max(guard_ready.pop(top), clock), MoveKind.RETURN)

        yield from emitter.drain()
        return {  # type: ignore[return-value]
            "team_size": next_id,
            "metadata": {"peak_agents_formula": level_sweep_peak_agents(d)},
        }
