"""Contiguous monotone search of *arbitrary* graphs: BFS frontier sweep.

The paper's strategies are hypercube-specific; this module gives the
library a correct (not optimal) strategy for any connected graph, so the
decontamination machinery is usable on real network topologies:

* visit nodes in BFS order from the homebase (each new node has a guarded
  or clean neighbour, so contiguity is automatic);
* a fresh guard walks from the homebase to the new node *through the
  cleaned region* (shortest path inside the visited set);
* after each visit, release every guard whose node's whole neighbourhood
  is decontaminated — released agents walk home and are reused.

The team size is therefore ``1 + max_t |boundary(t)|`` where ``boundary``
is the set of visited nodes with unvisited neighbours — the graph's
*BFS boundary width* from the homebase.  On the hypercube this matches the
naive level-sweep's two-level bound; on paths it is 1; on a ``k x k`` grid
it is ``Theta(k)``.

The strategy verifies monotone/contiguous/complete on every graph (tests
fuzz random connected graphs), which is the point: a downstream user can
decontaminate any topology, paying optimality for generality.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional

from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.errors import TopologyError

__all__ = ["frontier_sweep_schedule", "bfs_boundary_width"]


def _bfs_order(graph, homebase: int) -> List[int]:
    seen = {homebase}
    order = [homebase]
    queue = deque([homebase])
    while queue:
        x = queue.popleft()
        for y in graph.neighbors(x):
            if y not in seen:
                seen.add(y)
                order.append(y)
                queue.append(y)
    if len(order) != graph.n:
        raise TopologyError("graph is not connected")
    return order


def bfs_boundary_width(graph, homebase: int = 0) -> int:
    """``max_t |boundary|`` over the BFS sweep: the strategy's guard need."""
    order = _bfs_order(graph, homebase)
    visited = set()
    width = 0
    for i, v in enumerate(order):
        visited.add(v)
        boundary = sum(
            1
            for x in order[: i + 1]
            if any(y not in visited for y in graph.neighbors(x))
        )
        width = max(width, boundary)
    return width


def _path_inside(graph, allowed: set, src: int, dst: int) -> List[int]:
    """Shortest path src -> dst with every node inside ``allowed`` ∪ {dst}."""
    if src == dst:
        return [src]
    parents: Dict[int, int] = {src: src}
    queue = deque([src])
    while queue:
        x = queue.popleft()
        for y in graph.neighbors(x):
            if y in parents:
                continue
            if y != dst and y not in allowed:
                continue
            parents[y] = x
            if y == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            queue.append(y)
    raise TopologyError(f"no route from {src} to {dst} inside the cleaned region")


def frontier_sweep_schedule(
    graph,
    homebase: int = 0,
    visit_order: Optional[List[int]] = None,
) -> Schedule:
    """A verified contiguous monotone cleaning of any connected graph.

    Returns a :class:`~repro.core.schedule.Schedule` with ``dimension=0``;
    verify with ``ScheduleVerifier(graph)``.  Agents are hired on demand
    from the homebase pool, so ``team_size`` measures the visit order's
    boundary width plus the reuse achieved by releases.

    ``visit_order`` overrides the default BFS order; it must start at the
    homebase, cover every node once, and give each node an earlier
    neighbour (so deployments can route through cleaned territory).  The
    team size then tracks *that order's* boundary profile — passing
    Harper's simplicial order on a hypercube yields the near-optimal
    :func:`~repro.search.harper.harper_sweep_schedule`.
    """
    if visit_order is None:
        order = _bfs_order(graph, homebase)
    else:
        order = list(visit_order)
        if sorted(order) != sorted(graph.nodes()):
            raise TopologyError("visit_order must enumerate every node exactly once")
        if order[0] != homebase:
            raise TopologyError("visit_order must start at the homebase")
        seen = set()
        for v in order:
            if v != homebase and not any(y in seen for y in graph.neighbors(v)):
                raise TopologyError(f"node {v} has no earlier neighbour in visit_order")
            seen.add(v)
    moves: List[Move] = []
    clock = 0
    pool: List[tuple[int, int]] = []  # (ready_time, agent)
    next_agent = 0
    guard_at: Dict[int, int] = {}  # node -> agent id guarding it
    visited = {homebase}

    def emit_walk(agent: int, path: List[int], kind: MoveKind, start: int) -> int:
        t = start
        for src, dst in zip(path, path[1:]):
            t += 1
            moves.append(
                Move(agent=agent, src=src, dst=dst, time=t, role=AgentRole.AGENT, kind=kind)
            )
        return t

    def acquire() -> tuple[int, int]:
        nonlocal next_agent
        if pool:
            return heapq.heappop(pool)
        agent = next_agent
        next_agent += 1
        return (0, agent)

    def release_safe_guards() -> None:
        nonlocal clock
        for node in sorted(list(guard_at)):
            if all(y in visited for y in graph.neighbors(node)):
                agent = guard_at.pop(node)
                if node == homebase:
                    # the homebase guard is already home; just free it
                    heapq.heappush(pool, (clock, agent))
                    continue
                path = _path_inside(graph, visited, node, homebase)
                back = emit_walk(agent, path, MoveKind.RETURN, clock)
                heapq.heappush(pool, (back, agent))

    # the homebase is a boundary node too: pin a dedicated guard on it
    # until its whole neighbourhood is visited (a lone star-centre start
    # would otherwise be abandoned to its remaining contaminated leaves)
    _, home_guard = acquire()
    guard_at[homebase] = home_guard
    release_safe_guards()

    for v in order:
        if v == homebase:
            continue
        ready, agent = acquire()
        start = max(ready, clock)
        path = _path_inside(graph, visited, homebase, v)
        arrival = emit_walk(agent, path, MoveKind.DEPLOY, start)
        clock = max(clock, arrival)
        visited.add(v)
        guard_at[v] = agent
        release_safe_guards()

    # everything visited: every remaining guard's neighbourhood is clean
    release_safe_guards()
    if guard_at:
        raise TopologyError(f"guards stranded on {sorted(guard_at)}")

    moves.sort(key=lambda m: m.time)
    schedule = Schedule(
        dimension=0,
        strategy="frontier-sweep",
        moves=moves,
        team_size=max(1, next_agent),
        homebase=homebase,
    )
    schedule.metadata["graph"] = getattr(graph, "name", "G")
    schedule.metadata["graph_n"] = graph.n
    schedule.metadata["boundary_width"] = bfs_boundary_width(graph, homebase)
    return schedule
