"""Brute-force optimal contiguous monotone node search on small graphs.

Finding the optimal team size is NP-complete in general (Section 1.2), but
on small instances exhaustive search over the exact state space of
:mod:`~repro.search.contiguous` settles it.  The A1 ablation bench uses
this to report how far the paper's strategies sit from the true optimum on
``H_2``/``H_3`` (and on rings, paths, stars, trees for context).

BFS over states gives, for a fixed team size ``k``, the *minimum number of
moves* to clean the graph; iterating ``k`` upward gives the optimal team
size.  States are ``(sorted guard tuple, frozen clean set)`` — for the
sizes we target (``n <= 16``, ``k <= 6``) this is at most a few hundred
thousand states.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.errors import CapacityError
from repro.search.contiguous import (
    SearchState,
    apply_move,
    initial_state,
    is_goal,
    legal_moves,
)

__all__ = [
    "solvable_with",
    "optimal_search_number",
    "minimum_moves",
    "optimal_schedule",
]

_STATE_LIMIT = 2_000_000


def _bfs(graph, agents: int, homebase: int, want_path: bool):
    """BFS over states; returns (goal_state, parents, depth) or None."""
    start = initial_state(agents, homebase)
    n = graph.n
    if is_goal(start, n):
        return start, {}, 0
    parents: Dict[SearchState, Optional[Tuple[SearchState, int, int]]] = {start: None}
    queue = deque([(start, 0)])
    while queue:
        state, depth = queue.popleft()
        for src, dst in legal_moves(graph, state):
            nxt = apply_move(graph, state, src, dst)
            if nxt in parents:
                continue
            if len(parents) > _STATE_LIMIT:
                raise CapacityError(
                    f"state space exceeds {_STATE_LIMIT} states; "
                    "graph too large for brute force"
                )
            parents[nxt] = (state, src, dst) if want_path else None
            if is_goal(nxt, n):
                return nxt, parents, depth + 1
            queue.append((nxt, depth + 1))
    return None


def solvable_with(graph, agents: int, homebase: int = 0) -> bool:
    """Whether ``agents`` agents can clean ``graph`` from ``homebase``."""
    return _bfs(graph, agents, homebase, want_path=False) is not None


def optimal_search_number(graph, homebase: int = 0, max_agents: Optional[int] = None) -> int:
    """The minimum team size cleaning ``graph`` from ``homebase``.

    Tries ``k = 1, 2, ...`` up to ``max_agents`` (default ``n``); raises
    :class:`~repro.errors.CapacityError` if none suffices (cannot happen
    for connected graphs with ``k = n``).
    """
    limit = max_agents if max_agents is not None else graph.n
    for k in range(1, limit + 1):
        if solvable_with(graph, k, homebase):
            return k
    raise CapacityError(f"{graph!r} not cleanable with {limit} agents from {homebase}")


def minimum_moves(graph, agents: int, homebase: int = 0) -> Optional[int]:
    """Minimum move count with exactly ``agents`` agents (None if unsolvable)."""
    found = _bfs(graph, agents, homebase, want_path=False)
    return found[2] if found else None


def optimal_schedule(graph, agents: int, homebase: int = 0) -> Optional[Schedule]:
    """A minimum-move schedule with ``agents`` agents, or ``None``.

    The returned :class:`~repro.core.schedule.Schedule` uses ``dimension=0``
    (the graph is generic); verify it by passing ``topology=graph`` to the
    verifier.  Agent identities are assigned greedily during path
    reconstruction (the state space tracks only the multiset).
    """
    found = _bfs(graph, agents, homebase, want_path=True)
    if not found:
        return None
    goal, parents, _depth = found
    # reconstruct (src, dst) edge sequence
    edges: List[Tuple[int, int]] = []
    state = goal
    while parents[state] is not None:
        prev, src, dst = parents[state]
        edges.append((src, dst))
        state = prev
    edges.reverse()
    # assign agent ids: pick any agent currently at src
    positions = {i: homebase for i in range(agents)}
    moves = []
    for t, (src, dst) in enumerate(edges, start=1):
        agent = next(i for i, p in sorted(positions.items()) if p == src)
        positions[agent] = dst
        moves.append(
            Move(agent=agent, src=src, dst=dst, time=t, role=AgentRole.AGENT, kind=MoveKind.DEPLOY)
        )
    schedule = Schedule(
        dimension=0,
        strategy="optimal-bruteforce",
        moves=moves,
        team_size=agents,
        homebase=homebase,
    )
    schedule.metadata["graph"] = getattr(graph, "name", "G")
    schedule.metadata["graph_n"] = graph.n
    return schedule
