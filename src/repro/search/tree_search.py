"""Contiguous search on trees, in the style of Barrière et al. [1].

The paper cites [1] for the fact that contiguous monotone search is
solvable optimally with a linear number of moves on trees.  For a tree
rooted at the homebase the minimal team admits a clean recursion:

    ``g(leaf) = 1``
    ``g(v)    = max(g(c*), 1 + max_{c != c*} g(c))``

where ``c*`` is a child of maximal ``g``.  Rationale: child subtrees are
cleaned one at a time; while any *other* contaminated child remains, one
agent must keep guarding ``v`` (else ``v`` is recontaminated), and agents
used inside a finished subtree walk back through ``v`` and are reused; for
the final (largest) child no guard must stay because the first agent
stepping into it protects ``v``'s last contaminated neighbour.  Cleaning
children in increasing ``g`` order achieves the bound; a pigeonhole
argument shows no ordering does better, so the recursion is exact for the
fixed-homebase problem (the brute-force searcher cross-checks this on
every small tree in the tests).

:func:`tree_strategy_schedule` emits the corresponding move sequence —
a depth-first sweep with returns — which performs ``O(n)`` moves
(every edge is traversed at most twice per agent that crosses it, and
agents cross an edge only to clean the subtree behind it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.errors import TopologyError
from repro.topology.generic import GraphAdapter

__all__ = ["tree_search_number", "tree_strategy_schedule", "rooted_children"]


def rooted_children(graph: GraphAdapter, root: int) -> Dict[int, List[int]]:
    """Children lists of ``graph`` rooted at ``root`` (BFS orientation)."""
    if not graph.is_tree():
        raise TopologyError(f"{graph!r} is not a tree")
    children: Dict[int, List[int]] = {v: [] for v in graph.nodes()}
    seen = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for y in graph.neighbors(v):
                if y not in seen:
                    seen.add(y)
                    children[v].append(y)
                    nxt.append(y)
        frontier = nxt
    return children


def _g(children: Dict[int, List[int]], v: int) -> int:
    kids = children[v]
    if not kids:
        return 1
    values = sorted((_g(children, c) for c in kids), reverse=True)
    best = values[0]
    second = values[1] if len(values) > 1 else 0
    # one guard stays on v while any non-final child subtree is cleaned;
    # ties at the maximum force the guard during the tied sibling too
    return max(best, 1 + second)


def tree_search_number(graph: GraphAdapter, homebase: int = 0) -> int:
    """Minimal team for contiguous monotone search of a tree from ``homebase``."""
    children = rooted_children(graph, homebase)
    return _g(children, homebase)


def tree_strategy_schedule(graph: GraphAdapter, homebase: int = 0) -> Schedule:
    """A schedule achieving :func:`tree_search_number` agents.

    Recursive sweep: at ``v``, clean child subtrees in increasing ``g``
    order; before entering any non-final child, park one agent on ``v``;
    agents returning from a finished subtree gather back at ``v``.
    """
    children = rooted_children(graph, homebase)
    team = tree_search_number(graph, homebase)
    moves: List[Move] = []
    clock = [0]
    # agents are a free pool identified by ids; track their positions
    positions: Dict[int, int] = {i: homebase for i in range(team)}

    def emit(agent: int, src: int, dst: int) -> None:
        clock[0] += 1
        moves.append(
            Move(
                agent=agent,
                src=src,
                dst=dst,
                time=clock[0],
                role=AgentRole.AGENT,
                kind=MoveKind.DEPLOY,
            )
        )
        positions[agent] = dst

    def agents_at(v: int) -> List[int]:
        return sorted(a for a, p in positions.items() if p == v)

    def clean_subtree(v: int, squad: List[int]) -> None:
        """Clean the subtree under ``v``; ``squad`` sits on ``v``; at the
        end the whole squad is back on ``v`` (its subtree all clean)."""
        kids = sorted(children[v], key=lambda c: _g(children, c))
        for index, c in enumerate(kids):
            last = index == len(kids) - 1
            # how many agents dive into c: everyone except (for non-final
            # children) one guard left on v
            divers = squad if last else squad[:-1]
            need = _g(children, c)
            divers = divers[:need] if len(divers) > need else divers
            if not divers:
                raise TopologyError("internal error: no agents to dive")
            for a in divers:
                emit(a, v, c)
            clean_subtree(c, divers)
            if not last:
                for a in divers:
                    emit(a, c, v)
            else:
                # subtree of the last child is clean; bring everyone home
                for a in divers:
                    emit(a, c, v)

    # Clean the whole tree, then the team is parked on the homebase again.
    clean_subtree(homebase, list(range(team)))

    schedule = Schedule(
        dimension=0,
        strategy="tree-contiguous",
        moves=moves,
        team_size=team,
        homebase=homebase,
    )
    schedule.metadata["graph"] = graph.name
    schedule.metadata["graph_n"] = graph.n
    return schedule
