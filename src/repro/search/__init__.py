"""Baseline searchers for comparison with the paper's strategies.

The contiguous, monotone node-search *problem* is graph-generic (Section
1.2); this subpackage provides the reference points the ablation bench
(A1) compares the hypercube strategies against:

* :mod:`~repro.search.contiguous` — the exact state machine of the
  problem on arbitrary graphs (legal moves, monotonicity, goal test).
* :mod:`~repro.search.optimal` — brute-force optimal search: the true
  minimum team size (and minimum moves for that team) on small graphs, by
  BFS over the state space.
* :mod:`~repro.search.tree_search` — contiguous search on trees in the
  style of Barrière et al. [1]: the closed recursion for the minimal team
  from a fixed homebase plus a strategy generator achieving it.
* :mod:`~repro.search.level_sweep` — a naive hypercube baseline that
  guards two full adjacent levels at once; correct but uses ~2x the agents
  of Algorithm ``CLEAN`` and shows what the broadcast-tree structure buys.
"""

from repro.search.classical import (
    node_cleaning_search_number,
    node_search_number,
)
from repro.search.contiguous import SearchState, legal_moves, is_goal
from repro.search.frontier_sweep import bfs_boundary_width, frontier_sweep_schedule
from repro.search.harper import harper_sweep_schedule
from repro.search.level_sweep import LevelSweepStrategy
from repro.search.optimal import (
    minimum_moves,
    optimal_schedule,
    optimal_search_number,
    solvable_with,
)
from repro.search.tree_search import tree_search_number, tree_strategy_schedule

__all__ = [
    "SearchState",
    "legal_moves",
    "is_goal",
    "optimal_search_number",
    "solvable_with",
    "minimum_moves",
    "optimal_schedule",
    "tree_search_number",
    "tree_strategy_schedule",
    "LevelSweepStrategy",
    "node_search_number",
    "node_cleaning_search_number",
    "frontier_sweep_schedule",
    "bfs_boundary_width",
    "harper_sweep_schedule",
]
