"""The contiguous monotone node-search problem as an exact state machine.

A *state* is the pair (multiset of guard positions, set of clean nodes);
everything else is contaminated.  A *move* relocates one agent along an
edge.  The model's three constraints (Section 1.2 of the paper):

1. agents are never removed from the network — only edge moves;
2. the decontaminated region stays connected (automatic here: agents only
   move along edges from the connected start, and a vacated node stays
   safe only if its neighbourhood is, so the clean region grows around the
   guards);
3. no recontamination — a move that would strand a clean node next to a
   contaminated one is illegal (*monotone* search).

The legality test is local and exact: vacating ``src`` is allowed iff,
after the agent lands on ``dst``, every neighbour of ``src`` is clean or
guarded.  These states/moves are the substrate of the brute-force optimal
searcher in :mod:`~repro.search.optimal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["SearchState", "legal_moves", "is_goal", "initial_state", "apply_move"]


@dataclass(frozen=True)
class SearchState:
    """Immutable search state: guard positions (sorted) + clean set."""

    guards: Tuple[int, ...]  # sorted multiset of agent positions
    clean: frozenset  # clean (unguarded, decontaminated) nodes

    def guarded_set(self) -> frozenset:
        """Set of nodes holding at least one agent."""
        return frozenset(self.guards)

    def safe(self) -> frozenset:
        """Clean or guarded nodes."""
        return self.clean | frozenset(self.guards)

    def contaminated(self, n: int) -> frozenset:
        """Contaminated nodes of an ``n``-node graph."""
        return frozenset(range(n)) - self.safe()


def initial_state(agents: int, homebase: int = 0) -> SearchState:
    """All agents stacked on the homebase; nothing clean yet."""
    if agents < 1:
        raise ValueError("need at least one agent")
    return SearchState(guards=(homebase,) * agents, clean=frozenset())


def is_goal(state: SearchState, n: int) -> bool:
    """Whether every node is clean or guarded."""
    return len(state.safe()) == n


def apply_move(graph, state: SearchState, src: int, dst: int) -> SearchState:
    """The state after moving one agent ``src -> dst`` (assumed legal)."""
    guards = list(state.guards)
    guards.remove(src)
    guards.append(dst)
    guards.sort()
    clean = set(state.clean)
    clean.discard(dst)  # dst is now guarded
    if src not in guards:
        clean.add(src)
    return SearchState(guards=tuple(guards), clean=frozenset(clean))


def legal_moves(graph, state: SearchState) -> Iterator[Tuple[int, int]]:
    """All monotone moves ``(src, dst)`` available in ``state``.

    A move is legal iff ``dst`` is adjacent to ``src`` and, in the
    successor state, no clean node has a contaminated neighbour (it
    suffices to check ``src``, the only node that can newly become clean).
    """
    safe_now = state.safe()
    counts = {}
    for g in state.guards:
        counts[g] = counts.get(g, 0) + 1
    for src in sorted(set(state.guards)):
        for dst in graph.neighbors(src):
            if counts[src] > 1:
                yield (src, dst)  # src stays guarded; always monotone
                continue
            # src becomes clean: every neighbour must be safe afterwards
            ok = True
            for y in graph.neighbors(src):
                if y == dst:
                    continue  # dst becomes guarded by this very move
                if y not in safe_now:
                    ok = False
                    break
            if ok:
                yield (src, dst)
