"""Every numbered result of the paper as a callable closed form.

Each function documents which lemma/theorem it implements and, where the
paper's printed constant is ambiguous (the IPPS camera-ready garbles some
binomials), we follow the arithmetic *inside* the proof, which is
self-consistent and is what the simulations reproduce exactly.  The
documented discrepancies are listed in ``EXPERIMENTS.md``.

Conventions: ``d`` is the hypercube degree, ``n = 2**d``, levels are
popcounts, and ``C(a, b) = 0`` outside ``0 <= b <= a``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.counting import (
    binomial,
    leaves_at_level,
    total_leaves,
    type_count_at_level,
    weighted_leaf_sum,
)

__all__ = [
    "extra_agents_for_level",
    "extra_agents_for_level_by_types",
    "clean_active_agents_during_pass",
    "clean_peak_agents",
    "clean_peak_agents_maximizers",
    "clean_agent_moves_exact",
    "clean_sync_escort_moves",
    "clean_sync_moves_upper_bound",
    "clean_total_moves_upper_bound",
    "clean_with_cloning_agents",
    "agents_for_type",
    "visibility_agents",
    "visibility_time_steps",
    "visibility_moves_exact",
    "visibility_moves_by_edges",
    "cloning_agents",
    "cloning_moves",
    "cloning_time_steps",
    "n_over_log_n",
    "n_log_n",
]


# ---------------------------------------------------------------------- #
# Algorithm 1: CLEAN (Section 3)
# ---------------------------------------------------------------------- #


def extra_agents_for_level(d: int, level: int) -> int:
    """Lemma 3: extra agents requested before cleaning level ``l`` -> ``l+1``.

    Closed form ``C(d, l+1) - C(d-1, l)`` (the expression used inside the
    Lemma 4 proof).  Equivalently ``C(d, l+1) - C(d, l) + C(d-1, l-1)``:
    the next level needs ``C(d, l+1)`` guards, ``C(d, l)`` are already on
    level ``l``, and the ``C(d-1, l-1)`` agents on leaves of level ``l`` do
    not move down.
    """
    if not 1 <= level <= d - 1:
        return 0
    return binomial(d, level + 1) - binomial(d - 1, level)


def extra_agents_for_level_by_types(d: int, level: int) -> int:
    """Lemma 3, left-hand side: :math:`\\sum_{k=2}^{d-l} (k-1) C(d-k-1, l-1)`.

    The per-type accounting (``k - 1`` extras for each type-``T(k)`` node);
    the test suite checks it equals :func:`extra_agents_for_level`.
    """
    if not 1 <= level <= d - 1:
        return 0
    return sum(
        (k - 1) * type_count_at_level(d, k, level) for k in range(2, d - level + 1)
    )


def clean_active_agents_during_pass(d: int, level: int) -> int:
    """Lemma 4 proof: agents active while cleaning level ``l`` -> ``l+1``.

    ``C(d, l+1) + C(d-1, l-1) + 1`` (synchronizer included): the level-``l``
    guards plus the requested extras plus the synchronizer.
    """
    if not 1 <= level <= d - 1:
        return 0
    return binomial(d, level + 1) + binomial(d - 1, level - 1) + 1


def clean_peak_agents(d: int) -> int:
    """Theorem 2: team size of Algorithm ``CLEAN``.

    The maximum over all phases of the number of simultaneously employed
    agents: the root->level-1 phase needs ``d + 1`` (d agents plus the
    synchronizer) and pass ``l`` needs
    :func:`clean_active_agents_during_pass`.  The maximum sits at
    ``l = d/2`` or ``l = d/2 - 1`` (Lemma 4) and is
    :math:`\\Theta(C(d, d/2)) = \\Theta(n / \\sqrt{\\log n})`
    — the paper labels this ``O(n / log n)``; see EXPERIMENTS.md.

    Degenerate cases: ``d = 0`` needs 1 agent, ``d = 1`` needs 2.
    """
    if d == 0:
        return 1
    candidates = [d + 1]
    candidates += [clean_active_agents_during_pass(d, l) for l in range(1, d)]
    return max(candidates)


def clean_peak_agents_maximizers(d: int) -> List[int]:
    """The levels ``l`` achieving the Theorem 2 maximum (``d/2``, ``d/2-1``
    for even ``d``)."""
    if d <= 1:
        return []
    peak = max(clean_active_agents_during_pass(d, l) for l in range(1, d))
    return [l for l in range(1, d) if clean_active_agents_during_pass(d, l) == peak]


def clean_agent_moves_exact(d: int) -> int:
    """Theorem 3 (agent component): :math:`\\sum_l 2 l C(d-1, l-1)`.

    Every plain agent's journey is root -> leaf -> root; a leaf at level
    ``l`` accounts for ``2 l`` moves.  Equals ``(d+1) 2^{d-1}``
    = ``(n/2)(log n + 1)`` for ``d >= 2``.
    """
    return 2 * weighted_leaf_sum(d)


def clean_sync_escort_moves(d: int) -> int:
    """Theorem 3, synchronizer component 4: ``2 (n - 1)``.

    Each broadcast-tree edge is traveled twice by the synchronizer
    (go down with the agent, come back).
    """
    return 2 * ((1 << d) - 1)


def clean_sync_moves_upper_bound(d: int) -> int:
    """Theorem 3, synchronizer components 1-4 summed as upper bounds.

    1. return to the root before each pass: :math:`\\sum_{l=1}^{d-1} l`;
    2. go to the first node of each level: :math:`\\sum_{l=1}^{d} l`;
    3. navigate within level ``l``: at most ``2 min(l, d-l)`` per hop and
       ``C(d, l)`` hops;
    4. escort every tree edge twice: ``2 (n-1)``.
    """
    part1 = sum(range(1, d))
    part2 = sum(range(1, d + 1))
    part3 = sum(2 * min(l, d - l) * binomial(d, l) for l in range(1, d))
    part4 = clean_sync_escort_moves(d)
    return part1 + part2 + part3 + part4


def clean_total_moves_upper_bound(d: int) -> int:
    """Theorem 3: total moves of ``CLEAN`` are at most agent moves plus the
    synchronizer bound — ``O(n log n)``."""
    return clean_agent_moves_exact(d) + clean_sync_moves_upper_bound(d)


def clean_with_cloning_agents(d: int) -> int:
    """Section 5 observation: cloning does not help Algorithm ``CLEAN``.

    If every dispatched agent were a fresh clone (no reuse via returns),
    the team grows to ``d + sum_l extras + 1 = n/2 + 1`` agents.
    """
    if d == 0:
        return 1
    extras = sum(extra_agents_for_level(d, l) for l in range(1, d))
    return d + extras + 1


# ---------------------------------------------------------------------- #
# Algorithm 2: CLEAN WITH VISIBILITY (Section 4) and Section 5 variants
# ---------------------------------------------------------------------- #


def agents_for_type(k: int) -> int:
    """Agents a type-``T(k)`` node must gather before acting (Algorithm 2).

    ``2^{k-1}`` for ``k >= 1`` and ``1`` for the leaves (``k = 0``); note
    ``2^{k-1} = 1 + \\sum_{i=1}^{k-1} 2^{i-1}``, so the gathered agents are
    exactly the ones forwarded to the children (Theorem 5).
    """
    if k < 0:
        raise ValueError(f"type must be >= 0, got {k}")
    return 1 if k == 0 else 1 << (k - 1)


def visibility_agents(d: int) -> int:
    """Theorem 5: the visibility strategy employs ``n/2`` agents.

    (``1`` for the degenerate ``d = 0`` single-node network.)
    """
    if d < 0:
        raise ValueError(f"dimension must be >= 0, got {d}")
    return 1 if d == 0 else 1 << (d - 1)


def visibility_time_steps(d: int) -> int:
    """Theorem 7: the visibility strategy finishes in ``d = log n`` steps.

    Wave ``i`` (``0 <= i < d``) moves exactly the agents sitting on class
    :math:`C_i` nodes; the last arrivals land at time ``d``.
    """
    return d


def visibility_moves_exact(d: int) -> int:
    """Theorem 8: total moves :math:`\\sum_l l \\, C(d-1, l-1)`.

    Each of the ``n/2`` agents walks root -> leaf once (no returns); equals
    ``(d+1) 2^{d-2}`` for ``d >= 2``, i.e. ``(n/4)(log n + 1) = O(n log n)``.
    """
    return weighted_leaf_sum(d)


def visibility_moves_by_edges(d: int) -> int:
    """Theorem 8 cross-check: sum over tree edges of agents crossing them.

    The edge into a type-``T(k)`` node carries
    :func:`agents_for_type` ``(k)`` agents; summing over all non-root nodes
    must equal :func:`visibility_moves_exact` (tested identity).
    """
    total = 0
    for k in range(0, d):
        # nodes of type T(k) across all levels, excluding the root
        count = sum(type_count_at_level(d, k, level) for level in range(1, d + 1))
        total += count * agents_for_type(k)
    return total


def cloning_agents(d: int) -> int:
    """Section 5: agents created by the cloning variant — one per leaf,
    ``n/2`` in total (``1`` for ``d = 0``)."""
    return total_leaves(d)


def cloning_moves(d: int) -> int:
    """Section 5: the cloning variant moves exactly ``n - 1`` times — one
    traversal per broadcast-tree edge."""
    return (1 << d) - 1


def cloning_time_steps(d: int) -> int:
    """Section 5: cloning keeps the ``log n`` wave schedule."""
    return d


# ---------------------------------------------------------------------- #
# asymptotic reference curves
# ---------------------------------------------------------------------- #


def n_over_log_n(d: int) -> float:
    """Reference curve ``n / log2(n)`` (the paper's agent bound label)."""
    if d == 0:
        return 1.0
    return (1 << d) / d


def n_log_n(d: int) -> float:
    """Reference curve ``n * log2(n)`` (the paper's move/time bound)."""
    return (1 << d) * d


def summary_table(d: int) -> Dict[str, Dict[str, int]]:
    """The Section 1.3 / Section 5 comparison table for one ``d``.

    Rows: strategy; columns: agents, steps (exact where the paper is
    exact), and exact move counts where available (``CLEAN``'s total moves
    depend on the synchronizer's walk and are reported by simulation; here
    the agent component and the bound are given).
    """
    return {
        "clean": {
            "agents": clean_peak_agents(d),
            "agent_moves": clean_agent_moves_exact(d),
            "moves_upper_bound": clean_total_moves_upper_bound(d),
        },
        "visibility": {
            "agents": visibility_agents(d),
            "steps": visibility_time_steps(d),
            "moves": visibility_moves_exact(d),
        },
        "cloning": {
            "agents": cloning_agents(d),
            "steps": cloning_time_steps(d),
            "moves": cloning_moves(d),
        },
        "synchronous": {
            "agents": visibility_agents(d),
            "steps": visibility_time_steps(d),
            "moves": visibility_moves_exact(d),
        },
    }
