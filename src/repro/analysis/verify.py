"""Schedule verification: the paper's correctness claims, checked by replay.

:class:`ScheduleVerifier` replays a :class:`~repro.core.schedule.Schedule`
move by move against the exact contamination dynamics
(:class:`~repro.sim.contamination.ContaminationMap`) with an omniscient
:class:`~repro.sim.intruder.ReachableSetIntruder` co-simulated, and checks:

* **structure** — moves are along edges, agents chain positions, agents
  start at the homebase (unless cloning);
* **monotonicity** (Theorems 1 and 6) — no clean node is ever
  recontaminated;
* **contiguity** — the decontaminated region stays connected at every time
  boundary (the defining constraint of contiguous search);
* **completeness** — the network ends with no contaminated node;
* **capture** — the intruder's possible-location set is empty at the end.

The verifier returns a :class:`VerificationReport` carrying the per-node
first-visit and clean times (used by the figure benches) and every violation
found when run in collecting (non-strict) mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._bitops import iter_set_bits
from repro.core.schedule import Schedule
from repro.errors import (
    ContiguityError,
    IncompleteCleaningError,
    RecontaminationError,
    VerificationError,
)
from repro.sim.contamination import ContaminationMap
from repro.sim.intruder import ReachableSetIntruder
from repro.topology.hypercube import Hypercube

__all__ = ["VerificationReport", "ScheduleVerifier", "verify_schedule"]


@dataclass
class VerificationReport:
    """Outcome of replaying one schedule.

    ``visit_times[x]`` is the completion time of the first agent arrival at
    ``x`` (0 for the homebase); ``clean_times[x]`` is the time ``x``
    transitioned to clean (guard count reached zero with a safe
    neighbourhood) — nodes still guarded at the end have no entry.
    """

    dimension: int
    strategy: str
    monotone: bool
    contiguous: bool
    complete: bool
    intruder_captured: bool
    total_moves: int
    makespan: int
    team_size: int
    visit_times: Dict[int, int] = field(default_factory=dict)
    clean_times: Dict[int, int] = field(default_factory=dict)
    first_visit_order: List[int] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All four correctness predicates hold and nothing was violated."""
        return (
            self.monotone
            and self.contiguous
            and self.complete
            and self.intruder_captured
            and not self.violations
        )

    def raise_if_failed(self) -> None:
        """Raise the most specific error if verification failed."""
        if not self.monotone:
            raise RecontaminationError(
                f"{self.strategy}(d={self.dimension}): recontamination occurred"
            )
        if not self.contiguous:
            raise ContiguityError(
                f"{self.strategy}(d={self.dimension}): decontaminated region disconnected"
            )
        if not self.complete:
            raise IncompleteCleaningError(
                f"{self.strategy}(d={self.dimension}): contaminated nodes remain"
            )
        if not self.intruder_captured:
            raise VerificationError(
                f"{self.strategy}(d={self.dimension}): intruder not captured"
            )
        if self.violations:
            raise VerificationError(
                f"{self.strategy}(d={self.dimension}): {self.violations[0]}"
            )

    def summary(self) -> str:
        """One-line verdict used by benches and the CLI."""
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"[{verdict}] {self.strategy}(d={self.dimension}): "
            f"monotone={self.monotone} contiguous={self.contiguous} "
            f"complete={self.complete} captured={self.intruder_captured} "
            f"moves={self.total_moves} makespan={self.makespan} team={self.team_size}"
        )


class ScheduleVerifier:
    """Replays schedules against the contamination dynamics.

    Parameters
    ----------
    topology:
        The topology to replay on; defaults to ``Hypercube(schedule.dimension)``.
    check_contiguity_every_move:
        If true, connectivity is checked after every single move rather
        than only at time-unit boundaries (slower; used in tests).
    check_contiguity:
        If false, the connectivity check is skipped entirely
        (monotonicity/completeness/capture still checked).  With the
        incrementally maintained bitset state this check is amortized
        O(1) per boundary, so skipping it is rarely worth it anymore.
    """

    def __init__(
        self,
        topology: Optional[Hypercube] = None,
        *,
        check_contiguity_every_move: bool = False,
        check_contiguity: bool = True,
    ) -> None:
        self._topology = topology
        self._every_move = check_contiguity_every_move
        self._check_contiguity = check_contiguity

    def verify(self, schedule: Schedule) -> VerificationReport:
        """Replay ``schedule`` and return a full report (never raises for
        invariant failures; structural malformation still raises
        :class:`~repro.errors.ScheduleError`)."""
        topo = self._topology or Hypercube(schedule.dimension)
        schedule.validate_structure(topo)

        cmap = ContaminationMap(topo, homebase=schedule.homebase, strict=False)
        violations: List[str] = []

        # Deploy the team on the homebase. Cloning schedules materialize
        # agents lazily (place_agent checks they appear on guarded nodes).
        positions: Dict[int, int] = {}
        team = max(schedule.team_size, schedule.agents_used(), 1)
        if schedule.uses_cloning:
            # one initial agent (id 0 by convention); clones materialize
            # lazily at their first move
            cmap.place_agent(schedule.homebase)
            positions[0] = schedule.homebase
        else:
            for _ in range(team):
                cmap.place_agent(schedule.homebase)

        intruder = ReachableSetIntruder(cmap)
        clean_times: Dict[int, int] = {}
        contiguous = cmap.is_contiguous()
        last_time = 0

        def boundary_checks() -> None:
            nonlocal contiguous
            if not self._check_contiguity:
                return
            if not cmap.is_contiguous():
                contiguous = False
                violations.append(f"region disconnected at time {last_time}")

        for time, group in schedule.by_time():
            last_time = time
            if schedule.uses_cloning:
                # clones exist before anything departs in this time unit:
                # place every agent making its first move now at its source
                # (place_agent rejects contaminated placements)
                for move in group:
                    if move.agent not in positions:
                        cmap.place_agent(move.src)
                        positions[move.agent] = move.src
            for move in group:
                clean_before = cmap.clean_mask
                cmap.move_agent(move.src, move.dst)
                positions[move.agent] = move.dst
                # mask delta, not set difference: materializing the full
                # clean set twice per move made verification O(moves * n)
                # and dominated every d >= 10 sweep
                for node in iter_set_bits(cmap.clean_mask & ~clean_before):
                    clean_times.setdefault(node, move.time)
                intruder.observe(cmap)
                if self._every_move:
                    boundary_checks()
            boundary_checks()
        boundary_checks()

        monotone = cmap.is_monotone()
        for node, cause in cmap.recontamination_events:
            violations.append(f"node {node} recontaminated from {cause}")
        complete = cmap.all_clean()
        if not complete:
            remaining = sorted(cmap.contaminated_nodes())
            violations.append(f"{len(remaining)} contaminated nodes remain: {remaining[:8]}")

        return VerificationReport(
            dimension=schedule.dimension,
            strategy=schedule.strategy,
            monotone=monotone,
            contiguous=contiguous,
            complete=complete,
            intruder_captured=intruder.captured,
            total_moves=schedule.total_moves,
            makespan=schedule.makespan,
            team_size=team,
            visit_times=schedule.visit_time(),
            clean_times=clean_times,
            first_visit_order=cmap.first_visit_order,
            violations=violations,
        )


def verify_schedule(schedule: Schedule, **kwargs) -> VerificationReport:
    """Convenience wrapper: ``ScheduleVerifier(**kwargs).verify(schedule)``."""
    topology = kwargs.pop("topology", None)
    return ScheduleVerifier(topology, **kwargs).verify(schedule)
