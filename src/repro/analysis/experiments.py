"""Programmatic experiment registry: every EXPERIMENTS.md entry as a call.

``run_experiment("E4")`` regenerates one paper artifact and returns an
:class:`ExperimentResult` with the rendered rows and a pass/fail verdict;
``run_all()`` sweeps the lot.  This is the library-level twin of the bench
suite (the benches add wall-clock timing on top), used by the CLI's
``experiment`` subcommand and handy for notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import formulas
from repro.analysis.asymptotics import fit_growth, is_bounded_ratio
from repro.analysis.verify import verify_schedule
from repro.core.states import AgentRole
from repro.core.strategy import get_strategy
from repro.errors import ReproError

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "run_all",
    "experiment_ids",
    "experiment_title",
]


@dataclass
class ExperimentResult:
    """Outcome of regenerating one paper artifact."""

    experiment_id: str
    title: str
    passed: bool
    lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable verdict block (header + indented rows)."""
        head = f"[{'PASS' if self.passed else 'FAIL'}] {self.experiment_id} — {self.title}"
        return "\n".join([head] + [f"  {line}" for line in self.lines])


Runner = Callable[[], Tuple[List[str], bool]]
_REGISTRY: Dict[str, Tuple[str, Runner]] = {}


def _register(exp_id: str, title: str):
    def deco(fn: Runner) -> Runner:
        _REGISTRY[exp_id] = (title, fn)
        return fn

    return deco


# ---------------------------------------------------------------------- #
# figures
# ---------------------------------------------------------------------- #


@_register("F1", "Figure 1: broadcast tree T(6) of H_6")
def _f1():
    from repro.topology.broadcast_tree import BroadcastTree
    from repro.topology.heap_queue import HeapQueue

    tree = BroadcastTree(6)
    tree.validate()
    ok = HeapQueue(6).isomorphic_to_broadcast_tree(tree)
    lines = [f"level {l}: {tree.type_census(l)}" for l in range(7)]
    return lines, ok and len(tree.leaves()) == 32


@_register("F2", "Figure 2: CLEAN's cleaning order on H_4")
def _f2():
    from repro.topology.hypercube import Hypercube

    schedule = get_strategy("clean").run(4)
    order = schedule.first_visit_order()
    h = Hypercube(4)
    levels = [h.level(x) for x in order]
    ok = levels == sorted(levels) and order[1:5] == [1, 2, 4, 8]
    return [f"visit order: {order}"], ok and verify_schedule(schedule).ok


@_register("F3", "Figure 3: classes C_i of H_4")
def _f3():
    from repro.topology.hypercube import Hypercube

    h = Hypercube(4)
    classes = h.classes()
    ok = [len(c) for c in classes] == [1, 1, 2, 4, 8]
    return [f"C_{i}: {members}" for i, members in enumerate(classes)], ok


@_register("F4", "Figure 4: visibility cleaning order on H_4")
def _f4():
    from repro.topology.broadcast_tree import BroadcastTree
    from repro.topology.hypercube import Hypercube

    schedule = get_strategy("visibility").run(4)
    h, tree = Hypercube(4), BroadcastTree(4)
    times = schedule.visit_time()
    ok = True
    lines = []
    for t in range(4):
        arrivals = sorted(x for x, w in times.items() if w == t + 1)
        expected = sorted(
            c for p in h.class_members(t) for c in tree.children(p)
        )
        ok = ok and arrivals == expected
        lines.append(f"wave {t} -> arrivals {arrivals}")
    return lines, ok and verify_schedule(schedule).ok


# ---------------------------------------------------------------------- #
# table + theorems
# ---------------------------------------------------------------------- #


@_register("T1", "Section 1.3 strategy comparison table")
def _t1():
    lines, ok = [], True
    for d in (2, 4, 6, 8):
        row = []
        for name in ("clean", "visibility", "cloning", "synchronous"):
            s = get_strategy(name).run(d)
            ok = ok and verify_schedule(s).ok
            row.append(f"{name}={s.team_size}/{s.total_moves}/{s.makespan}")
        lines.append(f"d={d}: " + "  ".join(row))
    return lines, ok


@_register("E1", "Theorem 2: CLEAN team size (exact formula)")
def _e1():
    lines, ok = [], True
    for d in range(1, 10):
        team = get_strategy("clean").run(d).team_size
        expected = formulas.clean_peak_agents(d)
        ok = ok and team == expected
        lines.append(f"d={d}: team {team} (formula {expected})")
    dims = list(range(4, 16))
    fit = fit_growth(dims, [formulas.clean_peak_agents(d) for d in dims])
    lines.append(f"growth {fit.describe()} — Θ(n/sqrt(log n)); paper label O(n/log n)")
    return lines, ok and -0.8 < fit.exponent_log < -0.3


@_register("E2", "Theorem 3: CLEAN move decomposition")
def _e2():
    lines, ok = [], True
    for d in range(2, 10):
        s = get_strategy("clean").run(d)
        agent = s.moves_by_role()[AgentRole.AGENT]
        sync = s.moves_by_role()[AgentRole.SYNCHRONIZER]
        ok = ok and agent == formulas.clean_agent_moves_exact(d)
        ok = ok and sync <= formulas.clean_sync_moves_upper_bound(d)
        lines.append(f"d={d}: agent {agent} (exact), sync {sync} (bounded)")
    return lines, ok


@_register("E3", "Theorem 4: CLEAN ideal time O(n log n)")
def _e3():
    dims = list(range(2, 10))
    spans = [get_strategy("clean").run(d).makespan for d in dims]
    ok = is_bounded_ratio(dims, spans, lambda d: (1 << d) * d)
    return [f"makespans {dict(zip(dims, spans))}"], ok


@_register("E4", "Theorem 5: visibility uses n/2 agents")
def _e4():
    lines, ok = [], True
    for d in range(1, 10):
        team = get_strategy("visibility").run(d).team_size
        ok = ok and team == (1 << d) // 2
        lines.append(f"d={d}: {team} agents (n/2 = {(1 << d) // 2})")
    return lines, ok


@_register("E5", "Theorem 7: visibility cleans in log n steps")
def _e5():
    lines, ok = [], True
    for d in range(1, 10):
        steps = get_strategy("visibility").run(d).makespan
        ok = ok and steps == d
        lines.append(f"d={d}: {steps} steps")
    return lines, ok


@_register("E6", "Theorem 8: visibility moves (n/4)(log n + 1)")
def _e6():
    lines, ok = [], True
    for d in range(1, 11):
        moves = get_strategy("visibility").run(d).total_moves
        ok = ok and moves == formulas.visibility_moves_exact(d)
        lines.append(f"d={d}: {moves} moves (formula {formulas.visibility_moves_exact(d)})")
    return lines, ok


@_register("E7", "Section 5: cloning variant (n/2 agents, n-1 moves)")
def _e7():
    lines, ok = [], True
    for d in range(1, 10):
        s = get_strategy("cloning").run(d)
        ok = ok and (s.team_size, s.total_moves, s.makespan) == (
            (1 << d) // 2,
            (1 << d) - 1,
            d,
        )
        lines.append(f"d={d}: {s.team_size} agents / {s.total_moves} moves / {s.makespan} steps")
    return lines, ok


@_register("E8", "Section 5: synchronous variant ≡ visibility")
def _e8():
    lines, ok = [], True
    for d in range(1, 9):
        a = get_strategy("synchronous").run(d)
        b = get_strategy("visibility").run(d)
        same = (a.team_size, a.total_moves, a.makespan) == (
            b.team_size,
            b.total_moves,
            b.makespan,
        )
        ok = ok and same
        lines.append(f"d={d}: {'identical' if same else 'DIFFER'}")
    return lines, ok


@_register("E9", "Theorems 1 & 6: correctness under asynchrony")
def _e9():
    from repro.protocols import run_clean_protocol, run_visibility_protocol
    from repro.sim.scheduling import RandomDelay

    lines, ok = [], True
    for seed in (0, 1):
        r = run_visibility_protocol(4, delay=RandomDelay(seed=seed))
        ok = ok and r.ok
        lines.append(f"visibility seed {seed}: {'OK' if r.ok else 'FAILED'}")
    r = run_clean_protocol(3, delay=RandomDelay(seed=0))
    ok = ok and r.ok
    lines.append(f"clean seed 0: {'OK' if r.ok else 'FAILED'}")
    return lines, ok


@_register("A1", "Ablation: optimality gap and reuse choreography")
def _a1():
    from repro.search.optimal import optimal_search_number
    from repro.topology.generic import hypercube_graph

    lines, ok = [], True
    for d in (1, 2, 3):
        opt = optimal_search_number(hypercube_graph(d))
        vis = get_strategy("visibility").run(d).team_size
        lines.append(f"H_{d}: optimal {opt}, visibility {vis}")
        ok = ok and opt <= vis
    return lines, ok


@_register("A2", "Ablation: O(log n) whiteboard memory")
def _a2():
    from repro.protocols import run_visibility_protocol

    peaks = {}
    for d in (3, 4, 5):
        peaks[d] = run_visibility_protocol(d).peak_whiteboard_bits
    deltas = [peaks[4] - peaks[3], peaks[5] - peaks[4]]
    ok = all(delta <= 8 for delta in deltas)
    return [f"peak whiteboard bits: {peaks}"], ok


@_register("A3", "Ablation: contiguous vs classical search models")
def _a3():
    from repro.search.classical import node_cleaning_search_number, node_search_number
    from repro.search.optimal import optimal_search_number
    from repro.topology.generic import hypercube_graph, path_graph, tree_graph

    lines, ok = [], True
    for g in (path_graph(6), tree_graph([0, 0, 1, 1, 2, 2]), hypercube_graph(3)):
        ns = node_search_number(g)
        free = node_cleaning_search_number(g)
        cont = optimal_search_number(g)
        ok = ok and free <= cont
        lines.append(f"{g.name}: edge-ns {ns}, free-node {free}, contiguous {cont}")
    return lines, ok


@_register("A4", "Ablation: generic BFS frontier sweep")
def _a4():
    from repro.search.frontier_sweep import frontier_sweep_schedule
    from repro.topology.generic import grid_graph, hypercube_graph
    from repro.analysis.verify import ScheduleVerifier

    lines, ok = [], True
    for d in (4, 5, 6):
        g = hypercube_graph(d)
        sweep = frontier_sweep_schedule(g)
        ok = ok and ScheduleVerifier(g).verify(sweep).ok
        clean_team = formulas.clean_peak_agents(d)
        ok = ok and sweep.team_size <= clean_team
        lines.append(f"H_{d}: frontier team {sweep.team_size} <= CLEAN team {clean_team}")
    grid = grid_graph(4, 4)
    sweep = frontier_sweep_schedule(grid)
    ok = ok and ScheduleVerifier(grid).verify(sweep).ok
    lines.append(f"grid_4x4: team {sweep.team_size}, moves {sweep.total_moves}")
    return lines, ok


@_register("A5", "Open problem: monotone lower bound vs Harper sweep")
def _a5():
    from repro.analysis.lower_bounds import monotone_agents_lower_bound
    from repro.search.harper import harper_sweep_schedule

    lines, ok = [], True
    for d in range(2, 9):
        lb = monotone_agents_lower_bound(d)
        harper = harper_sweep_schedule(d).team_size
        clean = formulas.clean_peak_agents(d)
        ok = ok and lb <= harper <= lb + 1 and lb <= clean
        lines.append(f"d={d}: LB {lb} <= harper {harper} <= LB+1; clean {clean}")
    return lines, ok


@_register("A6", "Ablation: localized quarantine vs full sweep (§1.1)")
def _a6():
    from repro.sim.quarantine import quarantine_and_clean
    from repro.topology.generic import hypercube_graph

    d = 6
    graph = hypercube_graph(d)
    full = get_strategy("clean").run(d).total_moves
    lines, ok = [], True
    start = graph.n - 1
    patch = {start}
    for size in (2, 4, 8):
        while len(patch) < size:
            for node in sorted(patch):
                for y in graph.neighbors(node):
                    if y not in patch and len(patch) < size:
                        patch.add(y)
        report = quarantine_and_clean(graph, set(patch))
        ok = ok and report.ok and report.moves < full
        lines.append(
            f"|C|={size}: {report.moves} sweep moves vs {full} for a full CLEAN"
        )
    return lines, ok


# ---------------------------------------------------------------------- #


def experiment_ids() -> List[str]:
    """All registered experiment ids, figures first."""
    return sorted(_REGISTRY)


def experiment_title(exp_id: str) -> Optional[str]:
    """The registered title for ``exp_id`` (``None`` for unknown ids)."""
    entry = _REGISTRY.get(exp_id)
    return entry[0] if entry else None


def run_experiment(exp_id: str) -> ExperimentResult:
    """Regenerate one paper artifact; raises for unknown ids."""
    try:
        title, runner = _REGISTRY[exp_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {exp_id!r}; available: {experiment_ids()}"
        ) from None
    lines, passed = runner()
    return ExperimentResult(exp_id, title, passed, lines)


def run_all() -> List[ExperimentResult]:
    """Regenerate every artifact (figures, table, theorems, ablations)."""
    return [run_experiment(exp_id) for exp_id in experiment_ids()]
