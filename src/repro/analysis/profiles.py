"""Time profiles of a schedule: who is deployed where, when.

The complexity theorems quote peaks and totals; the *profiles* show the
shape behind them — e.g. Algorithm ``CLEAN``'s deployment count rises and
falls with the Lemma 4 sawtooth (collect extras, push a level, retire the
leaves), while the visibility strategy is a single pyramid that empties
the homebase in one wave.  Used by the agent-profile tests and handy for
plotting.
"""

from __future__ import annotations

from typing import Dict, List

from repro._bitops import popcount
from repro.core.schedule import Schedule

__all__ = [
    "deployed_agents_profile",
    "guards_per_level_profile",
    "peak_deployed",
]


def deployed_agents_profile(schedule: Schedule) -> Dict[int, int]:
    """``{time: agents away from the homebase}`` after each time unit.

    Time 0 maps to 0 (everyone is parked at the homebase); for cloning
    schedules agents count from their first move (clones are "away" the
    moment they exist anywhere but home).
    """
    position: Dict[int, int] = {}
    profile: Dict[int, int] = {0: 0}
    for time, group in schedule.by_time():
        for move in group:
            position[move.agent] = move.dst
        profile[time] = sum(1 for p in position.values() if p != schedule.homebase)
    return profile


def peak_deployed(schedule: Schedule) -> int:
    """Maximum simultaneous deployment (the working-team high-water mark)."""
    return max(deployed_agents_profile(schedule).values())


def guards_per_level_profile(schedule: Schedule) -> List[Dict[int, int]]:
    """Per time unit: ``{level: guards}`` for agents away from home.

    Levels are hypercube popcounts; the homebase's resident pool is
    excluded (it is level 0 anyway).  The CLEAN profile shows one level
    saturating while the next fills — the paper's level-by-level narrative
    in numbers.
    """
    position: Dict[int, int] = {}
    snapshots: List[Dict[int, int]] = []
    for _, group in schedule.by_time():
        for move in group:
            position[move.agent] = move.dst
        census: Dict[int, int] = {}
        for node in position.values():
            if node == schedule.homebase:
                continue
            level = popcount(node)
            census[level] = census.get(level, 0) + 1
        snapshots.append(census)
    return snapshots
