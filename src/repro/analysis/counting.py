"""Binomial identities and censuses underlying the paper's proofs.

These are the arithmetic facts the complexity proofs lean on (Section 3.2.1
cites them as "known results"); each is implemented directly so the tests
can confirm the identity on every small instance rather than trusting it.
"""

from __future__ import annotations

from math import comb
from typing import Dict, List

__all__ = [
    "binomial",
    "level_sizes",
    "sum_of_level_sizes",
    "leaves_at_level",
    "total_leaves",
    "weighted_leaf_sum",
    "type_count_at_level",
    "nodes_of_type_census",
    "vandermonde_sum",
    "central_binomial",
]


def binomial(n: int, k: int) -> int:
    """``C(n, k)`` with the usual convention ``C(n, k) = 0`` for ``k < 0``
    or ``k > n`` (the proofs use this convention explicitly)."""
    if k < 0 or n < 0 or k > n:
        return 0
    return comb(n, k)


def level_sizes(d: int) -> List[int]:
    """``[C(d, l) for l in 0..d]`` — nodes per level of :math:`H_d`."""
    return [binomial(d, l) for l in range(d + 1)]


def sum_of_level_sizes(d: int) -> int:
    """:math:`\\sum_l C(d, l) = 2^d` (the identity used in Theorem 3)."""
    return sum(level_sizes(d))


def leaves_at_level(d: int, level: int) -> int:
    """``C(d-1, level-1)`` — broadcast-tree leaves at ``level`` (Property 2).

    For ``d == 0``, the single node is a leaf at level 0.
    """
    if d == 0:
        return 1 if level == 0 else 0
    return binomial(d - 1, level - 1)


def total_leaves(d: int) -> int:
    """:math:`\\sum_l C(d-1, l-1) = 2^{d-1}` leaves in total (``1`` for d=0)."""
    return sum(leaves_at_level(d, l) for l in range(d + 1))


def weighted_leaf_sum(d: int) -> int:
    """:math:`\\sum_l l \\cdot C(d-1, l-1) = (d+1) 2^{d-2}` (Theorem 3).

    This is half the exact agent-move count of Algorithm ``CLEAN`` and the
    exact move count of the visibility strategy (Theorem 8).  For ``d < 2``
    the closed form ``(d+1)*2**(d-2)`` is fractional, so the sum is
    returned directly (d=0: 0, d=1: 1).
    """
    return sum(l * leaves_at_level(d, l) for l in range(d + 1))


def type_count_at_level(d: int, k: int, level: int) -> int:
    """Number of type-``T(k)`` broadcast-tree nodes at ``level`` (Property 1).

    ``C(d-k-1, level-1)`` for ``level > 0``; level 0 holds the unique
    ``T(d)`` root.
    """
    if level == 0:
        return 1 if k == d else 0
    return binomial(d - k - 1, level - 1)


def nodes_of_type_census(d: int, level: int) -> Dict[int, int]:
    """``{k: count}`` of node types at ``level`` (nonzero entries only)."""
    if level == 0:
        return {d: 1}
    out = {}
    for k in range(0, d - level + 1):
        c = type_count_at_level(d, k, level)
        if c:
            out[k] = c
    return out


def vandermonde_sum(d: int, L: int) -> int:
    """:math:`\\sum_i C(i, 1) C(d-2-i, L) = C(d-1, L+2)` (Lemma 3's (4)).

    Returns the left-hand side computed directly; the test suite checks it
    equals ``C(d-1, L+2)``.
    """
    return sum(binomial(i, 1) * binomial(d - 2 - i, L) for i in range(0, d - 1))


def central_binomial(d: int) -> int:
    """``C(d, ceil(d/2))`` — the dominant term of Theorem 2's agent count."""
    return binomial(d, (d + 1) // 2)
