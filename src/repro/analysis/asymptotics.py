"""Empirical growth-rate checks for the paper's asymptotic claims.

The paper states bounds like ``O(n log n)`` moves or ``O(n / log n)``
agents.  The benches verify these *by shape*: measure the quantity for a
range of dimensions, divide by the candidate growth function, and check the
ratio stabilizes (bounded, non-diverging).  :func:`fit_growth` also
estimates the best exponent pair ``(a, b)`` for a model
``c * n^a * (log2 n)^b`` by least squares in log space, which is how
EXPERIMENTS.md reports "who wins by what factor".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

# Predates the kernel-backend seam; least-squares fitting has no pure
# fallback (numpy is a declared dependency, not an optional accelerator).
import numpy as np  # repro-lint: disable=RPR250

__all__ = ["GrowthFit", "fit_growth", "growth_ratio_table", "is_bounded_ratio"]


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting ``value ~ c * n^a * (log2 n)^b``.

    Attributes
    ----------
    exponent_n:
        The fitted power ``a`` of ``n``.
    exponent_log:
        The fitted power ``b`` of ``log2 n``.
    constant:
        The fitted multiplicative constant ``c``.
    residual:
        RMS residual in log2 space (goodness of fit; small is good).
    """

    exponent_n: float
    exponent_log: float
    constant: float
    residual: float

    def describe(self) -> str:
        """Human-readable model string."""
        return (
            f"{self.constant:.3g} * n^{self.exponent_n:.3f} "
            f"* (log n)^{self.exponent_log:.3f}  (rms resid {self.residual:.3g})"
        )


def fit_growth(dimensions: Sequence[int], values: Sequence[float]) -> GrowthFit:
    """Least-squares fit of ``values[i] ~ c * n_i^a * (log2 n_i)^b``.

    ``n_i = 2**dimensions[i]``; requires at least three samples with
    ``d >= 2`` so ``log log`` terms are defined and the system is
    determined.
    """
    ds = np.asarray(dimensions, dtype=float)
    vs = np.asarray(values, dtype=float)
    mask = (ds >= 2) & (vs > 0)
    ds, vs = ds[mask], vs[mask]
    if ds.size < 3:
        raise ValueError("need at least three samples with d >= 2 and value > 0")
    # log2(value) = log2(c) + a*d + b*log2(d)
    design = np.column_stack([np.ones_like(ds), ds, np.log2(ds)])
    target = np.log2(vs)
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    predicted = design @ coeffs
    residual = float(np.sqrt(np.mean((predicted - target) ** 2)))
    return GrowthFit(
        exponent_n=float(coeffs[1]),
        exponent_log=float(coeffs[2]),
        constant=float(2.0 ** coeffs[0]),
        residual=residual,
    )


def growth_ratio_table(
    dimensions: Sequence[int],
    values: Sequence[float],
    reference: Callable[[int], float],
) -> List[Tuple[int, float, float, float]]:
    """Rows ``(d, value, reference(d), value / reference(d))``.

    The benches print these to show e.g. ``moves / (n log n)`` flattening.
    """
    rows = []
    for d, v in zip(dimensions, values):
        ref = float(reference(d))
        rows.append((d, float(v), ref, float(v) / ref if ref else float("nan")))
    return rows


def is_bounded_ratio(
    dimensions: Sequence[int],
    values: Sequence[float],
    reference: Callable[[int], float],
    *,
    tolerance: float = 1.15,
) -> bool:
    """Whether ``value / reference`` is non-diverging over the sample.

    Accepts if the final ratio is at most ``tolerance`` times the maximum
    ratio seen over the *first half* of the sample — i.e. the sequence has
    stopped climbing — a pragmatic check that the measured quantity is
    ``O(reference)`` over the measured range.
    """
    rows = growth_ratio_table(dimensions, values, reference)
    ratios = [r[3] for r in rows if np.isfinite(r[3])]
    if len(ratios) < 2:
        return True
    head = ratios[: max(1, len(ratios) // 2)]
    return ratios[-1] <= tolerance * max(head)


def ratios_to_dict(rows: List[Tuple[int, float, float, float]]) -> Dict[int, float]:
    """Convenience: ``{d: ratio}`` from :func:`growth_ratio_table` rows."""
    return {d: ratio for d, _, _, ratio in rows}
