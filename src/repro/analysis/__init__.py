"""Analysis layer: the paper's closed forms, verification, asymptotics.

* :mod:`~repro.analysis.counting` — binomial identities and censuses the
  proofs rely on.
* :mod:`~repro.analysis.formulas` — every numbered result of the paper
  (Lemma 3 through Theorem 8 and the Section 5 observations) as a callable
  closed form.
* :mod:`~repro.analysis.verify` — the schedule verifier: replays a
  schedule against the contamination dynamics and checks the contiguous
  monotone node-search invariants plus intruder capture.
* :mod:`~repro.analysis.asymptotics` — empirical growth-rate fitting used
  by the benches to check the paper's ``O(...)`` claims by shape.
"""

from repro.analysis.asymptotics import fit_growth, growth_ratio_table
from repro.analysis.formulas import (
    clean_agent_moves_exact,
    clean_peak_agents,
    extra_agents_for_level,
    visibility_agents,
    visibility_moves_exact,
    visibility_time_steps,
)
from repro.analysis.lower_bounds import monotone_agents_lower_bound
from repro.analysis.verify import ScheduleVerifier, VerificationReport, verify_schedule

__all__ = [
    "ScheduleVerifier",
    "VerificationReport",
    "verify_schedule",
    "clean_peak_agents",
    "extra_agents_for_level",
    "clean_agent_moves_exact",
    "visibility_agents",
    "visibility_time_steps",
    "visibility_moves_exact",
    "fit_growth",
    "growth_ratio_table",
    "monotone_agents_lower_bound",
]
