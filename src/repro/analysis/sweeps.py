"""Declarative parameter sweeps over strategies and dimensions.

The benches and examples repeatedly build "for each strategy × dimension,
measure X" tables; this module centralizes that: a :class:`Sweep` runs the
cross product, verifies every schedule (optionally), collects the standard
metric columns, and renders to rows / CSV / aligned text.  The CLI's
``sweep`` verb and the ``examples/overhead_study.py`` script are thin
wrappers around it.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.verify import verify_schedule
from repro.core.chunkstream import DEFAULT_CHUNK_MOVES, ScheduleChunk
from repro.core.schedule import Schedule
from repro.core.strategy import get_strategy
from repro.errors import ReproError
from repro.fastpath import (
    CompiledSchedule,
    ScheduleCache,
    batch_verify,
    batch_verify_chunks,
    measure_chunks,
    measure_schedule,
)

__all__ = ["SweepRow", "Sweep", "run_sweep", "measure_cell"]

#: the standard measured columns, in render order
STANDARD_COLUMNS = ("agents", "moves", "agent_moves", "sync_moves", "steps")

#: dimensions at or above this stream by default: a materialized d=16
#: schedule is ~1M ``Move`` objects (hundreds of MB); the chunk pipeline
#: holds one block at a time
STREAM_DIMENSION_THRESHOLD = 16


@dataclass(frozen=True)
class SweepRow:
    """One (strategy, dimension) measurement.

    ``status`` is ``"ok"`` for a measured cell; the parallel executor
    (:mod:`repro.exec`) reports a permanently failing cell as a row with
    ``status="failed"`` and no metric values, which the renderers print
    as ``FAILED`` — a broken cell degrades to a table entry, never to a
    traceback or a hole in the grid.
    """

    strategy: str
    dimension: int
    n: int
    values: Dict[str, float] = field(default_factory=dict)
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_flat_dict(self) -> Dict[str, object]:
        """One flat mapping per row (the CSV writer's input).

        The ``status`` key is present only on non-ok rows, keeping the
        serial sweep's flat shape (and its CSV) unchanged.
        """
        out: Dict[str, object] = {
            "strategy": self.strategy,
            "d": self.dimension,
            "n": self.n,
        }
        out.update(self.values)
        if not self.ok:
            out["status"] = self.status
        return out


def measure_cell(
    name: str,
    dimension: int,
    *,
    verify: bool = True,
    cache: Optional[ScheduleCache] = None,
    stream: Optional[bool] = None,
    chunk_moves: int = DEFAULT_CHUNK_MOVES,
    backend: Optional[str] = None,
) -> tuple[Dict[str, float], object, Dict[str, object]]:
    """One (strategy, dimension) measurement — the single cell kernel.

    Shared by the serial :meth:`Sweep.run` loop and the executor's
    ``sweep_cell`` task, so the two paths cannot drift.  Returns
    ``(values, schedule_like, provenance)``:

    * ``values`` — the :data:`STANDARD_COLUMNS` metric dict,
    * ``schedule_like`` — a :class:`~repro.core.schedule.Schedule` on the
      cache-less path, a :class:`~repro.fastpath.CompiledSchedule` on the
      cached one (callers needing real moves decompile on demand), and
      the final :class:`~repro.core.chunkstream.ScheduleChunk` on the
      streaming path (the whole schedule was never resident),
    * ``provenance`` — empty without a cache; with one, the entry
      fingerprint and whether it was served from ``"cache"`` or
      ``"generated"``.

    ``stream`` selects the bounded-memory chunk pipeline: generation (or
    the cache's chunked warm path), verification and measurement all
    fold chunk by chunk, holding ``O(chunk_moves)`` moves at any moment.
    The default (``None``) streams at ``d >=``
    :data:`STREAM_DIMENSION_THRESHOLD`, where materialized schedules
    stop fitting comfortably in memory; the verdicts and metric values
    are identical either way.

    With a cache, verification uses the columnar batch verifier on both
    the cold and warm paths (same verdict either way, and re-verifying a
    warm entry guards against anything the CRC cannot see); without one,
    the classic replay verifier runs exactly as before — except when
    streaming, which always uses the chunked batch verifier.  A
    verification failure raises :class:`~repro.errors.ReproError` — a
    sweep refuses to report numbers from a broken schedule.

    ``backend`` selects the kernel backend of the columnar verifier
    (``"auto"``/``"numpy"``/``"pure"``, default honouring
    ``$REPRO_KERNEL_BACKEND``); it only affects the cached and streaming
    paths — the cache-less materialized path keeps the classic replay
    verifier, which has no backend seam.
    """
    strategy = get_strategy(name)
    if stream is None:
        stream = dimension >= STREAM_DIMENSION_THRESHOLD
    if stream:
        return _measure_cell_streaming(
            name, strategy, dimension, verify, cache, chunk_moves, backend
        )
    if cache is not None:
        fp, compiled = cache.load_compiled(strategy, dimension)
        provenance: Dict[str, object] = {"fingerprint": fp, "source": "cache"}
        if compiled is None:
            provenance["source"] = "generated"
            from repro.topology.hypercube import Hypercube

            compiled = CompiledSchedule.from_schedule(
                strategy.generate(Hypercube(dimension))
            )
            cache.store(fp, compiled)
        if verify:
            report = batch_verify(compiled, backend=backend)
            if not report.ok:
                raise ReproError(
                    f"{name} d={dimension} failed verification: {report.summary()}"
                )
        return measure_schedule(compiled), compiled, provenance
    schedule = strategy.run(dimension)
    if verify:
        report = verify_schedule(schedule)
        if not report.ok:
            raise ReproError(
                f"{name} d={dimension} failed verification: {report.summary()}"
            )
    return measure_schedule(schedule), schedule, {}


def _measure_cell_streaming(
    name: str,
    strategy,
    dimension: int,
    verify: bool,
    cache: Optional[ScheduleCache],
    chunk_moves: int,
    backend: Optional[str],
) -> tuple[Dict[str, float], object, Dict[str, object]]:
    """The chunked cell kernel: one pass, one resident block.

    The chunk stream flows through the verifier while a one-slot tap
    captures the final chunk; measurement then folds from its cumulative
    aggregate block — generate/verify/measure without the schedule ever
    existing whole.
    """
    provenance: Dict[str, object] = {}
    if cache is not None:
        fp = cache.fingerprint_of(strategy, dimension)
        warm = cache.chunk_path_for(fp).exists() or cache.path_for(fp).exists()
        provenance = {"fingerprint": fp, "source": "cache" if warm else "generated"}
        chunks = cache.stream_chunks(strategy, dimension, chunk_moves)
    else:
        from repro.topology.hypercube import Hypercube

        chunks = strategy.generate_chunks(Hypercube(dimension), chunk_moves)
    final: List[ScheduleChunk] = []

    def _tap(stream):
        for chunk in stream:
            if chunk.is_last:
                final.append(chunk)
            yield chunk

    if verify:
        report = batch_verify_chunks(_tap(chunks), backend=backend)
        if not report.ok:
            raise ReproError(
                f"{name} d={dimension} failed verification: {report.summary()}"
            )
    else:
        for _ in _tap(chunks):
            pass
    values = measure_chunks(iter(final))
    return values, final[0], provenance


class Sweep:
    """A strategies × dimensions measurement grid.

    Parameters
    ----------
    strategies:
        Strategy registry names.
    dimensions:
        Hypercube degrees to measure.
    extra_metrics:
        Optional ``{name: fn(schedule) -> number}`` columns beyond the
        standard agents/moves/steps set.
    verify:
        Replay-verify every schedule (on by default; the sweep refuses to
        report numbers from a broken schedule).
    cache:
        Optional :class:`~repro.fastpath.ScheduleCache`; when given,
        cells are served from it (compiling and storing on miss) and
        verified with the columnar batch verifier.  A warm cell is pure
        deserialize-and-measure.
    stream:
        ``True`` forces every cell through the bounded-memory chunk
        pipeline, ``False`` forces materialization; the default
        (``None``) streams cells at ``d >=``
        :data:`STREAM_DIMENSION_THRESHOLD`.  Streaming cells never
        materialize a schedule, so they cannot feed ``extra_metrics``
        (``fn(schedule)`` callbacks) — combining the two raises.
    chunk_moves:
        Block size of the streaming pipeline.
    backend:
        Kernel backend for the columnar verifier
        (``"auto"``/``"numpy"``/``"pure"``; the default defers to
        ``$REPRO_KERNEL_BACKEND``).  Only the cached and streaming
        verification paths have a backend seam.
    """

    def __init__(
        self,
        strategies: Sequence[str],
        dimensions: Sequence[int],
        *,
        extra_metrics: Optional[Dict[str, Callable[[Schedule], float]]] = None,
        verify: bool = True,
        cache: Optional[ScheduleCache] = None,
        stream: Optional[bool] = None,
        chunk_moves: int = DEFAULT_CHUNK_MOVES,
        backend: Optional[str] = None,
    ) -> None:
        if not strategies or not dimensions:
            raise ReproError("sweep needs at least one strategy and one dimension")
        if extra_metrics and stream:
            raise ReproError(
                "extra_metrics need a materialized schedule; "
                "a streaming sweep never builds one (drop stream=True "
                "or the extra metrics)"
            )
        self.strategies = list(strategies)
        self.dimensions = list(dimensions)
        self.extra_metrics = dict(extra_metrics or {})
        self.verify = verify
        self.cache = cache
        self.stream = stream
        self.chunk_moves = chunk_moves
        self.backend = backend

    def _cell_streams(self, dimension: int) -> bool:
        """Whether the cell at ``dimension`` goes through the chunk path."""
        if self.stream is None:
            return dimension >= STREAM_DIMENSION_THRESHOLD
        return self.stream

    def run(self) -> List[SweepRow]:
        """Execute the grid; returns one row per (strategy, dimension)."""
        rows = []
        for name in self.strategies:
            for d in self.dimensions:
                try:
                    values, schedule_like, _ = measure_cell(
                        name,
                        d,
                        verify=self.verify,
                        cache=self.cache,
                        stream=self._cell_streams(d) and not self.extra_metrics,
                        chunk_moves=self.chunk_moves,
                        backend=self.backend,
                    )
                except ReproError as exc:
                    if "failed verification" in str(exc):
                        raise ReproError(f"sweep aborted: {exc}") from exc
                    raise
                if self.extra_metrics:
                    schedule = (
                        schedule_like.to_schedule()
                        if isinstance(schedule_like, CompiledSchedule)
                        else schedule_like
                    )
                    for metric, fn in self.extra_metrics.items():
                        values[metric] = fn(schedule)
                rows.append(
                    SweepRow(
                        strategy=name,
                        dimension=d,
                        n=1 << d,
                        values=values,
                    )
                )
        return rows

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def columns(self) -> List[str]:
        """Metric column names, standard set first."""
        return list(STANDARD_COLUMNS) + sorted(self.extra_metrics)

    def to_csv(self, rows: Sequence[SweepRow]) -> str:
        """CSV text with a header row and a trailing newline.

        A ``status`` column is appended only when some row is non-ok, so
        fully successful sweeps keep the historical column set.
        """
        fieldnames = ["strategy", "d", "n"] + self.columns()
        if any(not row.ok for row in rows):
            fieldnames.append("status")
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=fieldnames, restval="", lineterminator="\n"
        )
        writer.writeheader()
        for row in rows:
            flat = row.as_flat_dict()
            if "status" in fieldnames:
                flat.setdefault("status", "ok")
            writer.writerow(flat)
        return buffer.getvalue()

    def to_text(self, rows: Sequence[SweepRow]) -> str:
        """Aligned text table; failed cells render as ``FAILED``."""
        cols = self.columns()
        header = f"{'strategy':<12} {'d':>3} {'n':>6} " + " ".join(
            f"{c:>12}" for c in cols
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            if row.ok:
                cells = " ".join(f"{row.values.get(c, ''):>12}" for c in cols)
            else:
                cells = " ".join(f"{'FAILED':>12}" for _ in cols)
            lines.append(f"{row.strategy:<12} {row.dimension:>3} {row.n:>6} {cells}")
        return "\n".join(lines)

    def series(self, rows: Sequence[SweepRow], strategy: str, metric: str) -> List[float]:
        """One metric's values across dimensions for one strategy."""
        return [
            row.values[metric]
            for row in rows
            if row.strategy == strategy
        ]


def run_sweep(
    strategies: Sequence[str],
    dimensions: Sequence[int],
    **kwargs,
) -> tuple[Sweep, List[SweepRow]]:
    """Convenience: build, run, and return ``(sweep, rows)``."""
    sweep = Sweep(strategies, dimensions, **kwargs)
    return sweep, sweep.run()
