"""Lower bounds on the team size — the paper's open problem, attacked.

Section 5 ends: "an interesting open problem is to determine whether our
strategy for the first model is optimal in terms of number of agents; i.e.,
if the lower bound on the number of agents is Ω(n/log n)."

A monotone strategy (contiguous or not) must, at every instant, guard every
decontaminated node that still has a contaminated neighbour — otherwise
that node is recontaminated on the spot.  The decontaminated set ``D``
grows from one node to all ``n`` one node at a time, so

    ``agents  >=  max_m  min_{|D| = m} |inner boundary of D|``.

The inner minimum is a *vertex-isoperimetric* quantity of the hypercube,
settled exactly by Harper's theorem (Harper 1966; Bollobás, *Combinatorics*
§16): initial segments of the **simplicial order** — sort by Hamming
weight, ties broken by reverse colexicographic (descending integer) order —
minimize the boundary at every size.  The tests verify this pointwise
against exhaustive subset search for ``d <= 4``.

Consequences computed here (and reported in EXPERIMENTS.md):

* the lower bound is ``Θ(C(d, d/2)) = Θ(n / sqrt(log n))`` — asymptotically
  *matching* Algorithm ``CLEAN``'s team, so CLEAN is within a constant
  factor of optimal among monotone strategies (and the answer to the
  paper's literal question is: the true bound is even a bit larger than
  ``Ω(n / log n)``);
* exact small values: ``H_3 >= 4`` (tight — the visibility strategy and
  the brute-force optimum both sit at 4), ``H_4 >= 7`` (so the optimum is
  7 or 8; both of the paper's strategies use 8).
"""

from __future__ import annotations

from typing import Dict, List

from repro._bitops import popcount
from repro.analysis.counting import central_binomial
from repro.errors import TopologyError

__all__ = [
    "simplicial_order",
    "boundary_profile",
    "monotone_agents_lower_bound",
    "exhaustive_boundary_profile",
    "bound_vs_strategies",
]


def simplicial_order(d: int) -> List[int]:
    """Harper's boundary-minimizing order: by weight, then descending id.

    >>> simplicial_order(2)
    [0, 2, 1, 3]
    """
    if d < 0:
        raise TopologyError("dimension must be >= 0")
    return sorted(range(1 << d), key=lambda x: (popcount(x), -x))


def _inner_boundary_size(members: set, d: int) -> int:
    return sum(
        1
        for x in members
        if any((x ^ (1 << i)) not in members for i in range(d))
    )


def boundary_profile(d: int) -> Dict[int, int]:
    """``profile[m]`` = minimal inner boundary over all ``m``-subsets.

    Computed as the inner boundary of the simplicial order's initial
    segments (exact by Harper's theorem; exhaustively verified for
    ``d <= 4`` in the tests).  ``O(n d)`` time with incremental updates.
    """
    if d > 20:
        raise TopologyError(f"d={d} too large for the boundary profile (max 20)")
    order = simplicial_order(d)
    members: set = set()
    boundary: set = set()
    profile: Dict[int, int] = {}
    for m, x in enumerate(order, start=1):
        members.add(x)
        # x joins: on the boundary iff it has an outside neighbour
        if any((x ^ (1 << i)) not in members for i in range(d)):
            boundary.add(x)
        # x's inside neighbours may have just lost their last outside one
        for i in range(d):
            y = x ^ (1 << i)
            if y in boundary and all(
                (y ^ (1 << j)) in members for j in range(d)
            ):
                boundary.discard(y)
        profile[m] = len(boundary)
    return profile


def monotone_agents_lower_bound(d: int) -> int:
    """``max_m profile[m]``: agents any monotone strategy needs on ``H_d``.

    Applies to the contiguous model (the paper's) *and* to the relaxed
    place/remove/slide model — monotonicity alone forces the guards.
    """
    if d == 0:
        return 1
    return max(boundary_profile(d).values())


def exhaustive_boundary_profile(d: int) -> Dict[int, int]:
    """Brute-force ``profile`` over all subsets (test oracle; ``d <= 4``)."""
    from itertools import combinations

    if d > 4:
        raise TopologyError("exhaustive profile only feasible for d <= 4")
    n = 1 << d
    out = {}
    for m in range(1, n + 1):
        out[m] = min(
            _inner_boundary_size(set(S), d) for S in combinations(range(n), m)
        )
    return out


def bound_vs_strategies(d: int) -> Dict[str, int]:
    """The open-problem scoreboard for one dimension."""
    from repro.analysis.formulas import clean_peak_agents, visibility_agents

    return {
        "lower_bound": monotone_agents_lower_bound(d),
        "clean": clean_peak_agents(d),
        "visibility": visibility_agents(d),
        "central_binomial": central_binomial(d),
    }
