"""The schedule plane: a strategy's output as a timed move sequence.

A :class:`Schedule` is the deterministic artifact produced by each strategy
generator: the complete list of agent moves with ideal-time stamps (one
time unit per edge traversal, footnote 1 of the paper).  It is the object
the verifier replays, the metrics module measures, and the figure benches
render.

Timing convention
-----------------
Each :class:`Move` carries the *completion* time of the traversal, a
positive integer: a move with ``time == t`` occupies the interval
``(t-1, t]``.  Moves of different agents may share a ``time`` (they happen
in parallel); a single agent's moves must have strictly increasing times.
The *makespan* of a schedule is the largest completion time, i.e. the ideal
time complexity the paper's Theorems 4 and 7 bound.

Within one time unit, moves are replayed in list order; generators order
simultaneous moves so that arrivals that must logically precede departures
(e.g. the synchronizer observing a freshly guarded node) appear first.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.states import AgentRole
from repro.errors import ScheduleError

__all__ = ["MoveKind", "Move", "Schedule", "ScheduleAggregates", "scan_moves"]


class MoveKind(enum.Enum):
    """Why a move happens; used for the Theorem 3 move decomposition."""

    #: an agent is placed on a fresh node, extending the clean region
    DEPLOY = "deploy"
    #: an extra agent travels from the root toward a level-``l`` node
    DISPATCH = "dispatch"
    #: a released agent travels back to the root to become available
    RETURN = "return"
    #: the synchronizer escorts an agent down a tree edge, or retraces it
    ESCORT = "escort"
    #: the synchronizer navigates (to the root, to a level, within a level)
    NAVIGATE = "navigate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Move:
    """One edge traversal by one agent.

    Attributes
    ----------
    agent:
        Agent identifier (0-based; the synchronizer of Algorithm 1 is agent
        0 by convention).
    src, dst:
        Endpoints of the traversed edge; must be adjacent in the topology.
    time:
        Ideal completion time (positive integer; see module docstring).
    role:
        Whether the mover is a plain agent or the synchronizer.
    kind:
        Purpose tag for the move-accounting decomposition.
    """

    agent: int
    src: int
    dst: int
    time: int
    role: AgentRole = AgentRole.AGENT
    kind: MoveKind = MoveKind.DEPLOY

    def __post_init__(self) -> None:
        if self.time < 1:
            raise ScheduleError(f"move time must be >= 1, got {self.time}")
        if self.src == self.dst:
            raise ScheduleError(f"degenerate move at node {self.src}")
        if self.agent < 0:
            raise ScheduleError(f"agent id must be >= 0, got {self.agent}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "agent": self.agent,
            "src": self.src,
            "dst": self.dst,
            "time": self.time,
            "role": self.role.value,
            "kind": self.kind.value,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Move":
        """Inverse of :meth:`as_dict`."""
        return Move(
            agent=int(data["agent"]),
            src=int(data["src"]),
            dst=int(data["dst"]),
            time=int(data["time"]),
            role=AgentRole(data["role"]),
            kind=MoveKind(data["kind"]),
        )


@dataclass(frozen=True)
class ScheduleAggregates:
    """Every aggregate measurement of a move list, from one pass.

    ``Sweep.run`` reads four different aggregates per cell; computing them
    independently re-walked the full move list four times.  This block is
    produced by a single :func:`scan_moves` pass and memoized on the
    :class:`Schedule`; it is also the stats header of the columnar
    :class:`~repro.fastpath.CompiledSchedule`, so a cached schedule can be
    measured without touching its move columns at all.
    """

    total_moves: int
    makespan: int
    role_counts: Dict[AgentRole, int]
    kind_counts: Dict[MoveKind, int]
    agents_used: int
    peak_traveling_agents: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (enum keys become their string values)."""
        return {
            "total_moves": self.total_moves,
            "makespan": self.makespan,
            "role_counts": {role.value: c for role, c in self.role_counts.items()},
            "kind_counts": {kind.value: c for kind, c in self.kind_counts.items()},
            "agents_used": self.agents_used,
            "peak_traveling_agents": self.peak_traveling_agents,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ScheduleAggregates":
        """Inverse of :meth:`as_dict`."""
        roles: Dict[str, int] = dict(data["role_counts"])  # type: ignore[arg-type]
        kinds: Dict[str, int] = dict(data["kind_counts"])  # type: ignore[arg-type]
        return ScheduleAggregates(
            total_moves=int(data["total_moves"]),  # type: ignore[call-overload]
            makespan=int(data["makespan"]),  # type: ignore[call-overload]
            role_counts={AgentRole(k): int(v) for k, v in roles.items()},
            kind_counts={MoveKind(k): int(v) for k, v in kinds.items()},
            agents_used=int(data["agents_used"]),  # type: ignore[call-overload]
            peak_traveling_agents=int(data["peak_traveling_agents"]),  # type: ignore[call-overload]
        )


def scan_moves(moves: Sequence[Move]) -> ScheduleAggregates:
    """Compute every :class:`ScheduleAggregates` field in one pass.

    ``peak_traveling_agents`` (max distinct agents moving within one time
    unit) is computed *streaming* over runs of equal completion time — one
    reusable set instead of a per-time dict of sets — relying on the
    documented replay-order invariant (non-decreasing times).  Should the
    move list turn out unsorted, a dict-based second pass restores the
    order-independent answer, so the value matches the historical
    semantics for any input.
    """
    role_counts = {role: 0 for role in AgentRole}
    kind_counts = {kind: 0 for kind in MoveKind}
    agents: set = set()
    makespan = 0
    peak = 0
    sorted_times = True
    prev_time = 0
    run_time: Optional[int] = None
    run_agents: set = set()
    for m in moves:
        t = m.time
        role_counts[m.role] += 1
        kind_counts[m.kind] += 1
        agents.add(m.agent)
        if t > makespan:
            makespan = t
        if t < prev_time:
            sorted_times = False
        prev_time = t
        if t != run_time:
            if len(run_agents) > peak:
                peak = len(run_agents)
            run_agents.clear()
            run_time = t
        run_agents.add(m.agent)
    if len(run_agents) > peak:
        peak = len(run_agents)
    if not sorted_times:
        per_time: Dict[int, set] = {}
        for m in moves:
            per_time.setdefault(m.time, set()).add(m.agent)
        peak = max((len(v) for v in per_time.values()), default=0)
    return ScheduleAggregates(
        total_moves=len(moves),
        makespan=makespan,
        role_counts=role_counts,
        kind_counts=kind_counts,
        agents_used=len(agents),
        peak_traveling_agents=peak,
    )


@dataclass
class Schedule:
    """A complete cleaning schedule for one hypercube.

    Attributes
    ----------
    dimension:
        Hypercube degree ``d`` the schedule is for.
    strategy:
        Name of the generating strategy (registry key).
    moves:
        All moves; kept in replay order (non-decreasing time, and within a
        time unit the generator's logical order).
    team_size:
        Number of distinct agents the strategy employs (the paper's "number
        of agents" metric).  For the cloning variant this counts every agent
        ever created.
    homebase:
        Start node of all agents (the paper fixes ``00...0``).
    uses_cloning:
        Whether agents are created away from the homebase (Section 5).
    metadata:
        Free-form extras recorded by generators (per-level agent requests,
        wave sizes, ...), consumed by benches and tests.
    """

    dimension: int
    strategy: str
    moves: List[Move] = field(default_factory=list)
    team_size: int = 0
    homebase: int = 0
    uses_cloning: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)
    # memoized aggregate block (see aggregates()); the key tracks
    # (len(moves), last move) so the append-only generator pattern
    # invalidates naturally.  Excluded from equality and repr.
    _agg: Optional[ScheduleAggregates] = field(
        default=None, init=False, repr=False, compare=False
    )
    _agg_key: Optional[Tuple[int, Optional[Move]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # measurements
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of hypercube nodes, ``2**dimension``."""
        return 1 << self.dimension

    def aggregates(self) -> ScheduleAggregates:
        """The memoized one-pass aggregate block (see :func:`scan_moves`).

        Every aggregate measurement below answers from this cache, so a
        sweep cell that reads four different aggregates walks the move
        list once, not four times.  The cache keys on ``(len(moves),
        moves[-1])`` — appending moves (the generator pattern) or
        replacing the list invalidates it; after in-place surgery that
        preserves both, call :meth:`invalidate_caches` explicitly.
        """
        key = (len(self.moves), self.moves[-1] if self.moves else None)
        if self._agg is None or self._agg_key != key:
            self._agg = scan_moves(self.moves)
            self._agg_key = key
        return self._agg

    def invalidate_caches(self) -> None:
        """Drop the memoized aggregates (after in-place move edits)."""
        self._agg = None
        self._agg_key = None

    @property
    def total_moves(self) -> int:
        """Total number of edge traversals (the paper's "moves" metric)."""
        return len(self.moves)

    @property
    def makespan(self) -> int:
        """Ideal time: the largest completion time (0 for empty schedules)."""
        return self.aggregates().makespan

    def moves_by_role(self) -> Dict[AgentRole, int]:
        """Move counts split by mover role (Theorem 3's two components)."""
        return dict(self.aggregates().role_counts)

    def moves_by_kind(self) -> Dict[MoveKind, int]:
        """Move counts split by :class:`MoveKind`."""
        return dict(self.aggregates().kind_counts)

    def agent_moves(self) -> int:
        """Moves performed by plain agents."""
        return self.aggregates().role_counts[AgentRole.AGENT]

    def synchronizer_moves(self) -> int:
        """Moves performed by the synchronizer (0 for local strategies)."""
        return self.aggregates().role_counts[AgentRole.SYNCHRONIZER]

    def agents_used(self) -> int:
        """Number of distinct agent ids appearing in the schedule."""
        return self.aggregates().agents_used

    def moves_of_agent(self, agent: int) -> List[Move]:
        """All moves of one agent, in replay order."""
        return [m for m in self.moves if m.agent == agent]

    def peak_traveling_agents(self) -> int:
        """Maximum number of agents moving within the same time unit."""
        return self.aggregates().peak_traveling_agents

    def first_visit_order(self) -> List[int]:
        """Nodes in order of first agent arrival (the figures' numbering).

        The homebase is first; ties within a time unit keep replay order.
        """
        seen = {self.homebase}
        order = [self.homebase]
        for m in self.moves:
            if m.dst not in seen:
                seen.add(m.dst)
                order.append(m.dst)
        return order

    def visit_time(self) -> Dict[int, int]:
        """First-arrival completion time per node (homebase at time 0)."""
        times = {self.homebase: 0}
        for m in self.moves:
            if m.dst not in times:
                times[m.dst] = m.time
        return times

    # ------------------------------------------------------------------ #
    # structure checks
    # ------------------------------------------------------------------ #

    def validate_structure(self, topology=None) -> None:
        """Validate well-formedness (not the search invariants).

        * replay order has non-decreasing times,
        * each agent's moves chain (``dst`` of one is ``src`` of the next)
          with strictly increasing times,
        * every agent's first move starts at the homebase — unless the
          schedule uses cloning, in which case an agent may first appear
          anywhere an existing agent is,
        * if ``topology`` is given, every move is along one of its edges.

        Raises :class:`~repro.errors.ScheduleError` on violation.
        """
        last_time = 0
        position: Dict[int, int] = {}
        clock: Dict[int, int] = {}
        for idx, m in enumerate(self.moves):
            if m.time < last_time:
                raise ScheduleError(f"move #{idx} goes back in time ({m.time} < {last_time})")
            last_time = m.time
            if topology is not None and not topology.has_edge(m.src, m.dst):
                raise ScheduleError(f"move #{idx} ({m.src}->{m.dst}) is not an edge")
            if m.agent in position:
                if position[m.agent] != m.src:
                    raise ScheduleError(
                        f"move #{idx}: agent {m.agent} moves from {m.src} but is at "
                        f"{position[m.agent]}"
                    )
                if m.time <= clock[m.agent]:
                    raise ScheduleError(
                        f"move #{idx}: agent {m.agent} moves twice within one time unit"
                    )
            else:
                if m.src != self.homebase and not self.uses_cloning:
                    raise ScheduleError(
                        f"move #{idx}: agent {m.agent} first appears at {m.src}, "
                        f"not the homebase {self.homebase}"
                    )
            position[m.agent] = m.dst
            clock[m.agent] = m.time
        if self.team_size and self.agents_used() > self.team_size:
            raise ScheduleError(
                f"{self.agents_used()} agents appear in moves but team_size={self.team_size}"
            )

    # ------------------------------------------------------------------ #
    # iteration / io
    # ------------------------------------------------------------------ #

    def __iter__(self) -> Iterator[Move]:
        return iter(self.moves)

    def __len__(self) -> int:
        return len(self.moves)

    def by_time(self) -> Iterator[tuple[int, List[Move]]]:
        """Group moves by time unit, in order."""
        bucket: List[Move] = []
        current: Optional[int] = None
        for m in self.moves:
            if current is None or m.time == current:
                bucket.append(m)
                current = m.time
            else:
                yield current, bucket
                bucket = [m]
                current = m.time
        if bucket:
            yield current, bucket  # type: ignore[misc]

    def final_positions(self) -> Dict[int, int]:
        """Where each moving agent ends up."""
        pos: Dict[int, int] = {}
        for m in self.moves:
            pos[m.agent] = m.dst
        return pos

    def translated(self, new_homebase: int) -> "Schedule":
        """The same schedule started from another homebase.

        XOR by ``new_homebase`` is an automorphism of the hypercube, so
        relabelling every move endpoint transports any cleaning schedule
        rooted at ``00...0`` to one rooted at the given node with identical
        agent/move/step counts — how the paper's fixed-homebase strategies
        serve an arbitrary homebase in practice.
        """
        if not 0 <= new_homebase < self.n:
            raise ScheduleError(f"homebase {new_homebase} not a node of H_{self.dimension}")
        mask = new_homebase ^ self.homebase
        moved = [
            Move(
                agent=m.agent,
                src=m.src ^ mask,
                dst=m.dst ^ mask,
                time=m.time,
                role=m.role,
                kind=m.kind,
            )
            for m in self.moves
        ]
        clone = Schedule(
            dimension=self.dimension,
            strategy=self.strategy,
            moves=moved,
            team_size=self.team_size,
            homebase=self.homebase ^ mask,
            uses_cloning=self.uses_cloning,
            metadata=dict(self.metadata),
        )
        clone.metadata["translated_by"] = mask
        return clone

    def permuted(self, dimension_order: Sequence[int]) -> "Schedule":
        """The same schedule under a relabelling of the dimensions.

        ``dimension_order`` is a permutation of ``range(d)`` (0-based bit
        indices): bit ``i`` of every node id is sent to position
        ``dimension_order[i]``.  Dimension permutations are hypercube
        automorphisms fixing the homebase ``00...0``, so together with
        :meth:`translated` they generate the full automorphism group of
        :math:`H_d` — any relabelled deployment of the paper's strategies.
        """
        d = self.dimension
        if sorted(dimension_order) != list(range(d)):
            raise ScheduleError(
                f"dimension_order must be a permutation of range({d})"
            )

        def relabel(x: int) -> int:
            out = 0
            for i, target in enumerate(dimension_order):
                if (x >> i) & 1:
                    out |= 1 << target
            return out

        moved = [
            Move(
                agent=m.agent,
                src=relabel(m.src),
                dst=relabel(m.dst),
                time=m.time,
                role=m.role,
                kind=m.kind,
            )
            for m in self.moves
        ]
        clone = Schedule(
            dimension=d,
            strategy=self.strategy,
            moves=moved,
            team_size=self.team_size,
            homebase=relabel(self.homebase),
            uses_cloning=self.uses_cloning,
            metadata=dict(self.metadata),
        )
        clone.metadata["permuted_by"] = list(dimension_order)
        return clone

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {
                "dimension": self.dimension,
                "strategy": self.strategy,
                "team_size": self.team_size,
                "homebase": self.homebase,
                "uses_cloning": self.uses_cloning,
                "metadata": self.metadata,
                "moves": [m.as_dict() for m in self.moves],
            }
        )

    @staticmethod
    def from_json(text: str) -> "Schedule":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return Schedule(
            dimension=int(data["dimension"]),
            strategy=str(data["strategy"]),
            moves=[Move.from_dict(m) for m in data["moves"]],
            team_size=int(data["team_size"]),
            homebase=int(data["homebase"]),
            uses_cloning=bool(data["uses_cloning"]),
            metadata=dict(data["metadata"]),
        )

    def summary(self) -> str:
        """One-line human summary used by the CLI and examples."""
        return (
            f"{self.strategy}(d={self.dimension}): team={self.team_size}, "
            f"moves={self.total_moves}, makespan={self.makespan}"
        )
