"""Node and agent state definitions (Section 2 of the paper).

A node is, at any point in time, in exactly one of three states:

* ``GUARDED`` — an agent is currently on the node;
* ``CLEAN``   — an agent passed by and, when the last agent left, every
  neighbour was clean or guarded (and no recontamination occurred since);
* ``CONTAMINATED`` — otherwise.  Initially every node except the guarded
  homebase is contaminated.

Agent roles distinguish the coordinator of Algorithm 1 from the worker
agents; every move in a :class:`~repro.core.schedule.Schedule` is tagged
with the mover's role so the two components of the Theorem 3 move count can
be reported separately.
"""

from __future__ import annotations

import enum

__all__ = ["NodeState", "AgentRole"]


class NodeState(enum.Enum):
    """State of a hypercube node during a cleaning strategy."""

    CONTAMINATED = "contaminated"
    GUARDED = "guarded"
    CLEAN = "clean"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_safe(self) -> bool:
        """Clean-or-guarded: the condition on smaller neighbours in both
        strategies' movement rules."""
        return self is not NodeState.CONTAMINATED

    def symbol(self) -> str:
        """Single-character rendering used by the viz module."""
        return {"contaminated": "#", "guarded": "A", "clean": "."}[self.value]


class AgentRole(enum.Enum):
    """Who performs a move: a plain searcher or the synchronizer."""

    AGENT = "agent"
    SYNCHRONIZER = "synchronizer"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
