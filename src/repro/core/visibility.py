"""Algorithm 2 — ``CLEAN WITH VISIBILITY`` (Section 4.2): local strategy.

Every agent follows the same local rule; no coordinator exists.  The rule
for the agents on a node ``x`` of type ``T(k)``:

* if fewer than ``2^{k-1}`` agents are on ``x``, wait;
* once ``2^{k-1}`` agents are present **and** every smaller neighbour of
  ``x`` is clean or guarded: one agent moves to the bigger neighbour of
  type ``T(0)`` and ``2^{i-1}`` agents move to each bigger neighbour of
  type ``T(i)`` (``0 < i < k``); with no bigger neighbours, terminate.

Theorem 7 shows the execution self-organizes into *waves*: the agents
sitting on the class :math:`C_i` nodes all move exactly at ideal time
``i``, so the network is clean after ``d = log n`` steps.  The schedule
generator below produces exactly this wave schedule (the unique ideal-time
execution); the asynchronous, genuinely local run of the same rule lives in
:mod:`repro.protocols.visibility_protocol` and is tested to produce the
same move multiset.

Agent bookkeeping: the ``2^{d-1}`` agents are numbered ``0 .. n/2 - 1``;
each node forwards contiguous chunks of its arrival list to its children,
largest subtree first, mirroring how the whiteboard would assign them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis import formulas
from repro.core.chunkstream import ChunkStreamHeader, collect_stream
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.core.strategy import Strategy, register
from repro.errors import ReproError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = ["VisibilityStrategy"]


@register
class VisibilityStrategy(Strategy):
    """Algorithm 2 of the paper (visibility model, fully local)."""

    name = "visibility"
    model = "visibility"

    def expected_team_size(self, d: int) -> Optional[int]:
        return formulas.visibility_agents(d)

    def expected_total_moves(self, d: int) -> Optional[int]:
        return formulas.visibility_moves_exact(d)

    def expected_makespan(self, d: int) -> Optional[int]:
        return formulas.visibility_time_steps(d)

    # ------------------------------------------------------------------ #

    def _initial_agents(self, team: int) -> List[int]:
        """Agent ids stationed at the root before the first wave."""
        return list(range(team))

    def _emit_moves(
        self,
        node: int,
        child: int,
        squad: List[int],
        wave: int,
        moves: List[Move],
    ) -> List[int]:
        """Move ``squad`` from ``node`` to ``child`` during ``wave``.

        Returns the agent ids now stationed at ``child``.  Subclasses
        (cloning) override to create agents instead of forwarding them.
        """
        for agent in squad:
            moves.append(
                Move(
                    agent=agent,
                    src=node,
                    dst=child,
                    time=wave + 1,
                    role=AgentRole.AGENT,
                    kind=MoveKind.DEPLOY,
                )
            )
        return squad

    def generate(self, hypercube: Hypercube) -> Schedule:
        header = ChunkStreamHeader(
            dimension=hypercube.d,
            strategy=self.name,
            homebase=0,
            uses_cloning=self._uses_cloning(),
            team_size=formulas.visibility_agents(hypercube.d),
        )
        return collect_stream(header, self.stream_moves(hypercube))

    def stream_moves(self, hypercube: Hypercube) -> Iterator[Move]:
        """Native streaming generator: one wave buffered at a time.

        The wave schedule emits every move of wave ``i`` at completion
        time ``i + 1`` before any move of wave ``i + 1`` — already
        replay-ordered, so moves stream straight out as each node of the
        current class forwards its squads.
        """
        d = hypercube.d
        tree = BroadcastTree(hypercube)
        team = formulas.visibility_agents(d)
        stationed: Dict[int, List[int]] = {0: self._initial_agents(team)}
        wave_sizes: Dict[int, int] = {}

        # Wave i moves every agent on class C_i; classes are processed in
        # increasing order, which respects causality (a node's agents all
        # arrive from its tree parent, whose class index is smaller).
        for wave in range(d):
            movers = 0
            for node in hypercube.class_members(wave):
                squad = stationed.pop(node, None)
                if squad is None:
                    raise ReproError(f"no agents on {node} at wave {wave}")
                k = tree.node_type(node)
                if len(squad) != formulas.agents_for_type(k):
                    raise ReproError(
                        f"node {node} (type T({k})) holds {len(squad)} agents, "
                        f"expected {formulas.agents_for_type(k)}"
                    )
                offset = 0
                for child in tree.children(node):
                    child_k = tree.node_type(child)
                    take = formulas.agents_for_type(child_k)
                    chunk = squad[offset : offset + take]
                    offset += take
                    burst: List[Move] = []
                    stationed[child] = self._emit_moves(node, child, chunk, wave, burst)
                    yield from burst
                if offset != len(squad):
                    raise ReproError(f"agents stranded on {node}")
                movers += len(squad)
            wave_sizes[wave] = movers

        # After the last wave every agent sits on a distinct leaf.
        return {  # type: ignore[return-value]
            "team_size": self._final_team_size(team),
            "metadata": {"wave_sizes": wave_sizes, "final_leaves": sorted(stationed)},
        }

    # hooks overridden by the cloning subclass ------------------------- #

    def _final_team_size(self, initial_team: int) -> int:
        return initial_team

    def _uses_cloning(self) -> bool:
        return self.uses_cloning
