"""Section 5 synchronous variant: visibility's schedule without visibility.

"If the agents move synchronously and start simultaneously [...] instead of
waiting for all smaller neighbors to become clean or guarded, the agents on
a node wait for the appropriate time to move: the agents on ``x`` can move
when time ``t = m(x)``.  In this strategy, when ``t = m(x)``, the agents on
``x`` implicitly know that all the smaller neighbor(s) of ``x`` are clean
or guarded."

The *moves* are therefore identical to Algorithm 2's wave schedule; what
changes is the capability model — agents consult a global clock rather
than their neighbours' states.  The schedule generator subclasses
:class:`~repro.core.visibility.VisibilityStrategy` and only changes the
strategy name/model; the distributed implementation in
:mod:`repro.protocols.sync_protocol` differs for real (agents read the
round number, never their neighbours), and the protocol tests check both
reach the same move multiset — which is exactly the paper's equivalence
claim.
"""

from __future__ import annotations

from repro.core.strategy import register
from repro.core.visibility import VisibilityStrategy

__all__ = ["SynchronousStrategy"]


@register
class SynchronousStrategy(VisibilityStrategy):
    """The synchronous-rounds variant (same waves, no visibility needed)."""

    name = "synchronous"
    model = "synchronous"
