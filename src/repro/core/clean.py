"""Algorithm 1 — ``CLEAN`` (Section 3.2): synchronizer-coordinated search.

One agent, the *synchronizer*, coordinates the whole process by walking the
hypercube; the other agents only move when instructed (via whiteboards in
the distributed implementation, see
:mod:`repro.protocols.clean_protocol`).  The strategy proceeds level by
level on the broadcast tree:

1. **Root to level 1** — the synchronizer escorts one agent to each of the
   root's ``d`` children, returning to the root in between.
2. **Level ``l`` to ``l+1``** (for ``l = 1 .. d-1``):

   2.1 the synchronizer goes back to the root; the root dispatches ``k-1``
   extra agents to every level-``l`` node of type ``T(k)``, ``k >= 2``
   (travelling down the broadcast-tree path);

   2.2 the synchronizer visits the level-``l`` nodes in increasing integer
   order (= the paper's lexicographic order read from the most significant
   position — Lemma 1 requires exactly this order), waits until the ``k``
   agents are present, and escorts one agent down each tree edge;

   2.3 when the synchronizer reaches a *leaf* of level ``l``, the agent on
   it is released and walks back to the root to become available again.

Timing model: ideal time, one unit per edge; the synchronizer's actions are
sequential, extra agents travel concurrently with it, and the synchronizer
waits at a node until the agents it needs have arrived.  Agents are hired
from the homebase pool on demand, so the resulting ``team_size`` *is* the
measured Theorem 2 quantity (tests check it equals
:func:`repro.analysis.formulas.clean_peak_agents`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.analysis import formulas
from repro.core.chunkstream import (
    ChunkStreamHeader,
    TimeOrderedEmitter,
    collect_stream,
)
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.core.strategy import Strategy, register
from repro.errors import ReproError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = ["CleanStrategy"]

SYNCHRONIZER_ID = 0


@dataclass
class _AgentState:
    """Book-keeping for one plain agent in the generator."""

    ident: int
    position: int
    ready: int  # time at which the agent is settled at `position`


class _Pool:
    """The set of available agents at the root, ordered by readiness.

    ``acquire`` pops the earliest-ready agent or hires a fresh one when the
    pool is empty — hiring is what measures the team size.
    """

    def __init__(self) -> None:
        self._heap: List[tuple[int, int]] = []  # (ready, ident)
        self._agents: Dict[int, _AgentState] = {}
        self._next_id = 1  # 0 is the synchronizer

    def acquire(self) -> _AgentState:
        if self._heap:
            _, ident = heapq.heappop(self._heap)
            return self._agents[ident]
        agent = _AgentState(ident=self._next_id, position=0, ready=0)
        self._next_id += 1
        self._agents[agent.ident] = agent
        return agent

    def release(self, agent: _AgentState) -> None:
        if agent.position != 0:
            raise ReproError(f"agent {agent.ident} released away from the root")
        heapq.heappush(self._heap, (agent.ready, agent.ident))

    @property
    def hired(self) -> int:
        return self._next_id - 1


@register
class CleanStrategy(Strategy):
    """Algorithm 1 of the paper (coordinated, whiteboard model)."""

    name = "clean"
    model = "whiteboard"

    def expected_team_size(self, d: int) -> Optional[int]:
        return formulas.clean_peak_agents(d)

    def expected_total_moves(self, d: int) -> Optional[int]:
        return None  # Theorem 3 gives the agent component exactly, rest is a bound

    def expected_makespan(self, d: int) -> Optional[int]:
        return None  # Theorem 4 is O(n log n)

    # ------------------------------------------------------------------ #

    def generate(self, hypercube: Hypercube) -> Schedule:
        header = ChunkStreamHeader(
            dimension=hypercube.d,
            strategy=self.name,
            homebase=0,
            uses_cloning=False,
            team_size=formulas.clean_peak_agents(hypercube.d),
        )
        return collect_stream(header, self.stream_moves(hypercube))

    def stream_moves(self, hypercube: Hypercube) -> Iterator[Move]:
        """Native streaming generator: ``O(level width)`` buffered moves.

        The monolithic generator emitted moves in *program* order (each
        agent's whole walk at its dispatch point) and stable-sorted by
        completion time at the end.  Here the same emission order feeds a
        :class:`~repro.core.chunkstream.TimeOrderedEmitter` released at
        the synchronizer clock: every walk starts at
        ``max(agent.ready, sync_time)`` and ``sync_time`` never
        decreases, so no future move can complete at or before the
        current clock — flushing up to it reproduces the stable sort
        byte-for-byte while only the walks racing ahead of the
        synchronizer stay buffered.
        """
        d = hypercube.d
        tree = BroadcastTree(hypercube)
        emitter = TimeOrderedEmitter()
        pool = _Pool()

        # one guard agent per currently guarded node of the active level
        guards: Dict[int, List[_AgentState]] = {}

        sync_pos = 0
        sync_time = 0
        extras_per_level: Dict[int, int] = {}
        active_per_level: Dict[int, int] = {}

        def sync_step(dst: int, kind: MoveKind) -> None:
            nonlocal sync_pos, sync_time
            sync_time += 1
            emitter.emit(
                Move(
                    agent=SYNCHRONIZER_ID,
                    src=sync_pos,
                    dst=dst,
                    time=sync_time,
                    role=AgentRole.SYNCHRONIZER,
                    kind=kind,
                )
            )
            sync_pos = dst

        def sync_navigate(dst: int) -> None:
            # Route through the meet: descend into the already-clean levels
            # before climbing back up, never touching contaminated nodes.
            path = hypercube.path_via_meet(sync_pos, dst)
            for node in path[1:]:
                sync_step(node, MoveKind.NAVIGATE)

        def agent_walk(agent: _AgentState, path: List[int], kind: MoveKind) -> None:
            """Move an agent along ``path`` starting when it is ready."""
            t = agent.ready
            for src, dst in zip(path, path[1:]):
                t += 1
                emitter.emit(Move(agent=agent.ident, src=src, dst=dst, time=t, kind=kind))
            agent.position = path[-1]
            agent.ready = t

        if d == 0:
            return {  # type: ignore[return-value]
                "team_size": 1,
                "metadata": {"extras_per_level": {}, "active_per_level": {}},
            }

        # ---------------- Step 1: root to level 1 ---------------------- #
        # Escort one agent to each of the d children T(d-1) .. T(0); the
        # synchronizer accompanies each and returns to the root.
        for child in tree.children(0):
            agent = pool.acquire()
            start = max(sync_time, agent.ready)
            sync_time = start  # synchronizer waits for the agent if needed
            agent.ready = start
            agent_walk(agent, [0, child], MoveKind.DEPLOY)
            sync_step(child, MoveKind.ESCORT)
            sync_step(0, MoveKind.ESCORT)
            sync_time = max(sync_time, agent.ready)
            guards[child] = [agent]
            yield from emitter.release(sync_time)
        active_per_level[0] = d + 1

        # ---------------- Step 2: level l to level l + 1 ---------------- #
        for level in range(1, d):
            level_nodes = hypercube.level_nodes(level)

            # 2.1 -- collect and dispatch the extra agents from the root.
            needs_extras = any(tree.node_type(x) >= 2 for x in level_nodes)
            if sync_pos != 0:
                sync_navigate(0)
            dispatched = 0
            if needs_extras:
                for x in level_nodes:
                    k = tree.node_type(x)
                    for _ in range(max(0, k - 1)):
                        agent = pool.acquire()
                        agent.ready = max(agent.ready, sync_time)
                        agent_walk(agent, tree.path_from_root(x), MoveKind.DISPATCH)
                        guards.setdefault(x, []).append(agent)
                        dispatched += 1
            extras_per_level[level] = dispatched
            active_per_level[level] = (
                sum(len(v) for v in guards.values()) + 1
            )  # + synchronizer

            # 2.2 / 2.3 -- walk level l in increasing (lexicographic) order.
            for x in level_nodes:
                sync_navigate(x)
                k = tree.node_type(x)
                squad = guards.pop(x)
                if len(squad) != max(1, k):
                    raise ReproError(
                        f"node {x} (type T({k})) holds {len(squad)} agents, "
                        f"expected {max(1, k)}"
                    )
                # wait until everyone assigned to x has actually arrived
                sync_time = max(sync_time, max(a.ready for a in squad))

                if k == 0:
                    # 2.3: leaf reached -- release the agent back to the root
                    (agent,) = squad
                    agent.ready = max(agent.ready, sync_time)
                    agent_walk(agent, tree.path_to_root(x), MoveKind.RETURN)
                    pool.release(agent)
                    yield from emitter.release(sync_time)
                    continue

                # escort one agent down each broadcast-tree edge
                for child in tree.children(x):
                    agent = squad.pop()
                    agent.ready = max(agent.ready, sync_time)
                    sync_time = agent.ready
                    agent_walk(agent, [x, child], MoveKind.DEPLOY)
                    sync_step(child, MoveKind.ESCORT)
                    sync_step(x, MoveKind.ESCORT)
                    sync_time = max(sync_time, agent.ready)
                    guards[child] = [agent]
                if squad:
                    raise ReproError(f"agents left behind on {x}")
                yield from emitter.release(sync_time)

        # Final tidy-up: the agent guarding the last node (11...1, the only
        # level-d node) walks home — all its neighbours (the whole of level
        # d-1) are clean, so the node stays clean.  This matches Theorem
        # 3's accounting, where every agent's journey ends back at the
        # root (2l moves per leaf at level l, including l = d).
        final_node = (1 << d) - 1
        if final_node in guards:
            (agent,) = guards.pop(final_node)
            agent.ready = max(agent.ready, sync_time)
            agent_walk(agent, tree.path_to_root(final_node), MoveKind.RETURN)
            pool.release(agent)

        # Flush the last buffered walks in completion-time order — the
        # streaming equivalent of the old stable sort by time.
        yield from emitter.drain()

        return {  # type: ignore[return-value]
            "team_size": pool.hired + 1,  # + the synchronizer
            "metadata": {
                "extras_per_level": extras_per_level,
                "active_per_level": active_per_level,
                "synchronizer_id": SYNCHRONIZER_ID,
            },
        }
