"""Section 5 cloning variant of the visibility strategy.

"Our second strategy would be particularly suitable if the agents have
cloning capabilities [...] only one agent would be initially placed at the
homebase and agents would be cloned when needed.  With this cloning power,
the second strategy still requires ``n/2`` agents and ``log n`` steps, but
the number of moves performed by the agents is reduced to ``n - 1``."

Implementation: the wave structure of
:class:`~repro.core.visibility.VisibilityStrategy` is kept, but each
broadcast-tree edge is crossed by exactly *one* agent — the resident agent
moves to the first (largest-subtree) child and freshly cloned agents take
the remaining children.  Every move extends the guarded frontier, so total
moves = number of tree edges = ``n - 1``, and total agents created = number
of leaves = ``n/2``.

The paper also observes cloning would *not* help Algorithm ``CLEAN``
(agents would grow to ``n/2 + 1``); that claim is checked numerically by
:func:`repro.analysis.formulas.clean_with_cloning_agents` and the E7 bench.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.analysis import formulas
from repro.core.chunkstream import ChunkStreamHeader, collect_stream
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole
from repro.core.strategy import Strategy, register
from repro.errors import ReproError
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = ["CloningStrategy"]


@register
class CloningStrategy(Strategy):
    """Visibility strategy with cloning: one initial agent, ``n - 1`` moves."""

    name = "cloning"
    model = "cloning"
    uses_cloning = True

    def expected_team_size(self, d: int) -> Optional[int]:
        return formulas.cloning_agents(d)

    def expected_total_moves(self, d: int) -> Optional[int]:
        return formulas.cloning_moves(d)

    def expected_makespan(self, d: int) -> Optional[int]:
        return formulas.cloning_time_steps(d)

    def generate(self, hypercube: Hypercube) -> Schedule:
        header = ChunkStreamHeader(
            dimension=hypercube.d,
            strategy=self.name,
            homebase=0,
            uses_cloning=True,
            team_size=formulas.cloning_agents(hypercube.d),
        )
        return collect_stream(header, self.stream_moves(hypercube))

    def stream_moves(self, hypercube: Hypercube) -> Iterator[Move]:
        """Native streaming generator (wave order is replay order)."""
        d = hypercube.d
        tree = BroadcastTree(hypercube)
        next_clone = 1  # agent 0 is the original, placed on the homebase
        resident: Dict[int, int] = {0: 0}  # node -> agent living there
        wave_sizes: Dict[int, int] = {}

        # Same wave structure as the visibility strategy (Theorem 7): the
        # agents on class C_i act at ideal time i.  Each tree edge carries
        # exactly one agent: the resident walks to the first child, clones
        # spring to life for the remaining children.
        for wave in range(d):
            movers = 0
            for node in hypercube.class_members(wave):
                if node not in resident:
                    raise ReproError(f"no resident agent on {node} at wave {wave}")
                own = resident.pop(node)
                for idx, child in enumerate(tree.children(node)):
                    if idx == 0:
                        mover = own
                    else:
                        mover = next_clone
                        next_clone += 1
                    yield Move(
                        agent=mover,
                        src=node,
                        dst=child,
                        time=wave + 1,
                        role=AgentRole.AGENT,
                        kind=MoveKind.DEPLOY,
                    )
                    resident[child] = mover
                    movers += 1
            wave_sizes[wave] = movers

        return {  # type: ignore[return-value]
            # the original plus every clone created
            "team_size": next_clone,
            "metadata": {"wave_sizes": wave_sizes, "final_leaves": sorted(resident)},
        }
