"""Strategy abstraction and registry.

A :class:`Strategy` turns a hypercube into a complete
:class:`~repro.core.schedule.Schedule` (the deterministic "schedule plane").
Each paper strategy also declares its *model* (what capabilities it
assumes) and its expected complexity figures from
:mod:`repro.analysis.formulas`, so tests and benches can compare measured
vs. predicted uniformly.

The registry maps names to classes; strategies self-register via the
:func:`register` decorator, and :func:`get_strategy` instantiates by name —
this is what the CLI and the benches use.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional, Type

from repro.core.chunkstream import (
    DEFAULT_CHUNK_MOVES,
    ChunkStreamHeader,
    ScheduleChunk,
    chunk_move_stream,
    chunks_from_schedule,
)
from repro.core.schedule import Move, Schedule
from repro.errors import ReproError
from repro.obs.trace import get_active_tracer
from repro.topology.hypercube import Hypercube

__all__ = [
    "Strategy",
    "register",
    "get_strategy",
    "available_strategies",
    "set_active_cache",
    "get_active_cache",
]

_REGISTRY: Dict[str, Type["Strategy"]] = {}

#: process-wide schedule cache consulted by :meth:`Strategy.run`.
#:
#: Duck-typed on purpose (anything with ``schedule_for(strategy,
#: dimension)`` works) so this module never imports
#: :mod:`repro.fastpath` — the dependency points the other way.
_ACTIVE_CACHE: Optional[object] = None


def set_active_cache(cache: Optional[object]) -> Optional[object]:
    """Install (or clear, with ``None``) the process-wide schedule cache.

    Returns the previous cache so callers can restore it.  The cache is
    consulted by every :meth:`Strategy.run`, which is how sweeps,
    experiments and executor workers all get the warm path without
    threading a cache handle through each call site.
    """
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def get_active_cache() -> Optional[object]:
    """The currently installed process-wide schedule cache, if any."""
    return _ACTIVE_CACHE


class Strategy(abc.ABC):
    """Base class for cleaning strategies.

    Subclasses set :attr:`name` (registry key) and :attr:`model` (the
    capability model: ``"whiteboard"``, ``"visibility"``, ``"cloning"`` or
    ``"synchronous"``) and implement :meth:`generate`.
    """

    #: registry key, e.g. ``"clean"``
    name: str = ""
    #: capability model the strategy needs
    model: str = ""
    #: generator version tag; bump whenever :meth:`generate` changes its
    #: output for the same inputs, so content-addressed cache entries
    #: built from the old generator stop matching.
    version: str = "1"
    #: whether agents are created away from the homebase (Section 5);
    #: part of the chunk-stream header, needed before the first move.
    uses_cloning: bool = False

    def cache_params(self) -> Dict[str, object]:
        """Parameters that change the generated schedule (cache key part).

        The base strategies are parameter-free; a parameterised subclass
        must return every knob that affects :meth:`generate` output here,
        or stale cache entries will be served across configurations.
        """
        return {}

    @abc.abstractmethod
    def generate(self, hypercube: Hypercube) -> Schedule:
        """Produce the full cleaning schedule for ``hypercube``."""

    # ------------------------------------------------------------------ #
    # streaming production (the chunk plane)
    # ------------------------------------------------------------------ #

    def stream_moves(self, hypercube: Hypercube) -> Iterator[Move]:
        """Yield the schedule's moves in replay order, incrementally.

        A generator whose ``return`` value is the stream *footer*: a dict
        with the final ``team_size`` and the generator ``metadata`` (both
        only known once generation finishes).  Strategies with a native
        streaming generator override this to run in ``O(frontier)``
        memory; this default materializes via :meth:`generate` and
        replays — correct for every strategy, bounded for none.
        """
        schedule = self.generate(hypercube)
        yield from schedule.moves
        return {  # type: ignore[return-value]
            "team_size": schedule.team_size,
            "metadata": dict(schedule.metadata),
        }

    def generate_chunks(
        self, hypercube: Hypercube, chunk_moves: int = DEFAULT_CHUNK_MOVES
    ) -> Iterator[ScheduleChunk]:
        """Produce the schedule as a bounded-memory chunk stream.

        Yields :class:`~repro.core.chunkstream.ScheduleChunk` blocks in
        the compiled columnar layout; concatenated, they are
        byte-identical to compiling :meth:`generate`'s output.  Bounded
        memory requires an exact up-front team prediction
        (:meth:`expected_team_size` — the streaming verifier seeds the
        homebase guards from it); a strategy without one falls back to
        materialize-then-chunk, which is still chunked for consumers but
        not bounded at the producer.
        """
        team = self.expected_team_size(hypercube.d)
        if team is None:
            return chunks_from_schedule(self.generate(hypercube), chunk_moves)
        header = ChunkStreamHeader(
            dimension=hypercube.d,
            strategy=self.name,
            homebase=0,
            uses_cloning=self.uses_cloning,
            team_size=team,
        )
        return chunk_move_stream(header, self.stream_moves(hypercube), chunk_moves)

    def run_chunks(
        self, dimension: int, chunk_moves: int = DEFAULT_CHUNK_MOVES
    ) -> Iterator[ScheduleChunk]:
        """Streaming counterpart of :meth:`run`: chunks, never a Schedule.

        Serves from the process-wide cache when one is installed and
        offers a chunk-streaming accessor (``stream_for``); a traced run
        reports its move count from the final chunk's aggregate block,
        so tracing never forces materialization.
        """
        tracer = get_active_tracer()
        if tracer is None:
            yield from self._run_chunks(dimension, chunk_moves)
            return
        with tracer.span(
            "strategy.run_chunks", strategy=self.name, dimension=dimension
        ) as span:
            moves = 0
            for chunk in self._run_chunks(dimension, chunk_moves):
                moves = chunk.stats_so_far.total_moves
                yield chunk
            span.attrs["moves"] = moves
            span.attrs["chunk_moves"] = chunk_moves

    def _run_chunks(
        self, dimension: int, chunk_moves: int
    ) -> Iterator[ScheduleChunk]:
        cache = _ACTIVE_CACHE
        if cache is not None and hasattr(cache, "stream_for"):
            return cache.stream_for(self, dimension, chunk_moves)  # type: ignore[attr-defined]
        return self.generate_chunks(Hypercube(dimension), chunk_moves)

    # ------------------------------------------------------------------ #
    # predicted complexities (None = the paper gives only a bound)
    # ------------------------------------------------------------------ #

    def expected_team_size(self, d: int) -> Optional[int]:
        """Exact predicted team size for degree ``d``, if the paper gives one."""
        return None

    def expected_total_moves(self, d: int) -> Optional[int]:
        """Exact predicted total move count, if the paper gives one."""
        return None

    def expected_makespan(self, d: int) -> Optional[int]:
        """Exact predicted ideal-time, if the paper gives one."""
        return None

    def run(self, dimension: int) -> Schedule:
        """Convenience: build the hypercube and generate the schedule.

        When a process-wide cache is installed (:func:`set_active_cache`)
        the schedule is served from it — a warm hit skips generation
        entirely, which is what makes repeat sweeps cheap.  When a
        process-wide tracer is active
        (:func:`repro.obs.trace.set_active_tracer`) the call is wrapped in
        a ``strategy.run`` span; disabled tracing costs one global read.
        """
        tracer = get_active_tracer()
        if tracer is None:
            return self._run(dimension)
        with tracer.span(
            "strategy.run", strategy=self.name, dimension=dimension
        ) as span:
            schedule = self._run(dimension)
            # Report from the aggregate block, not len(schedule.moves): a
            # warm cache hit arrives with the stats header pre-attached,
            # and touching the move list here would force decompilation.
            span.attrs["moves"] = schedule.aggregates().total_moves
            return schedule

    def _run(self, dimension: int) -> Schedule:
        cache = _ACTIVE_CACHE
        if cache is not None:
            return cache.schedule_for(self, dimension)  # type: ignore[attr-defined]
        return self.generate(Hypercube(dimension))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def register(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator adding a strategy to the registry."""
    if not cls.name:
        raise ReproError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ReproError(f"duplicate strategy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_strategy(name: str) -> Strategy:
    """Instantiate a registered strategy by name.

    >>> get_strategy("visibility").model
    'visibility'
    """
    # Import the concrete modules lazily so the registry is populated even
    # when a caller imports only this module.
    import repro.core.clean  # noqa: F401
    import repro.core.cloning  # noqa: F401
    import repro.core.synchronous  # noqa: F401
    import repro.core.visibility  # noqa: F401
    import repro.search.level_sweep  # noqa: F401

    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ReproError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_strategies() -> List[str]:
    """Sorted names of all registered strategies."""
    import repro.core.clean  # noqa: F401
    import repro.core.cloning  # noqa: F401
    import repro.core.synchronous  # noqa: F401
    import repro.core.visibility  # noqa: F401
    import repro.search.level_sweep  # noqa: F401

    return sorted(_REGISTRY)
