"""Strategy abstraction and registry.

A :class:`Strategy` turns a hypercube into a complete
:class:`~repro.core.schedule.Schedule` (the deterministic "schedule plane").
Each paper strategy also declares its *model* (what capabilities it
assumes) and its expected complexity figures from
:mod:`repro.analysis.formulas`, so tests and benches can compare measured
vs. predicted uniformly.

The registry maps names to classes; strategies self-register via the
:func:`register` decorator, and :func:`get_strategy` instantiates by name —
this is what the CLI and the benches use.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Type

from repro.core.schedule import Schedule
from repro.errors import ReproError
from repro.topology.hypercube import Hypercube

__all__ = ["Strategy", "register", "get_strategy", "available_strategies"]

_REGISTRY: Dict[str, Type["Strategy"]] = {}


class Strategy(abc.ABC):
    """Base class for cleaning strategies.

    Subclasses set :attr:`name` (registry key) and :attr:`model` (the
    capability model: ``"whiteboard"``, ``"visibility"``, ``"cloning"`` or
    ``"synchronous"``) and implement :meth:`generate`.
    """

    #: registry key, e.g. ``"clean"``
    name: str = ""
    #: capability model the strategy needs
    model: str = ""

    @abc.abstractmethod
    def generate(self, hypercube: Hypercube) -> Schedule:
        """Produce the full cleaning schedule for ``hypercube``."""

    # ------------------------------------------------------------------ #
    # predicted complexities (None = the paper gives only a bound)
    # ------------------------------------------------------------------ #

    def expected_team_size(self, d: int) -> Optional[int]:
        """Exact predicted team size for degree ``d``, if the paper gives one."""
        return None

    def expected_total_moves(self, d: int) -> Optional[int]:
        """Exact predicted total move count, if the paper gives one."""
        return None

    def expected_makespan(self, d: int) -> Optional[int]:
        """Exact predicted ideal-time, if the paper gives one."""
        return None

    def run(self, dimension: int) -> Schedule:
        """Convenience: build the hypercube and generate the schedule."""
        return self.generate(Hypercube(dimension))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def register(cls: Type[Strategy]) -> Type[Strategy]:
    """Class decorator adding a strategy to the registry."""
    if not cls.name:
        raise ReproError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ReproError(f"duplicate strategy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_strategy(name: str) -> Strategy:
    """Instantiate a registered strategy by name.

    >>> get_strategy("visibility").model
    'visibility'
    """
    # Import the concrete modules lazily so the registry is populated even
    # when a caller imports only this module.
    import repro.core.clean  # noqa: F401
    import repro.core.cloning  # noqa: F401
    import repro.core.synchronous  # noqa: F401
    import repro.core.visibility  # noqa: F401
    import repro.search.level_sweep  # noqa: F401

    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ReproError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_strategies() -> List[str]:
    """Sorted names of all registered strategies."""
    import repro.core.clean  # noqa: F401
    import repro.core.cloning  # noqa: F401
    import repro.core.synchronous  # noqa: F401
    import repro.core.visibility  # noqa: F401
    import repro.search.level_sweep  # noqa: F401

    return sorted(_REGISTRY)
