"""Strategy accounting: the paper's three efficiency measures, packaged.

The paper measures a strategy by (1) the number of agents involved, (2) the
traffic — total moves — and (3) ideal time.  :func:`compute_metrics` pulls
all three out of a schedule (optionally with the verifier's replay data)
and adds the decomposition used in Theorem 3 (agent vs. synchronizer moves,
moves by purpose) and the predicted values of the generating strategy for
side-by-side reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.schedule import Schedule
from repro.core.strategy import get_strategy

__all__ = ["StrategyMetrics", "compute_metrics"]


@dataclass(frozen=True)
class StrategyMetrics:
    """Measured (and, where available, predicted) complexity figures."""

    strategy: str
    dimension: int
    n: int
    team_size: int
    total_moves: int
    agent_moves: int
    synchronizer_moves: int
    makespan: int
    moves_by_kind: Dict[str, int] = field(default_factory=dict)
    predicted_team_size: Optional[int] = None
    predicted_total_moves: Optional[int] = None
    predicted_makespan: Optional[int] = None

    @property
    def matches_predictions(self) -> bool:
        """Whether every available prediction is met exactly."""
        checks = [
            (self.predicted_team_size, self.team_size),
            (self.predicted_total_moves, self.total_moves),
            (self.predicted_makespan, self.makespan),
        ]
        return all(expected is None or expected == got for expected, got in checks)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering in benches and the CLI."""
        return {
            "strategy": self.strategy,
            "d": self.dimension,
            "n": self.n,
            "agents": self.team_size,
            "moves": self.total_moves,
            "agent_moves": self.agent_moves,
            "sync_moves": self.synchronizer_moves,
            "steps": self.makespan,
        }

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"strategy      : {self.strategy}",
            f"hypercube     : d={self.dimension} (n={self.n})",
            f"agents        : {self.team_size}"
            + (f"  (predicted {self.predicted_team_size})" if self.predicted_team_size else ""),
            f"moves         : {self.total_moves}"
            + (f"  (predicted {self.predicted_total_moves})" if self.predicted_total_moves else ""),
            f"  by agents   : {self.agent_moves}",
            f"  by sync     : {self.synchronizer_moves}",
            f"ideal time    : {self.makespan}"
            + (f"  (predicted {self.predicted_makespan})" if self.predicted_makespan else ""),
        ]
        for kind, count in sorted(self.moves_by_kind.items()):
            if count:
                lines.append(f"  {kind:<12}: {count}")
        return "\n".join(lines)


def compute_metrics(schedule: Schedule) -> StrategyMetrics:
    """Measure a schedule and attach the generating strategy's predictions."""
    try:
        strategy = get_strategy(schedule.strategy)
    except Exception:
        strategy = None
    d = schedule.dimension
    roles = schedule.moves_by_role()
    from repro.core.states import AgentRole

    return StrategyMetrics(
        strategy=schedule.strategy,
        dimension=d,
        n=schedule.n,
        team_size=schedule.team_size,
        total_moves=schedule.total_moves,
        agent_moves=roles[AgentRole.AGENT],
        synchronizer_moves=roles[AgentRole.SYNCHRONIZER],
        makespan=schedule.makespan,
        moves_by_kind={k.value: v for k, v in schedule.moves_by_kind().items()},
        predicted_team_size=strategy.expected_team_size(d) if strategy else None,
        predicted_total_moves=strategy.expected_total_moves(d) if strategy else None,
        predicted_makespan=strategy.expected_makespan(d) if strategy else None,
    )
