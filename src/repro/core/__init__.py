"""Core contribution: the paper's search strategies and their artifacts.

* :mod:`~repro.core.states` — node/agent state enums shared package-wide.
* :mod:`~repro.core.schedule` — the :class:`Move`/:class:`Schedule`
  representation every strategy emits (the "schedule plane").
* :mod:`~repro.core.strategy` — the :class:`Strategy` abstract base and
  registry.
* :mod:`~repro.core.clean` — Algorithm 1 ``CLEAN`` (synchronizer model).
* :mod:`~repro.core.visibility` — Algorithm 2 ``CLEAN WITH VISIBILITY``.
* :mod:`~repro.core.cloning` — the Section 5 cloning variant.
* :mod:`~repro.core.synchronous` — the Section 5 synchronous variant.
* :mod:`~repro.core.metrics` — agent/move/time accounting.
"""

from repro.core.clean import CleanStrategy
from repro.core.cloning import CloningStrategy
from repro.core.metrics import StrategyMetrics, compute_metrics
from repro.core.schedule import Move, MoveKind, Schedule
from repro.core.states import AgentRole, NodeState
from repro.core.strategy import Strategy, available_strategies, get_strategy
from repro.core.synchronous import SynchronousStrategy
from repro.core.visibility import VisibilityStrategy

__all__ = [
    "NodeState",
    "AgentRole",
    "Move",
    "MoveKind",
    "Schedule",
    "Strategy",
    "get_strategy",
    "available_strategies",
    "CleanStrategy",
    "VisibilityStrategy",
    "CloningStrategy",
    "SynchronousStrategy",
    "StrategyMetrics",
    "compute_metrics",
]
