"""The chunk plane: schedules as bounded-memory columnar block streams.

The paper's strategies emit ``O(n log n)`` moves (Theorems 3/8), so a
materialized :class:`~repro.core.schedule.Schedule` at d=18 is millions
of Python ``Move`` objects — hundreds of megabytes before any consumer
touches the first move.  This module defines the streaming alternative:
a schedule as an ordered sequence of :class:`ScheduleChunk` blocks, each
a fixed-size slice of the six-column struct-of-arrays layout the
compiled form (:class:`~repro.fastpath.compiled.CompiledSchedule`) uses,
with the running :class:`~repro.core.schedule.ScheduleAggregates` folded
per chunk.  A strategy that can emit its moves incrementally
(:meth:`~repro.core.strategy.Strategy.stream_moves`) produces the whole
stream in ``O(chunk + frontier)`` memory; every downstream consumer —
the batch verifier, the metric collector, the schedule cache's chunked
blob format — folds chunk by chunk without ever holding the schedule.

Stream contract
---------------
* chunks arrive in replay order: concatenating the columns of every
  chunk yields exactly the compiled form of the monolithic schedule
  (byte-identical — the collector tests pin this);
* every chunk carries the stream *header* (dimension, strategy,
  homebase, cloning flag and the exact ``team_size``, which the paper's
  formulas predict up front — the streaming verifier needs the initial
  homebase guard count before the first move);
* ``stats_so_far`` on each chunk is the aggregate block over all moves
  up to and including that chunk, so any prefix of the stream is
  measurable and the final chunk's block equals the monolithic
  ``Schedule.aggregates()``;
* exactly one chunk has ``is_last=True`` — the final chunk, which also
  carries the generator ``metadata`` (finalized only at the end of
  generation) — and it is the stream terminator: a consumer that runs
  out of chunks without seeing it is reading a torn stream;
* every chunk except the last holds exactly ``chunk_moves`` moves; the
  last holds the remainder (possibly zero moves for empty schedules).

Within one time unit, moves never straddle *logical* boundaries — a
chunk boundary may split a time unit, and consumers carry their
incremental state (contiguity trichotomy, open time-unit bookkeeping)
across it; nothing in the format aligns chunks to time units.
"""

from __future__ import annotations

import itertools
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.schedule import Move, MoveKind, Schedule, ScheduleAggregates
from repro.core.states import AgentRole
from repro.errors import ReproError, ScheduleError

__all__ = [
    "DEFAULT_CHUNK_MOVES",
    "KINDS",
    "ROLES",
    "KIND_CODE",
    "ROLE_CODE",
    "ChunkStreamHeader",
    "ScheduleChunk",
    "AggregateScanner",
    "TimeOrderedEmitter",
    "chunk_move_stream",
    "collect_stream",
    "header_from_schedule",
    "stream_from_schedule",
    "chunks_from_schedule",
    "rechunk",
    "chunks_to_schedule",
]

#: default moves per chunk — 64k int64 rows x 6 columns = 3 MiB of
#: column payload per chunk, small enough to stream d >= 16 in bounded
#: memory and large enough that per-chunk overhead disappears.
DEFAULT_CHUNK_MOVES = 65536

# Canonical enum <-> small-int code tables, shared with the compiled
# form (repro.fastpath.compiled imports these — fastpath sits above the
# core plane, so the dependency points downward).  The *byte* formats
# never store these indices bare: their headers record the enum value
# strings in index order, so blobs survive enum reordering.
KINDS: Tuple[MoveKind, ...] = tuple(MoveKind)
ROLES: Tuple[AgentRole, ...] = tuple(AgentRole)
KIND_CODE: Dict[MoveKind, int] = {kind: i for i, kind in enumerate(KINDS)}
ROLE_CODE: Dict[AgentRole, int] = {role: i for i, role in enumerate(ROLES)}


@dataclass(frozen=True)
class ChunkStreamHeader:
    """Everything about a schedule that is known before its first move.

    ``team_size`` must be *exact*: the streaming verifier deploys the
    initial homebase guards from it, and the chunker cross-checks it
    against the generator's final count (a mismatch is a generator bug
    and raises, never silently degrades a verdict).
    """

    dimension: int
    strategy: str
    homebase: int
    uses_cloning: bool
    team_size: int

    @property
    def n(self) -> int:
        """Number of hypercube nodes, ``2**dimension``."""
        return 1 << self.dimension


@dataclass
class ScheduleChunk:
    """One fixed-size columnar block of a schedule stream.

    The six parallel ``array('q')`` columns are the exact
    :class:`~repro.fastpath.compiled.CompiledSchedule` layout for the
    slice ``[start_move, start_move + len(self))`` of the move list;
    ``stats_so_far`` aggregates every move up to the end of this chunk.
    Only the final chunk (``is_last``) carries the generator metadata.
    """

    header: ChunkStreamHeader
    index: int
    start_move: int
    times: "array[int]"
    agents: "array[int]"
    srcs: "array[int]"
    dsts: "array[int]"
    kinds: "array[int]"
    roles: "array[int]"
    stats_so_far: ScheduleAggregates
    is_last: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Bytes held by the six columns of this chunk."""
        return sum(col.itemsize * len(col) for col in self.columns().values())

    def columns(self) -> Dict[str, "array[int]"]:
        """The column buffers, keyed by compiled-form column name."""
        return {
            "time": self.times,
            "agent": self.agents,
            "src": self.srcs,
            "dst": self.dsts,
            "kind": self.kinds,
            "role": self.roles,
        }

    def moves(self) -> Iterator[Move]:
        """Materialize this chunk's slice as ``Move`` objects (tests and
        collectors only — the streaming consumers read the columns)."""
        for i in range(len(self.times)):
            yield Move(
                agent=self.agents[i],
                src=self.srcs[i],
                dst=self.dsts[i],
                time=self.times[i],
                role=ROLES[self.roles[i]],
                kind=KINDS[self.kinds[i]],
            )


class AggregateScanner:
    """Incremental :func:`~repro.core.schedule.scan_moves` over a sorted
    move stream.

    Chunk streams are emitted in replay order (non-decreasing times), so
    ``peak_traveling_agents`` folds over runs of equal completion time
    with one reusable set — the same streaming trick the monolithic
    scanner uses — and the snapshot after the final move equals
    ``scan_moves(schedule.moves)`` exactly.
    """

    def __init__(self) -> None:
        self.total = 0
        self.makespan = 0
        self.role_counts = [0] * len(ROLES)
        self.kind_counts = [0] * len(KINDS)
        self.agents: set = set()
        self._run_time: Optional[int] = None
        self._run_agents: set = set()
        self._peak = 0

    def add(self, time: int, agent: int, kind_code: int, role_code: int) -> None:
        """Fold one move (already encoded) into the running aggregates."""
        if self._run_time is not None and time < self._run_time:
            raise ScheduleError(
                f"chunk stream goes back in time ({time} < {self._run_time})"
            )
        self.total += 1
        self.role_counts[role_code] += 1
        self.kind_counts[kind_code] += 1
        self.agents.add(agent)
        if time > self.makespan:
            self.makespan = time
        if time != self._run_time:
            if len(self._run_agents) > self._peak:
                self._peak = len(self._run_agents)
            self._run_agents.clear()
            self._run_time = time
        self._run_agents.add(agent)

    def snapshot(self) -> ScheduleAggregates:
        """The aggregate block over every move folded so far."""
        peak = max(self._peak, len(self._run_agents))
        return ScheduleAggregates(
            total_moves=self.total,
            makespan=self.makespan,
            role_counts={role: self.role_counts[i] for i, role in enumerate(ROLES)},
            kind_counts={kind: self.kind_counts[i] for i, kind in enumerate(KINDS)},
            agents_used=len(self.agents),
            peak_traveling_agents=peak,
        )


class TimeOrderedEmitter:
    """Streaming replacement for the generators' final ``moves.sort()``.

    The CLEAN and level-sweep generators emit moves in *program* order —
    an agent's whole walk at its dispatch point — and stable-sort by
    completion time at the end.  Sorting needs the full list; this
    emitter reproduces the exact same order incrementally.  Moves are
    bucketed by completion time; :meth:`release` flushes every bucket up
    to a *watermark* the generator guarantees no future move can
    undercut (both generators only ever start walks at or after the
    coordinator clock, which never decreases).  Buckets keep append
    order, so the flushed sequence equals the stable sort exactly.

    Peak buffered moves = one dispatch burst (the walks racing ahead of
    the coordinator clock), which is ``O(level width * d)`` — the
    streaming generators' memory high-water mark, far below the full
    ``O(n log n)`` move list.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Move]] = {}
        self._released = 0
        self.peak_buffered = 0
        self._buffered = 0

    def emit(self, move: Move) -> None:
        """Buffer one move awaiting its watermark."""
        self._buckets.setdefault(move.time, []).append(move)
        self._buffered += 1
        if self._buffered > self.peak_buffered:
            self.peak_buffered = self._buffered

    def release(self, watermark: int) -> Iterator[Move]:
        """Yield every buffered move with ``time <= watermark`` in time
        order (stable within a time unit).

        The caller promises every *future* :meth:`emit` has
        ``time > watermark``; releasing is then safe because no later
        move can belong before the flushed prefix.
        """
        if self._released > watermark:
            raise ReproError(
                f"watermark went backwards ({watermark} < {self._released})"
            )
        due = sorted(t for t in self._buckets if t <= watermark)
        for t in due:
            bucket = self._buckets.pop(t)
            self._buffered -= len(bucket)
            yield from bucket
        self._released = watermark

    def drain(self) -> Iterator[Move]:
        """Yield everything left, in time order (end of generation)."""
        for t in sorted(self._buckets):
            bucket = self._buckets.pop(t)
            self._buffered -= len(bucket)
            yield from bucket


def _empty_column() -> "array[int]":
    return array("q", bytes(0))


def chunk_move_stream(
    header: ChunkStreamHeader,
    moves: Iterator[Move],
    chunk_moves: int = DEFAULT_CHUNK_MOVES,
) -> Iterator[ScheduleChunk]:
    """Pack a replay-ordered move stream into :class:`ScheduleChunk`\\ s.

    ``moves`` is typically a strategy's
    :meth:`~repro.core.strategy.Strategy.stream_moves` generator; its
    ``return`` value (captured from ``StopIteration``) is the stream
    footer — a dict with the final ``team_size`` and ``metadata``.  The
    footer's team size is cross-checked against the header's: the header
    value seeds the streaming verifier's homebase guards, so the two
    disagreeing means the strategy's up-front team prediction is wrong —
    a generator bug that must fail loudly, not degrade a verdict.

    Always emits at least one chunk (the empty-schedule stream is a
    single zero-move final chunk).
    """
    if chunk_moves < 1:
        raise ReproError(f"chunk_moves must be >= 1, got {chunk_moves}")
    scanner = AggregateScanner()
    index = 0
    start = 0
    times = _empty_column()
    agents = _empty_column()
    srcs = _empty_column()
    dsts = _empty_column()
    kinds = _empty_column()
    roles = _empty_column()
    footer: Dict[str, object] = {}
    while True:
        try:
            move = next(moves)
        except StopIteration as stop:
            if stop.value is not None:
                footer = dict(stop.value)
            break
        kind_code = KIND_CODE[move.kind]
        role_code = ROLE_CODE[move.role]
        times.append(move.time)
        agents.append(move.agent)
        srcs.append(move.src)
        dsts.append(move.dst)
        kinds.append(kind_code)
        roles.append(role_code)
        scanner.add(move.time, move.agent, kind_code, role_code)
        if len(times) == chunk_moves:
            yield ScheduleChunk(
                header=header,
                index=index,
                start_move=start,
                times=times,
                agents=agents,
                srcs=srcs,
                dsts=dsts,
                kinds=kinds,
                roles=roles,
                stats_so_far=scanner.snapshot(),
            )
            index += 1
            start += chunk_moves
            times = _empty_column()
            agents = _empty_column()
            srcs = _empty_column()
            dsts = _empty_column()
            kinds = _empty_column()
            roles = _empty_column()
    final_team = footer.get("team_size")
    if final_team is not None and int(final_team) != header.team_size:  # type: ignore[call-overload]
        raise ReproError(
            f"{header.strategy}(d={header.dimension}): streamed team size "
            f"{final_team} != predicted {header.team_size} — the strategy's "
            "up-front team prediction (expected_team_size) is wrong"
        )
    yield ScheduleChunk(
        header=header,
        index=index,
        start_move=start,
        times=times,
        agents=agents,
        srcs=srcs,
        dsts=dsts,
        kinds=kinds,
        roles=roles,
        stats_so_far=scanner.snapshot(),
        is_last=True,
        metadata=dict(footer.get("metadata") or {}),  # type: ignore[call-overload]
    )


def collect_stream(header: ChunkStreamHeader, moves: Iterator[Move]) -> Schedule:
    """Materialize a move stream into a full :class:`Schedule`.

    The thin collector behind the streaming strategies' ``generate``:
    drives the generator to exhaustion, captures the footer, and builds
    the exact ``Schedule`` the monolithic generator used to return.
    """
    collected: List[Move] = []
    footer: Dict[str, object] = {}
    while True:
        try:
            collected.append(next(moves))
        except StopIteration as stop:
            if stop.value is not None:
                footer = dict(stop.value)
            break
    team = int(footer.get("team_size", header.team_size))  # type: ignore[call-overload]
    schedule = Schedule(
        dimension=header.dimension,
        strategy=header.strategy,
        moves=collected,
        team_size=team,
        homebase=header.homebase,
        uses_cloning=header.uses_cloning,
    )
    schedule.metadata.update(dict(footer.get("metadata") or {}))  # type: ignore[call-overload]
    return schedule


def header_from_schedule(schedule: Schedule) -> ChunkStreamHeader:
    """The stream header of an already-materialized schedule."""
    return ChunkStreamHeader(
        dimension=schedule.dimension,
        strategy=schedule.strategy,
        homebase=schedule.homebase,
        uses_cloning=schedule.uses_cloning,
        team_size=schedule.team_size,
    )


def stream_from_schedule(schedule: Schedule) -> Iterator[Move]:
    """A footered move stream over an already-materialized schedule.

    The fallback behind the default
    :meth:`~repro.core.strategy.Strategy.stream_moves` — not bounded
    (the schedule already exists), but it lets every strategy speak the
    chunk protocol even before it grows a native streaming generator.
    """
    yield from schedule.moves
    return {  # type: ignore[return-value]
        "team_size": schedule.team_size,
        "metadata": dict(schedule.metadata),
    }


def chunks_from_schedule(
    schedule: Schedule, chunk_moves: int = DEFAULT_CHUNK_MOVES
) -> Iterator[ScheduleChunk]:
    """Chunk an already-materialized schedule (fallback / test helper)."""
    return chunk_move_stream(
        header_from_schedule(schedule), stream_from_schedule(schedule), chunk_moves
    )


def rechunk(
    chunks: Iterable[ScheduleChunk], chunk_moves: int
) -> Iterator[ScheduleChunk]:
    """Re-slice a chunk stream to a different block size.

    Pure column surgery — no ``Move`` objects, no stats re-scan: output
    ``stats_so_far`` blocks are taken from the input blocks when a
    boundary coincides and re-derived incrementally otherwise.  Used by
    the cache's warm path to serve any requested ``chunk_moves`` from
    the stored block size.
    """
    if chunk_moves < 1:
        raise ReproError(f"chunk_moves must be >= 1, got {chunk_moves}")
    scanner = AggregateScanner()
    header: Optional[ChunkStreamHeader] = None
    metadata: Dict[str, object] = {}
    index = 0
    start = 0
    pending: List["array[int]"] = [_empty_column() for _ in range(6)]

    def _flush(is_last: bool) -> ScheduleChunk:
        nonlocal index, start, pending
        assert header is not None
        chunk = ScheduleChunk(
            header=header,
            index=index,
            start_move=start,
            times=pending[0],
            agents=pending[1],
            srcs=pending[2],
            dsts=pending[3],
            kinds=pending[4],
            roles=pending[5],
            stats_so_far=scanner.snapshot(),
            is_last=is_last,
            metadata=dict(metadata) if is_last else {},
        )
        index += 1
        start += len(chunk)
        pending = [_empty_column() for _ in range(6)]
        return chunk

    saw_last = False
    for chunk in chunks:
        header = chunk.header
        if chunk.is_last:
            saw_last = True
            metadata = chunk.metadata
        cols = [chunk.times, chunk.agents, chunk.srcs, chunk.dsts, chunk.kinds, chunk.roles]
        offset = 0
        total = len(chunk)
        while offset < total:
            take = min(chunk_moves - len(pending[0]), total - offset)
            for buf, col in zip(pending, cols):
                buf.extend(col[offset : offset + take])
            for i in range(offset, offset + take):
                scanner.add(chunk.times[i], chunk.agents[i], chunk.kinds[i], chunk.roles[i])
            offset += take
            if len(pending[0]) == chunk_moves:
                yield _flush(is_last=False)
    if header is None:
        raise ScheduleError("cannot rechunk an empty stream (no chunks at all)")
    if not saw_last:
        raise ScheduleError("torn chunk stream: no final chunk seen")
    yield _flush(is_last=True)


def chunks_to_schedule(chunks: Iterable[ScheduleChunk]) -> Schedule:
    """Materialize a chunk stream back into a full :class:`Schedule`.

    The inverse collector (tests, and callers that genuinely need
    ``Move`` objects from a streamed source).  Raises on a torn stream.
    """
    it = iter(chunks)
    try:
        first = next(it)
    except StopIteration:
        raise ScheduleError("empty chunk stream (no chunks at all)") from None
    header = first.header
    moves: List[Move] = []
    last: Optional[ScheduleChunk] = None
    for chunk in itertools.chain([first], it):
        moves.extend(chunk.moves())
        if chunk.is_last:
            last = chunk
    if last is None:
        raise ScheduleError("torn chunk stream: no final chunk seen")
    schedule = Schedule(
        dimension=header.dimension,
        strategy=header.strategy,
        moves=moves,
        team_size=header.team_size,
        homebase=header.homebase,
        uses_cloning=header.uses_cloning,
        metadata=dict(last.metadata),
    )
    schedule._agg = last.stats_so_far
    schedule._agg_key = (len(moves), moves[-1] if moves else None)
    return schedule
