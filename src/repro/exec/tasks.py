"""Built-in executor tasks: sweep cells, experiment cells, test probes.

Every task is a top-level function taking ``(payload, ctx)`` and
returning a JSON-able dict, registered by name so a worker process can
resolve it without unpickling closures (see :mod:`repro.exec.jobs`).

The two production tasks mirror the serial code paths exactly:

* ``sweep_cell`` runs one (strategy, dimension) measurement the same way
  :meth:`repro.analysis.sweeps.Sweep.run` does — generate, optionally
  verify, collect the standard metric columns;
* ``experiment_cell`` regenerates one EXPERIMENTS.md artifact via
  :func:`repro.analysis.experiments.run_experiment`.

The remaining tasks exist for the fault-tolerance tests and the CI crash
drill: ``sleep`` (timeout handling), ``crash`` (a worker that SIGKILLs
itself for the first ``crash_times`` attempts, then succeeds — the
canonical "worker dies mid-job" probe), ``fail`` (a deterministic task
exception) and ``echo``.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict

from repro.exec.jobs import TaskContext, register_task

__all__ = [
    "experiment_cell",
    "sweep_cell",
]

#: Environment hook for fault drills: ``REPRO_EXEC_INJECT_CRASH=<job key>``
#: makes the worker SIGKILL itself on the *first* attempt of that job (an
#: optional ``::<k>`` suffix crashes the first ``k`` attempts).  Used by the
#: CI smoke run to prove a killed cell is requeued and retried.
CRASH_ENV = "REPRO_EXEC_INJECT_CRASH"


def maybe_inject_crash(key: str, attempt: int) -> None:
    """Honour :data:`CRASH_ENV` — called by the worker before every task."""
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    target, _, times = spec.partition("::")
    crash_until = int(times) if times else 1
    if key == target and attempt < crash_until:
        os.kill(os.getpid(), signal.SIGKILL)


@register_task("sweep_cell")
def sweep_cell(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """One (strategy, dimension) cell of a sweep grid.

    Payload: ``strategy`` (registry name), ``dimension`` (int), ``verify``
    (bool, default true).  Returns the flat row data the serial
    :class:`~repro.analysis.sweeps.Sweep` would produce for this cell.
    A verification failure raises (→ a ``FAILED`` outcome), matching the
    serial sweep's refusal to report numbers from a broken schedule.
    """
    from repro.analysis.verify import verify_schedule
    from repro.core.states import AgentRole
    from repro.core.strategy import get_strategy
    from repro.errors import ReproError

    name = str(payload["strategy"])
    dimension = int(payload["dimension"])
    schedule = get_strategy(name).run(dimension)
    if payload.get("verify", True):
        report = verify_schedule(schedule)
        if not report.ok:
            raise ReproError(
                f"{name} d={dimension} failed verification: {report.summary()}"
            )
    roles = schedule.moves_by_role()
    return {
        "strategy": name,
        "dimension": dimension,
        "n": schedule.n,
        "values": {
            "agents": schedule.team_size,
            "moves": schedule.total_moves,
            "agent_moves": roles[AgentRole.AGENT],
            "sync_moves": roles[AgentRole.SYNCHRONIZER],
            "steps": schedule.makespan,
        },
    }


@register_task("experiment_cell")
def experiment_cell(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Regenerate one paper artifact (payload: ``id``)."""
    from repro.analysis.experiments import run_experiment

    result = run_experiment(str(payload["id"]))
    return {
        "id": result.experiment_id,
        "title": result.title,
        "passed": result.passed,
        "lines": list(result.lines),
    }


@register_task("echo")
def echo(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Return the payload unchanged (plus the attempt that served it)."""
    return {**payload, "attempt": ctx.attempt}


@register_task("sleep")
def sleep(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Sleep ``seconds`` then echo — the timeout-handling probe."""
    time.sleep(float(payload.get("seconds", 0.0)))
    return {"slept": payload.get("seconds", 0.0), "attempt": ctx.attempt}


@register_task("fail")
def fail(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Raise deterministically (payload: ``message``)."""
    raise RuntimeError(str(payload.get("message", "task failed")))


@register_task("crash")
def crash(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """SIGKILL the worker for the first ``crash_times`` attempts.

    The parent sees a dead worker with no result — exactly what a real
    mid-job crash looks like — and must requeue the job on a fresh
    worker.  From attempt ``crash_times`` onward the task succeeds.
    """
    crash_times = int(payload.get("crash_times", 1))
    if ctx.attempt < crash_times:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"survived_after": ctx.attempt, **{k: v for k, v in payload.items() if k != "crash_times"}}
