"""Built-in executor tasks: sweep cells, experiment cells, test probes.

Every task is a top-level function taking ``(payload, ctx)`` and
returning a JSON-able dict, registered by name so a worker process can
resolve it without unpickling closures (see :mod:`repro.exec.jobs`).

The two production tasks mirror the serial code paths exactly:

* ``sweep_cell`` runs one (strategy, dimension) measurement the same way
  :meth:`repro.analysis.sweeps.Sweep.run` does — generate, optionally
  verify, collect the standard metric columns;
* ``experiment_cell`` regenerates one EXPERIMENTS.md artifact via
  :func:`repro.analysis.experiments.run_experiment`.

The remaining tasks exist for the fault-tolerance tests and the CI crash
drill: ``sleep`` (timeout handling), ``crash`` (a worker that SIGKILLs
itself for the first ``crash_times`` attempts, then succeeds — the
canonical "worker dies mid-job" probe), ``fail`` (a deterministic task
exception) and ``echo``.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict

from repro.exec.jobs import TaskContext, register_task

__all__ = [
    "batch_cell",
    "experiment_cell",
    "sweep_cell",
]

#: Environment hook for fault drills: ``REPRO_EXEC_INJECT_CRASH=<job key>``
#: makes the worker SIGKILL itself on the *first* attempt of that job (an
#: optional ``::<k>`` suffix crashes the first ``k`` attempts).  Used by the
#: CI smoke run to prove a killed cell is requeued and retried.
CRASH_ENV = "REPRO_EXEC_INJECT_CRASH"


def maybe_inject_crash(key: str, attempt: int) -> None:
    """Honour :data:`CRASH_ENV` — called by the worker before every task."""
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    target, _, times = spec.partition("::")
    crash_until = int(times) if times else 1
    if key == target and attempt < crash_until:
        os.kill(os.getpid(), signal.SIGKILL)


@register_task("sweep_cell")
def sweep_cell(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """One (strategy, dimension) cell of a sweep grid.

    Payload: ``strategy`` (registry name), ``dimension`` (int), ``verify``
    (bool, default true), ``cache_dir`` (optional path to a shared
    :class:`~repro.fastpath.ScheduleCache` directory — safe across
    concurrent workers thanks to its atomic writes), ``stream``
    (optional bool — force the bounded-memory chunk pipeline on or off;
    absent means the d-threshold default), ``chunk_moves`` (optional
    int block size for that pipeline) and ``backend`` (optional kernel
    backend for the columnar verifier — ``"auto"``/``"numpy"``/
    ``"pure"``; absent defers to ``$REPRO_KERNEL_BACKEND`` in the
    worker's environment).  Returns the flat row data the
    serial :class:`~repro.analysis.sweeps.Sweep` would produce for this
    cell — both paths call the same
    :func:`~repro.analysis.sweeps.measure_cell` kernel, so they cannot
    drift — plus cache provenance and counters when a cache is in play.
    A verification failure raises (→ a ``FAILED`` outcome), matching the
    serial sweep's refusal to report numbers from a broken schedule.
    """
    from pathlib import Path

    from repro.analysis.sweeps import measure_cell
    from repro.core.chunkstream import DEFAULT_CHUNK_MOVES
    from repro.fastpath import ScheduleCache

    name = str(payload["strategy"])
    dimension = int(payload["dimension"])
    cache_dir = payload.get("cache_dir")
    cache = ScheduleCache(Path(str(cache_dir))) if cache_dir else None
    if cache is not None:
        # Mirror cache hit/miss/publish into the worker's telemetry sinks
        # (both Nones when capture is off — bind() accepts that).
        cache.bind_metrics(ctx.metrics)
        cache.bind_tracer(ctx.tracer)
    stream = payload.get("stream")
    values, _, provenance = measure_cell(
        name,
        dimension,
        verify=bool(payload.get("verify", True)),
        cache=cache,
        stream=None if stream is None else bool(stream),
        chunk_moves=int(payload.get("chunk_moves", DEFAULT_CHUNK_MOVES)),
        backend=None if payload.get("backend") is None else str(payload["backend"]),
    )
    out: Dict[str, Any] = {
        "strategy": name,
        "dimension": dimension,
        "n": 1 << dimension,
        "values": values,
    }
    if cache is not None:
        out["cache"] = {**provenance, "stats": cache.stats.as_dict()}
    return out


@register_task("experiment_cell")
def experiment_cell(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Regenerate one paper artifact (payload: ``id``).

    An optional ``cache_dir`` installs a shared
    :class:`~repro.fastpath.ScheduleCache` as the worker's active cache
    for the duration of the cell, so every ``Strategy.run`` inside the
    experiment is served warm when possible.
    """
    from repro.analysis.experiments import run_experiment

    cache_dir = payload.get("cache_dir")
    cache = None
    if cache_dir:
        from pathlib import Path

        from repro.core.strategy import set_active_cache
        from repro.fastpath import ScheduleCache

        cache = ScheduleCache(Path(str(cache_dir)))
        cache.bind_metrics(ctx.metrics)
        cache.bind_tracer(ctx.tracer)
        previous = set_active_cache(cache)
        try:
            result = run_experiment(str(payload["id"]))
        finally:
            set_active_cache(previous)
    else:
        result = run_experiment(str(payload["id"]))
    out: Dict[str, Any] = {
        "id": result.experiment_id,
        "title": result.title,
        "passed": result.passed,
        "lines": list(result.lines),
    }
    if cache is not None:
        out["cache"] = {"stats": cache.stats.as_dict()}
    return out


@register_task("batch_cell")
def batch_cell(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """One shard of a Monte Carlo campaign (payload: ``spec``, ``start``,
    ``count``).

    Runs trials ``[start, start+count)`` of the
    :class:`~repro.fastpath.batchsim.BatchScenarioSpec` through
    :func:`~repro.fastpath.batchsim.run_batch`.  Each worker replays the
    master seed stream and skips the first ``start`` sub-seeds, so the
    merged shards equal the serial campaign trial-for-trial no matter
    how the pool schedules them.  An optional ``backend`` key selects
    the kernel backend (``"auto"``/``"numpy"``/``"pure"``) for the
    shard; absent defers to ``$REPRO_KERNEL_BACKEND`` in the worker's
    environment.  Returns the shard's columnar
    :class:`~repro.fastpath.batchsim.BatchResult` payload (JSON-able),
    including the worker-local ``fastpath.batchsim.*`` counters.
    """
    from repro.fastpath.batchsim import BatchScenarioSpec, run_batch

    spec = BatchScenarioSpec.from_payload(dict(payload["spec"]))
    result = run_batch(
        spec,
        start=int(payload["start"]),
        count=int(payload["count"]),
        metrics=ctx.metrics,
        tracer=ctx.tracer,
        backend=None if payload.get("backend") is None else str(payload["backend"]),
    )
    return result.to_payload()


@register_task("echo")
def echo(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Return the payload unchanged (plus the attempt that served it)."""
    return {**payload, "attempt": ctx.attempt}


@register_task("sleep")
def sleep(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Sleep ``seconds`` then echo — the timeout-handling probe."""
    time.sleep(float(payload.get("seconds", 0.0)))
    return {"slept": payload.get("seconds", 0.0), "attempt": ctx.attempt}


@register_task("fail")
def fail(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """Raise deterministically (payload: ``message``)."""
    raise RuntimeError(str(payload.get("message", "task failed")))


@register_task("crash")
def crash(payload: Dict[str, Any], ctx: TaskContext) -> Dict[str, Any]:
    """SIGKILL the worker for the first ``crash_times`` attempts.

    The parent sees a dead worker with no result — exactly what a real
    mid-job crash looks like — and must requeue the job on a fresh
    worker.  From attempt ``crash_times`` onward the task succeeds.
    """
    crash_times = int(payload.get("crash_times", 1))
    if ctx.attempt < crash_times:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"survived_after": ctx.attempt, **{k: v for k, v in payload.items() if k != "crash_times"}}
