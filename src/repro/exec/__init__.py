"""Fault-tolerant parallel execution of sweep / experiment / benchmark cells.

The :mod:`repro.exec` package shards independent cells of work — the
(strategy, dimension) grid of a sweep, the experiment registry, a
benchmark's measurement points — across a pool of worker *processes*
with per-job timeouts, bounded retry with exponential backoff, crash
isolation (a worker SIGKILLed mid-job gets its job requeued on a fresh
worker), and resumable on-disk checkpoints keyed by the run's
``repro-manifest/v1`` record.  Results merge in deterministic cell
order regardless of completion order, and permanent failures degrade to
``FAILED`` rows instead of tracebacks.

Layering: ``exec`` sits *above* the analysis and simulation layers (its
tasks call into them) and *below* the CLI — nothing here may import
``repro.cli`` or ``repro.viz`` (enforced statically by ``repro-lint``
rule ``RPR210``).

See ``docs/EXECUTION.md`` for the pool model, the retry/checkpoint
semantics, and the failure-reporting contract.
"""

from repro.exec.checkpoint import CHECKPOINT_SCHEMA, Checkpoint, fingerprint_jobs
from repro.exec.jobs import (
    Job,
    JobOutcome,
    JobStatus,
    TaskContext,
    get_task,
    register_task,
    registered_tasks,
)
from repro.exec.pool import (
    ExecutorConfig,
    ParallelExecutor,
    merge_outcome_telemetry,
    run_jobs,
)
from repro.exec.runner import (
    experiment_jobs,
    merged_manifest,
    montecarlo_jobs,
    parallel_experiments,
    parallel_montecarlo,
    parallel_sweep,
    sweep_jobs,
    write_merged_manifest,
)
from repro.exec.tasks import CRASH_ENV

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CRASH_ENV",
    "Checkpoint",
    "ExecutorConfig",
    "Job",
    "JobOutcome",
    "JobStatus",
    "ParallelExecutor",
    "TaskContext",
    "experiment_jobs",
    "fingerprint_jobs",
    "get_task",
    "merge_outcome_telemetry",
    "merged_manifest",
    "montecarlo_jobs",
    "parallel_experiments",
    "parallel_montecarlo",
    "parallel_sweep",
    "register_task",
    "registered_tasks",
    "run_jobs",
    "sweep_jobs",
    "write_merged_manifest",
]
