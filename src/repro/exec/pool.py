"""The fault-tolerant worker pool: process-per-job with requeue-on-crash.

Design
------
Each in-flight job runs in its **own** child process (up to
``ExecutorConfig.jobs`` concurrently), talking back over a one-way pipe.
Process-per-job is deliberate: a worker that segfaults, is OOM-killed or
SIGKILLed mid-job takes down nothing but itself — the parent observes a
dead process with no result on the pipe and requeues the job on a fresh
worker, with exponential backoff, up to the retry cap.  A long-lived
pool (``concurrent.futures``-style) would instead wedge or poison every
queued job when one worker dies.

Failure taxonomy (what consumes a retry):

* **crash** — the process died without delivering a result; retried.
* **timeout** — the attempt exceeded ``config.timeout``; the process is
  SIGKILLed and the job retried (transient load is indistinguishable
  from a hang, so timeouts get the benefit of the backoff).
* **task error** — the task raised; *not* retried by default (a
  deterministic exception will just raise again; set
  ``retry_errors=True`` for flaky-by-nature tasks).

A job whose attempts are exhausted becomes a ``FAILED``
:class:`~repro.exec.jobs.JobOutcome` carrying the last error text —
failures degrade to table rows, never to tracebacks in the parent.

Determinism: outcomes are merged in job-definition order regardless of
completion order, so ``--jobs 8`` and ``--jobs 1`` produce byte-identical
result tables.

Observability: pass a :class:`~repro.obs.MetricsRegistry` to count
ok/failed/retried/crashed/timed-out jobs and sample per-job wall time;
every outcome carries the worker-built ``repro-manifest/v1`` record.

Cross-process telemetry: when a registry and/or a
:class:`~repro.obs.trace.Tracer` is attached, each worker builds its own
tracer + registry (their contents are the attempt's *delta*), serializes
both, and ships them back with the result.  The parent folds the deltas
in **job-definition order** (via :func:`merge_outcome_telemetry` — the
same determinism contract the result table already makes), so
``fastpath.cache.*`` / ``fastpath.batchsim.*`` counters are correct under
``--jobs N``, and grafts each worker's span tree under a per-job
``exec.job`` span with one ``exec.attempt`` child per try (crashes,
timeouts and retries appear as distinct error-status spans).  Telemetry
rides inside the checkpoint outcome records, so ``--resume`` restores it.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, ContextManager, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError
from repro.exec.checkpoint import Checkpoint
from repro.exec.jobs import Job, JobOutcome, JobStatus, TaskContext, get_task
from repro.obs import MetricsRegistry, build_manifest
from repro.obs.trace import Tracer, set_active_tracer

__all__ = ["ExecutorConfig", "ParallelExecutor", "run_jobs", "merge_outcome_telemetry"]

#: Upper bound on one poll cycle so deadline/backoff bookkeeping stays live.
_POLL_SECONDS = 0.05


def _worker_main(
    task_name: str,
    payload: Dict[str, Any],
    key: str,
    attempt: int,
    conn: multiprocessing.connection.Connection,
    run_id: Optional[str] = None,
    telemetry: bool = False,
) -> None:
    """Child-process entry point: run one task attempt, report, exit.

    With ``telemetry`` on, the attempt runs under a fresh worker-local
    :class:`~repro.obs.trace.Tracer` (installed as the process-wide active
    tracer so `Strategy.run` / `Engine.run` instrumentation fires) and a
    fresh :class:`~repro.obs.MetricsRegistry`; both serialize into the
    result message for the parent to merge.
    """
    import repro.exec.tasks as tasks  # registers the built-in tasks

    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    if telemetry:
        tracer = Tracer(run_id=run_id)
        registry = MetricsRegistry()
        set_active_tracer(tracer)
    try:
        tasks.maybe_inject_crash(key, attempt)
        fn = get_task(task_name)
        ctx = TaskContext(key=key, attempt=attempt, metrics=registry, tracer=tracer)
        if tracer is not None:
            with tracer.span("worker.job", job=key, task=task_name, attempt=attempt):
                value = fn(payload, ctx)
        else:
            value = fn(payload, ctx)
        extra: Dict[str, Any] = {"job": key, "task": task_name, "attempt": attempt}
        if run_id is not None:
            extra["run_id"] = run_id
        manifest = build_manifest(extra=extra)
        captured: Optional[Dict[str, Any]] = None
        if telemetry:
            assert tracer is not None and registry is not None
            captured = {"spans": tracer.to_records(), "metrics": registry.snapshot()}
        conn.send(("ok", value, manifest, captured))
    except BaseException as exc:  # noqa: BLE001 - the pipe is the error channel
        detail = traceback.format_exc(limit=8)
        conn.send(("error", f"{type(exc).__name__}: {exc}", detail))
    finally:
        conn.close()


@dataclass(frozen=True)
class ExecutorConfig:
    """Pool sizing and fault policy.

    Attributes
    ----------
    jobs:
        Maximum concurrently running worker processes (>= 1).
    timeout:
        Per-*attempt* wall-clock budget in seconds; ``None`` disables.
    retries:
        Extra attempts after the first (total attempts = ``retries + 1``).
    backoff_base / backoff_factor / backoff_max:
        Attempt ``k`` (0-based) is requeued no earlier than
        ``min(backoff_base * backoff_factor**k, backoff_max)`` seconds
        after its failure.
    retry_errors:
        Also retry deterministic task exceptions (default: only crashes
        and timeouts are retried).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` (cheap
        on POSIX — no re-import of numpy/networkx per job) and falls back
        to the platform default.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    retry_errors: bool = False
    start_method: Optional[str] = None

    def validate(self) -> None:
        """Reject configurations the pool cannot honour (raises
        :class:`~repro.errors.ExecutionError`)."""
        if self.jobs < 1:
            raise ExecutionError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ExecutionError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ExecutionError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ExecutionError("backoff parameters must be non-negative (factor >= 1)")

    def backoff(self, attempt: int) -> float:
        """Delay before requeueing after failed attempt ``attempt``."""
        return min(self.backoff_base * (self.backoff_factor**attempt), self.backoff_max)


@dataclass
class _Running:
    job: Job
    attempt: int  # 0-based attempt currently executing
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    started: float
    deadline: Optional[float]


class ParallelExecutor:
    """Run a batch of :class:`~repro.exec.jobs.Job` under the fault policy.

    Parameters
    ----------
    config:
        Pool sizing and retry/timeout policy.
    metrics:
        Optional registry receiving the ``exec.*`` counters and the
        per-job duration series, plus every worker's merged metrics delta.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when set, the run gets
        an ``exec.run`` span, each job an ``exec.job`` span with
        per-attempt children, and worker span trees are grafted under
        their job span.  Its ``run_id`` is threaded to every worker.
    on_outcome:
        Optional callback fired as each job reaches a terminal state
        (progress reporting; called in completion order).
    """

    def __init__(
        self,
        config: Optional[ExecutorConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        on_outcome: Optional[Callable[[Job, JobOutcome], None]] = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.config.validate()
        self.metrics = metrics
        self.tracer = tracer
        self.on_outcome = on_outcome
        #: Per-job attempt history for the current run (parent-side spans).
        self._attempt_history: Dict[str, List[Dict[str, Any]]] = {}
        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        self._ctx = multiprocessing.get_context(method)

    @property
    def _capture_telemetry(self) -> bool:
        """Workers capture + ship telemetry whenever a sink is attached."""
        return self.metrics is not None or self.tracer is not None

    # ------------------------------------------------------------------ #

    def run(
        self,
        jobs: Sequence[Job],
        *,
        checkpoint: Optional[Union[str, Path, Checkpoint]] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> List[JobOutcome]:
        """Execute ``jobs``; returns outcomes in job-definition order.

        With ``checkpoint`` set, previously finished ``OK`` cells (same
        fingerprint — same cells, same code revision) are served from
        disk and every newly finished cell is appended as it completes.
        """
        ordered = self._validate_jobs(jobs)
        manifest = manifest if manifest is not None else build_manifest()
        ckpt = Checkpoint(checkpoint) if isinstance(checkpoint, (str, Path)) else checkpoint
        self._attempt_history = {}

        run_span: ContextManager[Any] = (
            self.tracer.span("exec.run", jobs=len(ordered), workers=self.config.jobs)
            if self.tracer is not None
            else nullcontext()
        )
        with run_span:
            done: Dict[str, JobOutcome] = {}
            if ckpt is not None:
                done = ckpt.open(ordered, manifest)
                for job in ordered:
                    if job.key in done:
                        self._note_outcome(job, done[job.key], from_cache=True)

            pending: List[Job] = [job for job in ordered if job.key not in done]
            attempts: Dict[str, int] = {job.key: 0 for job in pending}
            errors: Dict[str, str] = {}
            delayed: List[Tuple[float, int, Job]] = []  # (ready_at, seq, job)
            running: Dict[str, _Running] = {}
            seq = itertools.count()
            try:
                while pending or delayed or running:
                    now = time.monotonic()
                    while delayed and delayed[0][0] <= now:
                        pending.append(heapq.heappop(delayed)[2])
                    while pending and len(running) < self.config.jobs:
                        self._launch(pending.pop(0), attempts, running)
                    self._wait(running, delayed)
                    now = time.monotonic()
                    for slot in list(running.values()):
                        outcome = self._reap(slot, now, attempts, errors)
                        if outcome is None:
                            continue
                        del running[slot.job.key]
                        if outcome is _RETRY:
                            ready = now + self.config.backoff(slot.attempt)
                            heapq.heappush(delayed, (ready, next(seq), slot.job))
                        else:
                            assert isinstance(outcome, JobOutcome)
                            done[slot.job.key] = outcome
                            if ckpt is not None:
                                ckpt.record(outcome)
                            self._note_outcome(slot.job, outcome)
            finally:
                for slot in running.values():
                    if slot.process.is_alive():
                        slot.process.kill()
                    slot.process.join()
                    slot.conn.close()
                if ckpt is not None:
                    ckpt.close()

            # Completion order varied with scheduling; the merge below is in
            # job-definition order, the executor's determinism contract.
            self._merge_telemetry(ordered, done)

        return [done[job.key] for job in ordered]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _validate_jobs(self, jobs: Sequence[Job]) -> List[Job]:
        ordered = sorted(jobs, key=lambda j: j.index)
        seen: Dict[str, Job] = {}
        for job in ordered:
            if job.key in seen:
                raise ExecutionError(f"duplicate job key {job.key!r}")
            seen[job.key] = job
            get_task(job.task)  # fail fast on unknown tasks, before any fork
        return ordered

    def _launch(self, job: Job, attempts: Dict[str, int], running: Dict[str, _Running]) -> None:
        attempt = attempts[job.key]
        recv, send = self._ctx.Pipe(duplex=False)
        run_id = self.tracer.run_id if self.tracer is not None else None
        process = self._ctx.Process(
            target=_worker_main,
            args=(job.task, job.payload, job.key, attempt, send, run_id, self._capture_telemetry),
            name=f"repro-exec:{job.key}:a{attempt}",
            daemon=True,
        )
        process.start()
        send.close()  # the child owns the send end now
        now = time.monotonic()
        deadline = now + self.config.timeout if self.config.timeout is not None else None
        running[job.key] = _Running(job, attempt, process, recv, now, deadline)
        if self.metrics is not None:
            self.metrics.gauge("exec.workers_busy").set(len(running))

    def _wait(self, running: Dict[str, _Running], delayed: List[Tuple[float, int, Job]]) -> None:
        """Block until something is likely actionable (result, death,
        deadline or backoff expiry), bounded by :data:`_POLL_SECONDS`."""
        if not running:
            if delayed:
                now = time.monotonic()
                time.sleep(max(0.0, min(delayed[0][0] - now, _POLL_SECONDS)))
            return
        timeout = _POLL_SECONDS
        now = time.monotonic()
        horizons = [slot.deadline for slot in running.values() if slot.deadline is not None]
        if delayed:
            horizons.append(delayed[0][0])
        if horizons:
            timeout = min(timeout, max(0.0, min(horizons) - now))
        multiprocessing.connection.wait(
            [slot.conn for slot in running.values()], timeout=timeout
        )

    def _reap(
        self,
        slot: _Running,
        now: float,
        attempts: Dict[str, int],
        errors: Dict[str, str],
    ) -> Optional[object]:
        """Inspect one running slot; returns ``None`` (still running), the
        ``_RETRY`` sentinel, or the terminal :class:`JobOutcome`."""
        key = slot.job.key
        if slot.conn.poll():
            try:
                message = slot.conn.recv()
            except (EOFError, OSError):
                message = None  # died while writing: treat as a crash
            slot.process.join()
            slot.conn.close()
            if message is not None and message[0] == "ok":
                _, value, worker_manifest, telemetry = message
                self._log_attempt(slot, now, "ok")
                return self._finish_ok(slot, now, value, worker_manifest, telemetry)
            if message is not None:
                _, error, detail = message
                errors[key] = error
                self._count("exec.task_errors")
                self._log_attempt(slot, now, "task-error", error)
                if self.config.retry_errors and self._retries_left(slot):
                    return self._note_retry(slot, attempts)
                return self._finish_failed(slot, now, error, attempts)
            # EOF on the pipe with no message: the worker died mid-report —
            # indistinguishable from any other crash, and counted as one.
            code = slot.process.exitcode
            errors[key] = f"worker crashed (exit code {code})"
            self._count("exec.crashes")
            self._log_attempt(slot, now, "crash", errors[key])
        elif not slot.process.is_alive():
            slot.process.join()
            slot.conn.close()
            code = slot.process.exitcode
            errors[key] = f"worker crashed (exit code {code})"
            self._count("exec.crashes")
            self._log_attempt(slot, now, "crash", errors[key])
        elif slot.deadline is not None and now >= slot.deadline:
            slot.process.kill()
            slot.process.join()
            slot.conn.close()
            assert self.config.timeout is not None
            errors[key] = f"timed out after {self.config.timeout:g}s"
            self._count("exec.timeouts")
            self._log_attempt(slot, now, "timeout", errors[key])
        else:
            return None  # still running
        # crash / timeout path: requeue on a fresh worker if budget remains
        if self._retries_left(slot):
            return self._note_retry(slot, attempts)
        return self._finish_failed(slot, now, errors[key], attempts)

    def _retries_left(self, slot: _Running) -> bool:
        return slot.attempt < self.config.retries

    def _note_retry(self, slot: _Running, attempts: Dict[str, int]) -> object:
        attempts[slot.job.key] = slot.attempt + 1
        self._count("exec.retries")
        return _RETRY

    def _log_attempt(self, slot: _Running, now: float, outcome: str, error: Optional[str] = None) -> None:
        """Remember one attempt's timing/outcome for the per-job spans."""
        if self.tracer is None:
            return
        entry: Dict[str, Any] = {
            "attempt": slot.attempt,
            "outcome": outcome,
            "start": slot.started,
            "end": now,
        }
        if error is not None:
            entry["error"] = error
        self._attempt_history.setdefault(slot.job.key, []).append(entry)

    def _merge_telemetry(self, ordered: Sequence[Job], done: Dict[str, JobOutcome]) -> None:
        """Fold worker telemetry in job-definition order; emit job spans."""
        if self.metrics is not None:
            merge_outcome_telemetry(
                [done[job.key] for job in ordered if job.key in done], metrics=self.metrics
            )
        tracer = self.tracer
        if tracer is None:
            return
        for job in ordered:
            outcome = done.get(job.key)
            if outcome is None:  # pragma: no cover - run() always fills done
                continue
            history = self._attempt_history.get(job.key, [])
            start = history[0]["start"] if history else 0.0
            end = history[-1]["end"] if history else 0.0
            job_span = tracer.record_span(
                "exec.job",
                start=start,
                end=end,
                status="ok" if outcome.ok else "error",
                job=job.key,
                task=job.task,
                attempts=outcome.attempts,
                cached=outcome.cached,
            )
            for entry in history:
                attrs: Dict[str, Any] = {"attempt": entry["attempt"], "outcome": entry["outcome"]}
                if "error" in entry:
                    attrs["error"] = entry["error"]
                tracer.record_span(
                    "exec.attempt",
                    parent=job_span,
                    start=entry["start"],
                    end=entry["end"],
                    status="ok" if entry["outcome"] == "ok" else "error",
                    **attrs,
                )
            telemetry = outcome.telemetry or {}
            spans = telemetry.get("spans")
            if spans:
                tracer.attach(spans, parent=job_span)

    def _finish_ok(
        self,
        slot: _Running,
        now: float,
        value: Optional[Dict[str, Any]],
        worker_manifest: Optional[Dict[str, Any]],
        telemetry: Optional[Dict[str, Any]],
    ) -> JobOutcome:
        self._count("exec.jobs_ok")
        return JobOutcome(
            key=slot.job.key,
            status=JobStatus.OK,
            value=value,
            attempts=slot.attempt + 1,
            duration=now - slot.started,
            worker_pid=slot.process.pid,
            manifest=worker_manifest,
            telemetry=telemetry,
        )

    def _finish_failed(
        self, slot: _Running, now: float, error: str, attempts: Dict[str, int]
    ) -> JobOutcome:
        self._count("exec.jobs_failed")
        return JobOutcome(
            key=slot.job.key,
            status=JobStatus.FAILED,
            error=error,
            attempts=slot.attempt + 1,
            duration=now - slot.started,
            worker_pid=slot.process.pid,
        )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _note_outcome(self, job: Job, outcome: JobOutcome, *, from_cache: bool = False) -> None:
        if self.metrics is not None:
            if from_cache:
                self.metrics.counter("exec.jobs_cached").inc()
            else:
                self.metrics.series("exec.job_seconds").sample(
                    float(job.index), outcome.duration
                )
        if self.on_outcome is not None:
            self.on_outcome(job, outcome)


#: Internal sentinel: the attempt failed but the job was requeued.
_RETRY: object = object()


def merge_outcome_telemetry(
    outcomes: Sequence[JobOutcome],
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold every outcome's worker metrics delta into one registry.

    The merge is **order-insensitive in effect**: outcomes are folded
    sorted by job key, so a shuffled completion order, a crash-requeued
    worker (only the successful attempt ships telemetry) and a
    resume-from-checkpoint run all produce byte-identical merged
    snapshots — the property the telemetry determinism tests pin.
    """
    registry = metrics if metrics is not None else MetricsRegistry()
    for outcome in sorted(outcomes, key=lambda o: o.key):
        telemetry = outcome.telemetry or {}
        snapshot = telemetry.get("metrics")
        if snapshot:
            registry.merge_snapshot(snapshot)
    return registry


def run_jobs(
    jobs: Sequence[Job],
    config: Optional[ExecutorConfig] = None,
    *,
    checkpoint: Optional[Union[str, Path]] = None,
    manifest: Optional[Dict[str, Any]] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    on_outcome: Optional[Callable[[Job, JobOutcome], None]] = None,
) -> List[JobOutcome]:
    """Convenience wrapper: build a :class:`ParallelExecutor` and run."""
    executor = ParallelExecutor(config, metrics=metrics, tracer=tracer, on_outcome=on_outcome)
    return executor.run(jobs, checkpoint=checkpoint, manifest=manifest)
