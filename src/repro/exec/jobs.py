"""The executor's job vocabulary: specs, outcomes, and the task registry.

A :class:`Job` is one independent cell of work — "(strategy, dimension)
sweep cell", "experiment E4" — described entirely by JSON-able data: a
*task name* resolved through the registry in the worker process plus a
*payload* dict.  Keeping jobs data-only (no closures, no callables) is
what makes them safe to ship to a fresh worker process under any
multiprocessing start method, to write into checkpoints, and to compare
across runs for resume.

A :class:`JobOutcome` is what comes back: a terminal :class:`JobStatus`
(``OK`` or ``FAILED``), the task's JSON-able return value, the error
text for failures, and the attempt/timing/provenance record (including
the worker's ``repro-manifest/v1`` manifest).  Outcomes are merged in
job-definition order regardless of completion order — the executor's
determinism contract.

Tasks are registered at import time with :func:`register_task`; the
worker entry point resolves them by name via :func:`get_task`.  A task
is ``fn(payload, ctx) -> dict`` where ``ctx`` is a :class:`TaskContext`
naming the job and the attempt number (used by the crash-injection
hooks and by retry-aware test tasks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import ExecutionError

__all__ = [
    "Job",
    "JobOutcome",
    "JobStatus",
    "TaskContext",
    "TaskFn",
    "get_task",
    "register_task",
    "registered_tasks",
]


class JobStatus(enum.Enum):
    """Terminal state of one job."""

    OK = "ok"
    FAILED = "failed"


@dataclass(frozen=True)
class Job:
    """One independent, JSON-able cell of work.

    Attributes
    ----------
    key:
        Unique, stable identifier (e.g. ``"sweep:clean:d=12"``); the
        checkpoint and the crash-injection hook address jobs by key.
    task:
        Registry name of the function to run (see :func:`register_task`).
    payload:
        JSON-able keyword data for the task.
    index:
        Position in the submission order; outcomes are merged sorted by
        this, so the result table is deterministic no matter which worker
        finishes first.
    """

    key: str
    task: str
    payload: Dict[str, Any] = field(default_factory=dict)
    index: int = 0

    def spec(self) -> Dict[str, Any]:
        """The JSON-able identity used for checkpoint fingerprinting."""
        return {"key": self.key, "task": self.task, "payload": self.payload}


@dataclass
class JobOutcome:
    """Terminal record for one job (one per job, however many attempts)."""

    key: str
    status: JobStatus
    value: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0
    worker_pid: Optional[int] = None
    manifest: Optional[Dict[str, Any]] = None
    cached: bool = False
    #: Worker-side capture shipped over the result pipe: ``{"spans": [...],
    #: "metrics": <registry snapshot delta>}``.  Persisted in the checkpoint
    #: so a resumed run restores the merged telemetry of reused cells.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.OK

    def to_json_dict(self) -> Dict[str, Any]:
        """The checkpoint serialization (see :mod:`repro.exec.checkpoint`)."""
        return {
            "key": self.key,
            "status": self.status.value,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
            "duration": round(self.duration, 6),
            "worker_pid": self.worker_pid,
            "manifest": self.manifest,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "JobOutcome":
        return cls(
            key=str(data["key"]),
            status=JobStatus(data["status"]),
            value=data.get("value"),
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
            duration=float(data.get("duration", 0.0)),
            worker_pid=data.get("worker_pid"),
            manifest=data.get("manifest"),
            cached=True,
            telemetry=data.get("telemetry"),
        )


@dataclass(frozen=True)
class TaskContext:
    """What a task may know about its own execution.

    ``metrics`` and ``tracer`` are the worker-local telemetry sinks (a
    fresh :class:`~repro.obs.metrics.MetricsRegistry` and
    :class:`~repro.obs.trace.Tracer` per attempt, so their contents are
    the attempt's *delta*); both are ``None`` when telemetry capture is
    off.  Typed as ``Any`` — tasks duck-type them into layers (fastpath)
    that must not import ``repro.obs``.
    """

    key: str
    attempt: int  # 0-based: 0 on the first try, 1 on the first retry, ...
    metrics: Optional[Any] = None
    tracer: Optional[Any] = None


TaskFn = Callable[[Dict[str, Any], TaskContext], Dict[str, Any]]

_TASKS: Dict[str, TaskFn] = {}


def register_task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Register ``fn`` under ``name``; names must be unique."""

    def deco(fn: TaskFn) -> TaskFn:
        if name in _TASKS:
            raise ExecutionError(f"task {name!r} registered twice")
        _TASKS[name] = fn
        return fn

    return deco


def get_task(name: str) -> TaskFn:
    """Resolve a registered task; raises :class:`ExecutionError` for unknowns."""
    try:
        return _TASKS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown task {name!r}; registered: {sorted(_TASKS)}"
        ) from None


def registered_tasks() -> Dict[str, TaskFn]:
    """A snapshot of the registry (for the tests and the docs)."""
    return dict(_TASKS)
