"""Resumable on-disk checkpoints for the parallel executor.

A checkpoint is an append-only JSONL file (schema
``repro-exec-checkpoint/v2``): a header record followed by one record
per finished job, flushed as each job completes so an interrupted run
loses at most the jobs still in flight.

The header keys the file to a *specific* piece of work: a fingerprint
over the full job list (keys, task names, payloads) combined with the
identity fields of the run's ``repro-manifest/v1`` record (git revision,
python version).  On resume the fingerprint must match — a checkpoint
from different cells, a different code revision or a different
interpreter is silently *not* reused (the run starts fresh and rewrites
the file), because merging results produced by different code into one
table is exactly the confusion manifests exist to prevent.

Only ``OK`` outcomes are reused on resume: a resumed run re-attempts
cells that previously failed (the operator re-running with ``--resume``
is usually retrying after fixing the cause), while finished cells are
served from disk without re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from repro.errors import CheckpointError
from repro.exec.jobs import Job, JobOutcome, JobStatus
from repro.obs.stream import read_jsonl_records

__all__ = ["CHECKPOINT_SCHEMA", "Checkpoint", "fingerprint_jobs"]

#: Schema identifier stamped into every checkpoint header.  v2 added the
#: per-outcome ``telemetry`` field (worker span tree + metrics delta) so a
#: resumed run restores merged telemetry; v1 files simply fail the header
#: check and the run starts fresh — the usual resume degradation path.
CHECKPOINT_SCHEMA = "repro-exec-checkpoint/v2"

#: Manifest keys that participate in the fingerprint (the volatile keys —
#: metrics, seeds chosen per cell — do not).
_MANIFEST_IDENTITY_KEYS = ("schema", "git", "python")


def fingerprint_jobs(jobs: Sequence[Job], manifest: Optional[Dict[str, Any]] = None) -> str:
    """A stable digest of *what* is being computed and *by which code*."""
    identity: Dict[str, Any] = {
        "jobs": [job.spec() for job in sorted(jobs, key=lambda j: j.key)],
        "manifest": {k: (manifest or {}).get(k) for k in _MANIFEST_IDENTITY_KEYS},
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class Checkpoint:
    """One resumable run's on-disk record.

    Usage (the executor drives this)::

        ckpt = Checkpoint(path)
        done = ckpt.open(jobs, manifest)   # {} on a fresh/invalid file
        ...
        ckpt.record(outcome)               # append + flush per finished job
        ckpt.close()
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def load_reusable(
        self, jobs: Sequence[Job], manifest: Optional[Dict[str, Any]] = None
    ) -> Dict[str, JobOutcome]:
        """Outcomes reusable for ``jobs``: ``OK`` records under a matching
        header fingerprint.  An absent, truncated, corrupt or mismatching
        file yields ``{}`` — resume never fails, it just starts over."""
        records = self._read_records()
        if not records:
            return {}
        header = records[0]
        if header.get("record") != "header" or header.get("schema") != CHECKPOINT_SCHEMA:
            return {}
        if header.get("fingerprint") != fingerprint_jobs(jobs, manifest):
            return {}
        keys = {job.key for job in jobs}
        reusable: Dict[str, JobOutcome] = {}
        for record in records[1:]:
            if record.get("record") != "outcome":
                continue
            try:
                outcome = JobOutcome.from_json_dict(record)
            except (KeyError, ValueError):
                continue  # torn tail write from an interrupted run
            if outcome.key in keys and outcome.status is JobStatus.OK:
                reusable[outcome.key] = outcome
        return reusable

    def _read_records(self) -> List[Dict[str, Any]]:
        # Shared torn-tail-tolerant JSONL reader (also behind the RunLog
        # trajectory store): stop at the first undecodable line, keep the
        # intact prefix.
        try:
            return read_jsonl_records(self.path, missing_ok=True)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def open(
        self,
        jobs: Sequence[Job],
        manifest: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, JobOutcome]:
        """Load reusable outcomes, then (re)open the file for appending.

        The file is rewritten with a fresh header plus the reused records,
        so it is always a single consistent run — never an interleaving of
        two generations of results.
        """
        reusable = self.load_reusable(jobs, manifest)
        self._fingerprint = fingerprint_jobs(jobs, manifest)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "record": "header",
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self._fingerprint,
            "jobs": len(jobs),
            "manifest": manifest,
        }
        records = [header] + [
            {"record": "outcome", **outcome.to_json_dict()} for outcome in reusable.values()
        ]
        # Stage the fresh generation in a sibling tmp file and publish it
        # with one rename: a reader (or a crash) never observes the window
        # between truncating the old run and finishing the new header.
        # Appends after that point are torn-tail tolerant (see load()).
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=f".{self.path.name}.", suffix=".tmp", dir=self.path.parent
            )
            try:
                with os.fdopen(fd, "w") as staging:
                    for record in records:
                        staging.write(json.dumps(record, sort_keys=True) + "\n")
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._fh = self.path.open("a")
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint {self.path}: {exc}") from exc
        return reusable

    def record(self, outcome: JobOutcome) -> None:
        """Append one finished job (flushed immediately for crash safety)."""
        if self._fh is None:
            raise CheckpointError("checkpoint not opened for writing")
        self._append({"record": "outcome", **outcome.to_json_dict()})

    def _append(self, record: Dict[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the append handle (idempotent; records are already flushed)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
