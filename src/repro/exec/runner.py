"""Shared high-level runners: sweeps and experiment batches on the pool.

These are the entry points the CLI (``repro-search sweep/experiment
--jobs N``) and the benchmark suite share.  Each builds the job list in
the *serial* iteration order, runs it through
:class:`~repro.exec.pool.ParallelExecutor`, and merges the outcomes back
into the exact shapes the serial code paths produce
(:class:`~repro.analysis.sweeps.SweepRow` lists,
:class:`~repro.analysis.experiments.ExperimentResult` lists) — so every
renderer downstream works unchanged and a parallel run is
row-for-row comparable with a serial one.

Failure contract: a cell whose job permanently fails (crashes/timeouts
beyond the retry cap, or a task error) becomes a ``FAILED`` row/result
carrying the error text — the batch always completes and always renders
a full table.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import ExperimentResult, experiment_ids, experiment_title
from repro.analysis.sweeps import Sweep, SweepRow
from repro.exec.jobs import Job, JobOutcome
from repro.exec.pool import ExecutorConfig, ParallelExecutor
from repro.obs import MetricsRegistry, build_manifest
from repro.obs.trace import Tracer

__all__ = [
    "experiment_jobs",
    "merged_manifest",
    "montecarlo_jobs",
    "parallel_experiments",
    "parallel_montecarlo",
    "parallel_sweep",
    "sweep_jobs",
    "write_merged_manifest",
]

OutcomeHook = Callable[[Job, JobOutcome], None]


# --------------------------------------------------------------------- #
# sweeps
# --------------------------------------------------------------------- #


def sweep_jobs(
    strategies: Sequence[str],
    dimensions: Sequence[int],
    *,
    verify: bool = True,
    cache_dir: Optional[Union[str, Path]] = None,
    stream: Optional[bool] = None,
    chunk_moves: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[Job]:
    """One ``sweep_cell`` job per (strategy, dimension), serial order.

    ``cache_dir`` names a shared :class:`~repro.fastpath.ScheduleCache`
    directory; every worker opens the same directory (safe: entries are
    published via atomic renames) so one cell's miss becomes every later
    run's hit.  ``stream``/``chunk_moves`` select and size the workers'
    bounded-memory chunk pipeline (``None`` = the cell kernel's
    d-threshold default / default block size).  ``backend`` rides along
    to every worker's columnar verifier (``None`` = defer to the
    worker's ``$REPRO_KERNEL_BACKEND``).
    """
    jobs: List[Job] = []
    for name in strategies:
        for d in dimensions:
            payload: Dict[str, Any] = {
                "strategy": name,
                "dimension": int(d),
                "verify": verify,
            }
            if cache_dir is not None:
                payload["cache_dir"] = str(cache_dir)
            if stream is not None:
                payload["stream"] = bool(stream)
            if chunk_moves is not None:
                payload["chunk_moves"] = int(chunk_moves)
            if backend is not None:
                payload["backend"] = str(backend)
            jobs.append(
                Job(
                    key=f"sweep:{name}:d={d}",
                    task="sweep_cell",
                    payload=payload,
                    index=len(jobs),
                )
            )
    return jobs


def parallel_sweep(
    strategies: Sequence[str],
    dimensions: Sequence[int],
    config: Optional[ExecutorConfig] = None,
    *,
    verify: bool = True,
    cache_dir: Optional[Union[str, Path]] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    on_outcome: Optional[OutcomeHook] = None,
    stream: Optional[bool] = None,
    chunk_moves: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Sweep, List[SweepRow], List[JobOutcome]]:
    """The parallel twin of :func:`repro.analysis.sweeps.run_sweep`.

    Returns ``(sweep, rows, outcomes)`` with one row per cell in serial
    order; permanently failed cells appear as rows with
    ``status="failed"`` and no metric values (the renderers print
    ``FAILED``).  Only the standard metric columns are supported —
    ``extra_metrics`` callables cannot be shipped to workers.
    ``stream``/``chunk_moves``/``backend`` ride along to every worker's
    cell kernel.
    """
    sweep = Sweep(strategies, dimensions, verify=verify, backend=backend)
    jobs = sweep_jobs(
        strategies,
        dimensions,
        verify=verify,
        cache_dir=cache_dir,
        stream=stream,
        chunk_moves=chunk_moves,
        backend=backend,
    )
    executor = ParallelExecutor(config, metrics=metrics, tracer=tracer, on_outcome=on_outcome)
    outcomes = executor.run(jobs, checkpoint=checkpoint, manifest=_batch_manifest(jobs))

    rows: List[SweepRow] = []
    for job, outcome in zip(jobs, outcomes):
        dimension = int(job.payload["dimension"])
        if outcome.ok and outcome.value is not None:
            rows.append(
                SweepRow(
                    strategy=str(outcome.value["strategy"]),
                    dimension=int(outcome.value["dimension"]),
                    n=int(outcome.value["n"]),
                    values=dict(outcome.value["values"]),
                )
            )
        else:
            rows.append(
                SweepRow(
                    strategy=str(job.payload["strategy"]),
                    dimension=dimension,
                    n=1 << dimension,
                    values={},
                    status="failed",
                )
            )
    return sweep, rows, outcomes


# --------------------------------------------------------------------- #
# experiments
# --------------------------------------------------------------------- #


def experiment_jobs(
    ids: Optional[Sequence[str]] = None,
    *,
    cache_dir: Optional[Union[str, Path]] = None,
) -> List[Job]:
    """One ``experiment_cell`` job per experiment id (registry order).

    ``cache_dir`` makes each worker install a shared
    :class:`~repro.fastpath.ScheduleCache` as the process-wide active
    cache for the duration of its cell.
    """
    wanted = list(ids) if ids is not None else experiment_ids()
    jobs = []
    for index, exp_id in enumerate(wanted):
        payload: Dict[str, Any] = {"id": exp_id}
        if cache_dir is not None:
            payload["cache_dir"] = str(cache_dir)
        jobs.append(
            Job(
                key=f"experiment:{exp_id}",
                task="experiment_cell",
                payload=payload,
                index=index,
            )
        )
    return jobs


def parallel_experiments(
    ids: Optional[Sequence[str]] = None,
    config: Optional[ExecutorConfig] = None,
    *,
    cache_dir: Optional[Union[str, Path]] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    on_outcome: Optional[OutcomeHook] = None,
) -> Tuple[List[ExperimentResult], List[JobOutcome]]:
    """The parallel twin of :func:`repro.analysis.experiments.run_all`.

    A permanently failed cell becomes a failed
    :class:`~repro.analysis.experiments.ExperimentResult` whose lines
    carry the executor's error text (``EXECUTOR FAILED: ...``).
    """
    jobs = experiment_jobs(ids, cache_dir=cache_dir)
    executor = ParallelExecutor(config, metrics=metrics, tracer=tracer, on_outcome=on_outcome)
    outcomes = executor.run(jobs, checkpoint=checkpoint, manifest=_batch_manifest(jobs))

    results: List[ExperimentResult] = []
    for job, outcome in zip(jobs, outcomes):
        exp_id = str(job.payload["id"])
        if outcome.ok and outcome.value is not None:
            results.append(
                ExperimentResult(
                    experiment_id=str(outcome.value["id"]),
                    title=str(outcome.value["title"]),
                    passed=bool(outcome.value["passed"]),
                    lines=[str(line) for line in outcome.value["lines"]],
                )
            )
        else:
            results.append(
                ExperimentResult(
                    experiment_id=exp_id,
                    title=experiment_title(exp_id) or "(unknown experiment)",
                    passed=False,
                    lines=[f"EXECUTOR FAILED: {outcome.error or 'unknown error'}"],
                )
            )
    return results, outcomes


# --------------------------------------------------------------------- #
# Monte Carlo campaigns
# --------------------------------------------------------------------- #


def montecarlo_jobs(
    spec: Any, shards: int, *, backend: Optional[str] = None
) -> List[Job]:
    """One ``batch_cell`` job per contiguous trial window, serial order.

    The campaign's trials are split into ``shards`` near-equal windows
    ``[start, start+count)``.  Because every worker replays the master
    seed stream and skips to its window
    (:mod:`repro.fastpath.batchsim`, determinism section), the merged
    shards equal the serial run regardless of the split or the pool's
    scheduling.  ``backend`` rides along to every shard's
    :func:`~repro.fastpath.batchsim.run_batch` call (``None`` = defer to
    the worker's ``$REPRO_KERNEL_BACKEND``).
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    trials = int(spec.trials)
    shards = min(shards, trials) or 1
    base, remainder = divmod(trials, shards)
    jobs: List[Job] = []
    start = 0
    for index in range(shards):
        count = base + (1 if index < remainder else 0)
        payload: Dict[str, Any] = {
            "spec": spec.to_payload(),
            "start": start,
            "count": count,
        }
        if backend is not None:
            payload["backend"] = str(backend)
        jobs.append(
            Job(
                key=f"montecarlo:{spec.strategy}:d={spec.dimension}:"
                f"trials={start}..{start + count}",
                task="batch_cell",
                payload=payload,
                index=index,
            )
        )
        start += count
    return jobs


def parallel_montecarlo(
    spec: Any,
    config: Optional[ExecutorConfig] = None,
    *,
    shards: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    on_outcome: Optional[OutcomeHook] = None,
    backend: Optional[str] = None,
) -> Tuple[Any, List[JobOutcome]]:
    """The parallel twin of :func:`repro.fastpath.batchsim.run_batch`.

    Returns ``(result, outcomes)`` where ``result`` is the merged
    :class:`~repro.fastpath.batchsim.BatchResult` over the shards that
    succeeded.  A permanently failed shard degrades instead of crashing
    the campaign: its trials are absent from the distributions and
    counted in ``result.counters["missing_trials"]`` (plus a FAILED
    outcome), so a partial campaign still renders.
    """
    from repro.fastpath.batchsim import BatchResult

    config = config or ExecutorConfig()
    jobs = montecarlo_jobs(spec, shards or max(config.jobs, 1), backend=backend)
    executor = ParallelExecutor(config, metrics=metrics, tracer=tracer, on_outcome=on_outcome)
    outcomes = executor.run(jobs, checkpoint=checkpoint, manifest=_batch_manifest(jobs))

    parts = []
    missing = 0
    for job, outcome in zip(jobs, outcomes):
        if outcome.ok and outcome.value is not None:
            parts.append(BatchResult.from_payload(outcome.value))
        else:
            missing += int(job.payload["count"])
    if parts:
        result = BatchResult.merge(parts)
    else:
        result = BatchResult(spec=spec, start=0)
    if missing:
        result.counters["missing_trials"] = result.counters.get("missing_trials", 0) + missing
    return result, outcomes


# --------------------------------------------------------------------- #
# merged manifests
# --------------------------------------------------------------------- #


def merged_manifest(
    outcomes: Sequence[JobOutcome], *, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One ``repro-manifest/v1`` record summarizing a whole batch.

    The per-cell provenance (key, status, attempts, duration, cache hit)
    is folded into ``extra["cells"]`` so a single artifact answers both
    "what produced this table?" and "which cells were retried or
    failed?".
    """
    cells = []
    for o in outcomes:
        cell = {
            "key": o.key,
            "status": o.status.value,
            "attempts": o.attempts,
            "duration": round(o.duration, 6),
            "cached": o.cached,
            "error": o.error,
        }
        if isinstance(o.value, dict) and "cache" in o.value:
            # schedule-cache provenance reported by the task itself
            # (fingerprint, hit-or-generated, worker-local counters)
            cell["schedule_cache"] = o.value["cache"]
        cells.append(cell)
    merged_extra: Dict[str, Any] = {
        "cells": cells,
        "failed": sum(1 for o in outcomes if not o.ok),
        "retried": sum(1 for o in outcomes if o.attempts > 1),
    }
    if extra:
        merged_extra.update(extra)
    return build_manifest(extra=merged_extra)


def write_merged_manifest(
    path: Union[str, Path],
    outcomes: Sequence[JobOutcome],
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write :func:`merged_manifest` as pretty JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(merged_manifest(outcomes, extra=extra), indent=2, sort_keys=True) + "\n"
    # Publish atomically: a concurrent reader (or a crash mid-write) sees
    # either the previous manifest or this one, never a truncated file.
    fd, tmp = tempfile.mkstemp(prefix=f".{target.name}.", suffix=".tmp", dir=target.parent)
    try:
        with os.fdopen(fd, "w") as staging:
            staging.write(payload)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def _batch_manifest(jobs: Sequence[Job]) -> Dict[str, Any]:
    """The run-level manifest a checkpoint is keyed by."""
    return build_manifest(extra={"jobs": [job.key for job in jobs]})
