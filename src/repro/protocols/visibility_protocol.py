"""Algorithm 2 as genuine autonomous agents (Section 4 model).

Every agent runs the identical local rule of the paper:

* register on the local whiteboard (a counter — ``O(log n)`` bits);
* on a node ``x`` of type ``T(k)``: wait until the full squad of
  ``2^{k-1}`` agents is present *and* every smaller neighbour of ``x`` is
  clean or guarded (observed with the visibility capability);
* claim a departure slot from the whiteboard in mutual exclusion — slot
  order determines the destination child (``2^{i-1}`` slots for the
  type-``T(i)`` child, largest first), which is the paper's "which agent
  go to which node is also determined by accessing the whiteboard";
* move, re-register, repeat; terminate on a leaf (and keep guarding it).

The squad-complete condition is made *sticky* via the ``taken`` counter
(once any agent has claimed a slot the rest may follow even though the
live count has dropped) — without it, later agents would wait for a full
squad that can never re-form.  Correctness under arbitrary delay models is
Theorem 6; the tests run this under unit, random and adversarial delays
and check monotonicity, capture, and the exact Theorem 5/7/8 counts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.formulas import agents_for_type, visibility_agents
from repro.errors import SimulationError
from repro.protocols.base import (
    ProtocolModel,
    cached_tree,
    child_for_slot,
    decrement,
    increment,
    smaller_all_safe,
    take_slot,
)
from repro.sim.agent import AgentContext, Move, Terminate, UpdateWhiteboard, WaitUntil
from repro.sim.engine import Engine, SimResult
from repro.sim.scheduling import DelayModel
from repro.topology.hypercube import Hypercube

__all__ = ["MODEL", "visibility_agent", "run_visibility_protocol"]

#: Section 4 model: whiteboards plus neighbour visibility.
MODEL = ProtocolModel(visibility=True)


def visibility_agent(ctx: AgentContext):
    """Behaviour generator implementing the Algorithm 2 local rule."""
    tree = cached_tree(ctx.dimension)
    yield UpdateWhiteboard(increment("count"))  # register at the homebase
    while True:
        node = ctx.node
        k = tree.node_type(node)
        if k == 0:
            # a leaf: nothing bigger to clean; guard it forever
            yield Terminate()
            return
        needed = agents_for_type(k)
        safe = smaller_all_safe(ctx.dimension, node)

        def ready(view, needed=needed, safe=safe) -> bool:
            if (view.wb("taken") or 0) > 0:
                return True  # squad already broke camp; follow it
            return view.wb("count") == needed and safe(view)

        yield WaitUntil(ready, description=f"squad of {needed} at {node}")
        slot = yield UpdateWhiteboard(take_slot(needed))
        if slot is None:
            raise SimulationError(
                f"agent {ctx.agent_id} found no free slot at {node}"
            )
        destination = child_for_slot(ctx.dimension, node, slot)
        yield UpdateWhiteboard(decrement("count"))
        yield Move(destination)
        yield UpdateWhiteboard(increment("count"))


def run_visibility_protocol(
    dimension: int,
    *,
    delay: Optional[DelayModel] = None,
    intruder: Optional[str] = "reachable",
    check_contiguity: bool = True,
    whiteboard_capacity_bits: Optional[int] = None,
    subscribers: Optional[List] = None,
    trace_maxlen: Optional[int] = None,
) -> SimResult:
    """Run Algorithm 2 on the engine with ``n/2`` agents; returns the result.

    ``whiteboard_capacity_bits`` defaults to unlimited; pass e.g.
    ``8 * (dimension + 2)`` to enforce the paper's ``O(log n)`` bound.
    """
    h = Hypercube(dimension)
    team = visibility_agents(dimension)
    behaviors: List = [visibility_agent] * team
    engine = Engine(
        h,
        behaviors,
        delay=delay,
        visibility=True,
        intruder=intruder,
        check_contiguity=check_contiguity,
        whiteboard_capacity_bits=whiteboard_capacity_bits,
        subscribers=subscribers,
        trace_maxlen=trace_maxlen,
    )
    return engine.run()
