"""Shared plumbing for the protocol agents.

Agents know the topology is a hypercube (Section 2: "The agents know that
the topology they are searching is a hypercube"), so behaviours may compute
node types, children and tree paths from a node id and the dimension; the
cached accessors here keep that cheap.  The whiteboard conventions —
``count`` of settled agents, ``taken`` departure slots — live here too, as
small mutator functions, so every protocol stores only ``O(log n)``-bit
counters (never agent lists), matching the paper's whiteboard bound.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.analysis.formulas import agents_for_type
from repro.core.states import NodeState
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = [
    "cached_hypercube",
    "cached_tree",
    "child_for_slot",
    "increment",
    "decrement",
    "take_slot",
    "smaller_all_safe",
]


@lru_cache(maxsize=None)
def cached_hypercube(dimension: int) -> Hypercube:
    """A shared :class:`Hypercube` per dimension (agents' innate knowledge)."""
    return Hypercube(dimension)


@lru_cache(maxsize=None)
def cached_tree(dimension: int) -> BroadcastTree:
    """A shared :class:`BroadcastTree` per dimension."""
    return BroadcastTree(cached_hypercube(dimension))


@lru_cache(maxsize=None)
def _slot_table(dimension: int, node: int) -> List[Tuple[int, int]]:
    """``(cumulative_end, child)`` rows mapping departure slots to children.

    A node of type ``T(k)`` dispatches ``agents_for_type(i)`` agents to its
    type-``T(i)`` child, largest subtree first; slot ``s`` (0-based order
    in which agents claim departures) maps to the child whose cumulative
    range contains ``s``.
    """
    tree = cached_tree(dimension)
    rows: List[Tuple[int, int]] = []
    cumulative = 0
    for child in tree.children(node):
        cumulative += agents_for_type(tree.node_type(child))
        rows.append((cumulative, child))
    return rows


def child_for_slot(dimension: int, node: int, slot: int) -> int:
    """The destination child for departure slot ``slot`` at ``node``."""
    for end, child in _slot_table(dimension, node):
        if slot < end:
            return child
    raise ValueError(f"slot {slot} out of range at node {node}")


def increment(key: str):
    """Whiteboard mutator: ``wb[key] += 1`` (from 0), returns new value."""

    def mutate(wb: Dict) -> int:
        wb[key] = wb.get(key, 0) + 1
        return wb[key]

    return mutate


def decrement(key: str):
    """Whiteboard mutator: ``wb[key] -= 1``, returns new value."""

    def mutate(wb: Dict) -> int:
        wb[key] = wb.get(key, 0) - 1
        return wb[key]

    return mutate


def take_slot(limit: int, key: str = "taken"):
    """Whiteboard mutator claiming the next departure slot below ``limit``.

    Returns the claimed 0-based slot, or ``None`` when all are gone (the
    caller lost the race and should re-wait).
    """

    def mutate(wb: Dict) -> Optional[int]:
        current = wb.get(key, 0)
        if current >= limit:
            return None
        wb[key] = current + 1
        return current

    return mutate


def smaller_all_safe(dimension: int, node: int):
    """Wait predicate: every smaller neighbour of ``node`` clean or guarded.

    Uses the visibility capability (``view.neighbor_states``); vacuously
    true at the homebase.
    """
    smaller = frozenset(cached_hypercube(dimension).smaller_neighbors(node))

    def predicate(view) -> bool:
        states = view.neighbor_states()
        return all(states[y] is not NodeState.CONTAMINATED for y in smaller)

    return predicate
