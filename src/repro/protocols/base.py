"""Shared plumbing for the protocol agents.

Agents know the topology is a hypercube (Section 2: "The agents know that
the topology they are searching is a hypercube"), so behaviours may compute
node types, children and tree paths from a node id and the dimension; the
cached accessors here keep that cheap.  The whiteboard conventions —
``count`` of settled agents, ``taken`` departure slots — live here too, as
small mutator functions, so every protocol stores only ``O(log n)``-bit
counters (never agent lists), matching the paper's whiteboard bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.formulas import agents_for_type
from repro.core.states import NodeState
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

if TYPE_CHECKING:
    from repro.sim.agent import NodeView

__all__ = [
    "ProtocolModel",
    "cached_hypercube",
    "cached_tree",
    "child_for_slot",
    "increment",
    "decrement",
    "take_slot",
    "smaller_all_safe",
]


@dataclass(frozen=True)
class ProtocolModel:
    """Capability declaration of one protocol module.

    Every protocol module assigns a module-level ``MODEL = ProtocolModel(...)``
    naming exactly the engine capabilities its behaviours rely on — the same
    flags :class:`~repro.sim.engine.Engine` takes.  The declaration is the
    contract that ``repro-lint`` (:mod:`repro.lint`) cross-checks statically
    against the actions the module's AST can reach: a behaviour yielding
    :class:`~repro.sim.agent.See` in a module whose model does not declare
    ``visibility`` is flagged before any simulation runs, instead of raising
    :class:`~repro.errors.AgentError` at runtime in whichever rarely-taken
    branch exercises it.
    """

    #: Section 4 power: agents may observe neighbour states (``See`` /
    #: ``NodeView.neighbor_states``).
    visibility: bool = False
    #: Section 5 power: agents may spawn copies of themselves (``CloneSelf``).
    cloning: bool = False
    #: Section 5 synchronous power: agents may consult the global time
    #: (``NodeView.time`` / timed ``WaitUntil`` wake-ups).
    global_clock: bool = False

    def capabilities(self) -> FrozenSet[str]:
        """The declared capability names, as a frozen set."""
        return frozenset(
            name
            for name in ("visibility", "cloning", "global_clock")
            if getattr(self, name)
        )


@lru_cache(maxsize=None)
def cached_hypercube(dimension: int) -> Hypercube:
    """A shared :class:`Hypercube` per dimension (agents' innate knowledge)."""
    return Hypercube(dimension)


@lru_cache(maxsize=None)
def cached_tree(dimension: int) -> BroadcastTree:
    """A shared :class:`BroadcastTree` per dimension."""
    return BroadcastTree(cached_hypercube(dimension))


@lru_cache(maxsize=None)
def _slot_table(dimension: int, node: int) -> List[Tuple[int, int]]:
    """``(cumulative_end, child)`` rows mapping departure slots to children.

    A node of type ``T(k)`` dispatches ``agents_for_type(i)`` agents to its
    type-``T(i)`` child, largest subtree first; slot ``s`` (0-based order
    in which agents claim departures) maps to the child whose cumulative
    range contains ``s``.
    """
    tree = cached_tree(dimension)
    rows: List[Tuple[int, int]] = []
    cumulative = 0
    for child in tree.children(node):
        cumulative += agents_for_type(tree.node_type(child))
        rows.append((cumulative, child))
    return rows


def child_for_slot(dimension: int, node: int, slot: int) -> int:
    """The destination child for departure slot ``slot`` at ``node``."""
    for end, child in _slot_table(dimension, node):
        if slot < end:
            return child
    raise ValueError(f"slot {slot} out of range at node {node}")


def increment(key: str) -> Callable[[Dict[str, Any]], int]:
    """Whiteboard mutator: ``wb[key] += 1`` (from 0), returns new value."""

    def mutate(wb: Dict[str, Any]) -> int:
        wb[key] = wb.get(key, 0) + 1
        return wb[key]

    return mutate


def decrement(key: str) -> Callable[[Dict[str, Any]], int]:
    """Whiteboard mutator: ``wb[key] -= 1``, returns new value."""

    def mutate(wb: Dict[str, Any]) -> int:
        wb[key] = wb.get(key, 0) - 1
        return wb[key]

    return mutate


def take_slot(limit: int, key: str = "taken") -> Callable[[Dict[str, Any]], Optional[int]]:
    """Whiteboard mutator claiming the next departure slot below ``limit``.

    Returns the claimed 0-based slot, or ``None`` when all are gone (the
    caller lost the race and should re-wait).
    """

    def mutate(wb: Dict[str, Any]) -> Optional[int]:
        current = wb.get(key, 0)
        if current >= limit:
            return None
        wb[key] = current + 1
        return current

    return mutate


def smaller_all_safe(dimension: int, node: int) -> Callable[["NodeView"], bool]:
    """Wait predicate: every smaller neighbour of ``node`` clean or guarded.

    Uses the visibility capability (``view.neighbor_states``); vacuously
    true at the homebase.
    """
    smaller = frozenset(cached_hypercube(dimension).smaller_neighbors(node))

    def predicate(view: "NodeView") -> bool:
        states = view.neighbor_states()
        return all(states[y] is not NodeState.CONTAMINATED for y in smaller)

    return predicate
