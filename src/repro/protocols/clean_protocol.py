"""Algorithm 1 as a genuine whiteboard protocol (Section 3 model).

No visibility, no clock, no cloning: one *synchronizer* agent coordinates a
pool of identical *followers* purely by writing orders on whiteboards.  The
paper's informal description leaves the coordination mechanics open ("the
whiteboard is used for any communication between the synchronizer and the
agents"); the concrete realization here keeps every whiteboard at
``O(log n)`` bits:

Root whiteboard:
    ``order_target`` / ``order_remaining`` — a single dispatch order: the
    next ``order_remaining`` idle followers should walk the broadcast-tree
    path to ``order_target``.  The synchronizer waits for the slot to
    drain before posting the next order.  ``idle`` counts followers parked
    at the root; ``done`` ends the protocol.

Node whiteboards:
    ``count`` — settled agents present; ``advance_to`` — a one-shot order
    "one agent move down this tree edge"; ``release`` — the leaf order
    "walk home".

The synchronizer's walk mirrors :class:`~repro.core.clean.CleanStrategy`
exactly (same escort pattern, same meet-routed navigation, same
lexicographic order), so the follower move multiset matches the schedule
plane move-for-move; synchronizer navigation differs only in the final
homeward trip (the protocol synchronizer walks to the last node to release
it and returns to the root to post ``done``).

Asynchrony-safety: every synchronizer step waits on *local* whiteboard
state (it reads only the board of the node it stands on), and followers
wait on their own board — the protocol is correct under any delay model,
which the tests exercise with random and adversarial delays.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.formulas import clean_peak_agents
from repro.protocols.base import (
    ProtocolModel,
    cached_hypercube,
    cached_tree,
    decrement,
    increment,
)
from repro.sim.agent import (
    AgentContext,
    Move,
    Terminate,
    UpdateWhiteboard,
    WaitUntil,
)
from repro.sim.engine import Engine, SimResult
from repro.sim.scheduling import DelayModel
from repro.topology.hypercube import Hypercube

__all__ = ["MODEL", "synchronizer_agent", "follower_agent", "run_clean_protocol"]

#: Section 3 model: whiteboards only — no visibility, no cloning, no clock.
MODEL = ProtocolModel()


# ---------------------------------------------------------------------- #
# whiteboard mutators
# ---------------------------------------------------------------------- #


def _post_dispatch(target: int, count: int):
    def mutate(wb: Dict) -> None:
        wb["order_target"] = target
        wb["order_remaining"] = count
        return None

    return mutate


def _take_dispatch(wb: Dict) -> Optional[int]:
    remaining = wb.get("order_remaining", 0)
    if remaining <= 0:
        return None
    wb["order_remaining"] = remaining - 1
    return wb["order_target"]


def _post_advance(child: int):
    def mutate(wb: Dict) -> None:
        wb["advance_to"] = child
        return None

    return mutate


def _take_advance(wb: Dict) -> Optional[int]:
    child = wb.get("advance_to")
    if child is None:
        return None
    wb["advance_to"] = None
    return child


def _take_release(wb: Dict) -> bool:
    if wb.get("release"):
        wb["release"] = False
        return True
    return False


# ---------------------------------------------------------------------- #
# behaviours
# ---------------------------------------------------------------------- #


def synchronizer_agent(ctx: AgentContext):
    """The coordinator: drives Algorithm 1 through whiteboard orders."""
    d = ctx.dimension
    h = cached_hypercube(d)
    tree = cached_tree(d)

    def walk(path: List[int]):
        for dst in path[1:]:
            yield Move(dst)

    def navigate(dst: int):
        yield from walk(h.path_via_meet(ctx.node, dst))

    def escort_children(node: int):
        """Post one advance order per tree child, escorting each move."""
        for child in tree.children(node):
            # wait for the previous advance order to be consumed
            yield WaitUntil(
                lambda view: view.wb("advance_to") is None,
                description=f"advance slot free at {node}",
            )
            yield UpdateWhiteboard(_post_advance(child))
            yield Move(child)
            yield WaitUntil(
                lambda view: (view.wb("count") or 0) >= 1,
                description=f"agent settled at {child}",
            )
            yield Move(node)

    if d == 0:
        yield UpdateWhiteboard(lambda wb: wb.__setitem__("done", True))
        yield Terminate()
        return

    # ---- step 1: root to level 1 (escort one agent to each child) ----- #
    for child in tree.children(0):
        yield WaitUntil(
            lambda view: (view.wb("idle") or 0) >= 1,
            description="an idle follower at the root",
        )
        yield WaitUntil(
            lambda view: (view.wb("order_remaining") or 0) == 0,
            description="dispatch slot free",
        )
        yield UpdateWhiteboard(_post_dispatch(child, 1))
        yield Move(child)
        yield WaitUntil(
            lambda view: (view.wb("count") or 0) >= 1,
            description=f"agent settled at {child}",
        )
        yield Move(0)

    # ---- step 2: level l to level l + 1 -------------------------------- #
    for level in range(1, d):
        level_nodes = h.level_nodes(level)

        # 2.1: back at the root, dispatch the extra agents
        yield from navigate(0)
        for x in level_nodes:
            k = tree.node_type(x)
            if k >= 2:
                yield WaitUntil(
                    lambda view: (view.wb("order_remaining") or 0) == 0,
                    description="dispatch slot free",
                )
                yield WaitUntil(
                    lambda view, need=k - 1: (view.wb("idle") or 0) >= need,
                    description=f"{k - 1} idle followers for {x}",
                )
                yield UpdateWhiteboard(_post_dispatch(x, k - 1))

        # 2.2 / 2.3: walk the level in lexicographic order
        for x in level_nodes:
            yield from navigate(x)
            k = tree.node_type(x)
            yield WaitUntil(
                lambda view, need=max(1, k): (view.wb("count") or 0) >= need,
                description=f"{max(1, k)} agents assembled at {x}",
            )
            if k == 0:
                yield UpdateWhiteboard(lambda wb: wb.__setitem__("release", True))
            else:
                yield from escort_children(x)

    # ---- final: release the guard of 11...1 and finish ----------------- #
    final_node = (1 << d) - 1
    yield from navigate(final_node)
    yield UpdateWhiteboard(lambda wb: wb.__setitem__("release", True))
    yield from navigate(0)
    yield UpdateWhiteboard(lambda wb: wb.__setitem__("done", True))
    yield Terminate()


def follower_agent(ctx: AgentContext):
    """A pool agent: waits for orders, walks, guards, returns."""
    d = ctx.dimension
    tree = cached_tree(d)

    yield UpdateWhiteboard(increment("idle"))
    while True:
        # parked at the root: wait for a dispatch order or the end
        yield WaitUntil(
            lambda view: bool(view.wb("done"))
            or (view.wb("order_remaining") or 0) > 0,
            description="dispatch order or done",
        )
        order = yield UpdateWhiteboard(_take_dispatch)
        if order is None:
            done = yield UpdateWhiteboard(lambda wb: bool(wb.get("done")))
            if done:
                yield Terminate()
                return
            continue  # lost the race for the order; re-wait

        yield UpdateWhiteboard(decrement("idle"))
        for dst in tree.path_from_root(order)[1:]:
            yield Move(dst)
        yield UpdateWhiteboard(increment("count"))

        # guard duty: advance down tree edges until released
        guarding = True
        while guarding:
            yield WaitUntil(
                lambda view: view.wb("advance_to") is not None
                or bool(view.wb("release")),
                description=f"advance or release at {ctx.node}",
            )
            child = yield UpdateWhiteboard(_take_advance)
            if child is not None:
                yield UpdateWhiteboard(decrement("count"))
                yield Move(child)
                yield UpdateWhiteboard(increment("count"))
                continue
            released = yield UpdateWhiteboard(_take_release)
            if released:
                yield UpdateWhiteboard(decrement("count"))
                for dst in tree.path_to_root(ctx.node)[1:]:
                    yield Move(dst)
                yield UpdateWhiteboard(increment("idle"))
                guarding = False
            # else: lost a race; re-wait


def run_clean_protocol(
    dimension: int,
    *,
    delay: Optional[DelayModel] = None,
    team_size: Optional[int] = None,
    intruder: Optional[str] = "reachable",
    check_contiguity: bool = True,
    whiteboard_capacity_bits: Optional[int] = None,
    subscribers: Optional[List] = None,
    trace_maxlen: Optional[int] = None,
) -> SimResult:
    """Run Algorithm 1 on the engine (whiteboard model, no visibility).

    ``team_size`` defaults to the Theorem 2 value
    :func:`~repro.analysis.formulas.clean_peak_agents` — the protocol
    deadlocks (reported, not hung: the engine detects quiescence) if given
    fewer agents than some dispatch requires, which the insufficient-team
    test exercises.
    """
    h = Hypercube(dimension)
    team = clean_peak_agents(dimension) if team_size is None else team_size
    behaviors: List = [synchronizer_agent] + [follower_agent] * (team - 1)
    engine = Engine(
        h,
        behaviors,
        delay=delay,
        visibility=False,
        intruder=intruder,
        check_contiguity=check_contiguity,
        whiteboard_capacity_bits=whiteboard_capacity_bits,
        subscribers=subscribers,
        trace_maxlen=trace_maxlen,
    )
    return engine.run()
