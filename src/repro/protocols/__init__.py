"""Distributed protocol implementations of the paper's strategies.

While :mod:`repro.core` generates deterministic *schedules* (the ideal-time
executions used for exact counting), this subpackage implements the
strategies as genuine message-passing agents on the asynchronous
discrete-event engine of :mod:`repro.sim` — whiteboard counters, orders,
waits, neighbour observation — exactly at the power level each model
grants:

* :mod:`~repro.protocols.clean_protocol` — Algorithm 1: a synchronizer
  agent coordinating followers purely through whiteboards (Section 3
  model; no visibility, no clock).
* :mod:`~repro.protocols.visibility_protocol` — Algorithm 2: identical
  autonomous agents using neighbour visibility (Section 4 model).
* :mod:`~repro.protocols.cloning_protocol` — the Section 5 cloning
  variant (visibility + ``CloneSelf``).
* :mod:`~repro.protocols.sync_protocol` — the Section 5 synchronous
  variant (global clock, *no* visibility; only correct under unit delays,
  which the failure-injection tests demonstrate).
* :mod:`~repro.protocols.frontier_protocol` — the generic-graph frontier
  sweep as real agents (an extension beyond the paper's hypercube).

The equivalence tests check each protocol produces the same move multiset
as its schedule-plane counterpart (for the agent moves), under arbitrary
delay models for the asynchronous protocols.
"""

from repro.protocols.base import ProtocolModel
from repro.protocols.clean_protocol import run_clean_protocol
from repro.protocols.cloning_protocol import run_cloning_protocol
from repro.protocols.frontier_protocol import run_frontier_protocol
from repro.protocols.sync_protocol import run_synchronous_protocol
from repro.protocols.visibility_protocol import run_visibility_protocol

__all__ = [
    "ProtocolModel",
    "run_clean_protocol",
    "run_visibility_protocol",
    "run_cloning_protocol",
    "run_synchronous_protocol",
    "run_frontier_protocol",
]
