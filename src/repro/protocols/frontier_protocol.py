"""The generic frontier sweep as a distributed protocol (any graph).

Extends the paper's Section 4 model (visibility + whiteboards) beyond the
hypercube: a *coordinator* escorts followers from the homebase to the next
node of the visit order, and every guard *releases itself* — with
visibility, a guard can observe that its whole neighbourhood is
decontaminated, walk home along its remembered outbound path (each node on
it was decontaminated earlier and, by monotonicity, stays so), and rejoin
the idle pool.

Whiteboard usage: at the homebase, ``idle`` counts parked followers and
``escort_path`` publishes the current escort's route (``O(D log n)`` bits
on a diameter-``D`` graph); at every other node, ``count``/``arrivals``
track settled guards.

Unlike the paper's hypercube protocols the followers remember their
outbound path, costing up to ``O(D log n)`` bits of *agent* memory on a
diameter-``D`` graph — the price of generality, and exactly the kind of
trade-off DESIGN.md logs for this extension.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.states import NodeState
from repro.errors import SimulationError
from repro.protocols.base import ProtocolModel, decrement, increment
from repro.sim.agent import (
    AgentContext,
    Move,
    Terminate,
    UpdateWhiteboard,
    WaitUntil,
)
from repro.sim.engine import Engine, SimResult
from repro.sim.scheduling import DelayModel
from repro.search.frontier_sweep import _bfs_order, bfs_boundary_width

__all__ = ["MODEL", "run_frontier_protocol"]

#: Section 4 model on generic graphs: visibility (guards self-release).
MODEL = ProtocolModel(visibility=True)


def _post_escort(path: List[int]):
    def mutate(wb):
        wb["escort_path"] = list(path)
        wb["escort_taken"] = False
        return None

    return mutate


def _take_escort(wb):
    if wb.get("escort_path") is None or wb.get("escort_taken"):
        return None
    wb["escort_taken"] = True
    return list(wb["escort_path"])


def _clear_escort(wb):
    wb["escort_path"] = None
    wb["escort_taken"] = False
    return None


def _coordinator(graph, order, homebase):
    """Behaviour factory for the escorting coordinator."""

    def behavior(ctx: AgentContext):
        visited = {homebase}
        for target in order:
            if target == homebase:
                continue
            # route from home to the target through the visited prefix
            from repro.search.frontier_sweep import _path_inside

            path = _path_inside(graph, visited, homebase, target)
            # wait for an idle follower, publish the escort, and walk it
            yield WaitUntil(
                lambda view: (view.wb("idle") or 0) >= 1,
                description="an idle follower at the homebase",
            )
            yield UpdateWhiteboard(_post_escort(path))
            yield WaitUntil(
                lambda view: bool(view.wb("escort_taken")),
                description="escort accepted",
            )
            yield UpdateWhiteboard(_clear_escort)
            # accompany the follower: walk out and back (the coordinator's
            # own presence keeps the corridor guarded during the escort)
            for dst in path[1:]:
                yield Move(dst)
            # wait on the CUMULATIVE arrival counter: the guard may have
            # legitimately self-released already (a leaf with a safe
            # neighbourhood), so the live count can be back at zero
            yield WaitUntil(
                lambda view: (view.wb("arrivals") or 0) >= 1,
                description=f"guard reached {target}",
            )
            for dst in list(reversed(path))[1:]:
                yield Move(dst)
            visited.add(target)
        yield UpdateWhiteboard(lambda wb: wb.__setitem__("done", True))
        yield Terminate()

    return behavior


def _follower(graph, homebase):
    """Behaviour factory for the self-releasing followers."""

    def behavior(ctx: AgentContext):
        yield UpdateWhiteboard(increment("idle"))
        while True:
            yield WaitUntil(
                lambda view: bool(view.wb("done"))
                or (
                    view.wb("escort_path") is not None
                    and not view.wb("escort_taken")
                ),
                description="escort order or done",
            )
            path = yield UpdateWhiteboard(_take_escort)
            if path is None:
                done = yield UpdateWhiteboard(lambda wb: bool(wb.get("done")))
                if done:
                    yield Terminate()
                    return
                continue
            yield UpdateWhiteboard(decrement("idle"))
            for dst in path[1:]:
                yield Move(dst)
            ctx.remember("outbound", path)
            yield UpdateWhiteboard(increment("count"))
            yield UpdateWhiteboard(increment("arrivals"))

            # guard duty: self-release when the neighbourhood is safe
            def neighbourhood_safe(view) -> bool:
                states = view.neighbor_states()
                return all(s is not NodeState.CONTAMINATED for s in states.values())

            yield WaitUntil(neighbourhood_safe, description=f"{ctx.node} releasable")
            yield UpdateWhiteboard(decrement("count"))
            for dst in list(reversed(ctx.recall("outbound")))[1:]:
                yield Move(dst)
            yield UpdateWhiteboard(increment("idle"))

    return behavior


def run_frontier_protocol(
    graph,
    *,
    homebase: int = 0,
    team_size: Optional[int] = None,
    delay: Optional[DelayModel] = None,
    intruder: Optional[str] = "reachable",
    intruder_count: int = 2,
    check_contiguity: bool = True,
) -> SimResult:
    """Run the generic sweep as real agents on any connected graph.

    ``team_size`` defaults to ``boundary_width + 2`` (the guards plus the
    coordinator plus one escortee in flight) — enough that the homebase
    always keeps an idle guard while it has contaminated neighbours.
    Under-provisioned teams both recontaminate (the escort abandons the
    homebase) and stall; the engine reports both, it never hangs.
    """
    order = _bfs_order(graph, homebase)
    if team_size is None:
        team_size = bfs_boundary_width(graph, homebase) + 2
    if team_size < 2:
        raise SimulationError("the frontier protocol needs a coordinator and a follower")
    behaviors = [_coordinator(graph, order, homebase)] + [
        _follower(graph, homebase)
    ] * (team_size - 1)
    engine = Engine(
        graph,
        behaviors,
        homebase=homebase,
        delay=delay,
        visibility=True,
        intruder=intruder,
        intruder_count=intruder_count,
        check_contiguity=check_contiguity,
    )
    return engine.run()
