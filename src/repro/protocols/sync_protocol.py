"""The Section 5 synchronous variant as clock-driven agents.

"In the synchronous model, the agents on ``x`` can move when time
``t = m(x)``" — no visibility, no coordinator: each agent consults only
the global round number and the local whiteboard (for the slot
assignment).  Under unit delays this is correct by construction (all
smaller neighbours are implicitly clean or guarded at round ``m(x)``);
under *asynchronous* delays the implicit-knowledge premise fails and the
strategy recontaminates — the failure-injection test demonstrates exactly
that, which is why the paper presents this variant only for the
synchronous setting.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.formulas import agents_for_type, visibility_agents
from repro.errors import SimulationError
from repro.protocols.base import (
    ProtocolModel,
    cached_hypercube,
    cached_tree,
    child_for_slot,
    decrement,
    increment,
    take_slot,
)
from repro.sim.agent import AgentContext, Move, Terminate, UpdateWhiteboard, WaitUntil
from repro.sim.engine import Engine, SimResult
from repro.sim.scheduling import DelayModel
from repro.topology.hypercube import Hypercube

__all__ = ["MODEL", "synchronous_agent", "run_synchronous_protocol"]

#: Section 5 synchronous model: global clock, no visibility, no cloning.
MODEL = ProtocolModel(global_clock=True)


def synchronous_agent(ctx: AgentContext):
    """Behaviour: on node ``x``, depart exactly at round ``m(x)``."""
    h = cached_hypercube(ctx.dimension)
    tree = cached_tree(ctx.dimension)
    yield UpdateWhiteboard(increment("count"))
    while True:
        node = ctx.node
        k = tree.node_type(node)
        if k == 0:
            yield Terminate()
            return
        wave = h.msb(node)  # m(x): the round at which this node's agents move
        yield WaitUntil(
            lambda view, wave=wave: view.time >= wave,
            description=f"round {wave} at {node}",
            wake_at=float(wave),
        )
        slot = yield UpdateWhiteboard(take_slot(agents_for_type(k)))
        if slot is None:
            raise SimulationError(f"agent {ctx.agent_id} found no slot at {node}")
        destination = child_for_slot(ctx.dimension, node, slot)
        yield UpdateWhiteboard(decrement("count"))
        yield Move(destination)
        yield UpdateWhiteboard(increment("count"))


def run_synchronous_protocol(
    dimension: int,
    *,
    delay: Optional[DelayModel] = None,
    intruder: Optional[str] = "reachable",
    check_contiguity: bool = True,
    subscribers: Optional[List] = None,
    trace_maxlen: Optional[int] = None,
) -> SimResult:
    """Run the synchronous variant (global clock, no visibility).

    Pass a non-unit ``delay`` to demonstrate how the variant *breaks*
    without synchrony (the returned result will show recontamination).
    """
    h = Hypercube(dimension)
    team = visibility_agents(dimension)
    behaviors: List = [synchronous_agent] * team
    engine = Engine(
        h,
        behaviors,
        delay=delay,
        visibility=False,
        global_clock=True,
        intruder=intruder,
        check_contiguity=check_contiguity,
        subscribers=subscribers,
        trace_maxlen=trace_maxlen,
    )
    return engine.run()
