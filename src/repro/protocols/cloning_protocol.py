"""The Section 5 cloning variant as engine agents.

A single agent starts at the homebase.  On a node ``x`` of type ``T(k)``
(``k >= 1``) the resident agent waits until every smaller neighbour is
clean or guarded (visibility model), then spawns ``k - 1`` clones — one
pre-assigned to each non-first child — and itself walks to the first
(largest-subtree) child.  Each broadcast-tree edge is crossed exactly
once, so the run performs ``n - 1`` moves with ``n/2`` agents ever alive,
finishing in ``log n`` waves (the Section 5 claims, asserted by the
tests under unit *and* random delays — monotonicity is delay-independent
because clones exist before anyone departs, so a node stays guarded until
its last departure atomically guards the final child).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.formulas import cloning_agents
from repro.protocols.base import ProtocolModel, cached_tree, smaller_all_safe
from repro.sim.agent import AgentContext, CloneSelf, Move, Terminate, WaitUntil
from repro.sim.engine import Engine, SimResult
from repro.sim.scheduling import DelayModel
from repro.topology.hypercube import Hypercube

__all__ = ["MODEL", "cloning_agent", "run_cloning_protocol"]

#: Section 5 cloning model: visibility plus ``CloneSelf``.
MODEL = ProtocolModel(visibility=True, cloning=True)


def _behavior(first_move: Optional[int]):
    """Behaviour factory; clones get their destination pre-assigned."""

    def behavior(ctx: AgentContext):
        tree = cached_tree(ctx.dimension)
        if first_move is not None:
            # A clone: the parent established safety before spawning us;
            # walk straight to the assigned child.
            yield Move(first_move)
        while True:
            node = ctx.node
            k = tree.node_type(node)
            if k == 0:
                yield Terminate()
                return
            yield WaitUntil(
                smaller_all_safe(ctx.dimension, node),
                description=f"smaller neighbours of {node} safe",
            )
            children = tree.children(node)
            for child in children[1:]:
                yield CloneSelf(_behavior(first_move=child))
            yield Move(children[0])

    return behavior


#: The initial agent's behaviour (starts at the homebase, no pre-move).
cloning_agent = _behavior(first_move=None)
cloning_agent.__doc__ = (
    "Behaviour of the single initial agent: wait for safety, clone one "
    "agent per extra child, walk to the first child, repeat (Section 5)."
)


def run_cloning_protocol(
    dimension: int,
    *,
    delay: Optional[DelayModel] = None,
    intruder: Optional[str] = "reachable",
    check_contiguity: bool = True,
    subscribers: Optional[List] = None,
    trace_maxlen: Optional[int] = None,
) -> SimResult:
    """Run the cloning variant: one initial agent, clones on demand."""
    h = Hypercube(dimension)
    engine = Engine(
        h,
        [cloning_agent],
        delay=delay,
        visibility=True,
        cloning=True,
        intruder=intruder,
        check_contiguity=check_contiguity,
        subscribers=subscribers,
        trace_maxlen=trace_maxlen,
    )
    return engine.run()
