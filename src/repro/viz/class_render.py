"""Class-partition rendering (Figure 3 of the paper).

Figure 3 shows the classes :math:`C_i` of ``H_4`` — the groups of nodes
sharing the position of their most significant bit, which is the wave
structure of the visibility strategy (all of :math:`C_i` acts at time
``i``).
"""

from __future__ import annotations

from repro.topology.hypercube import Hypercube

__all__ = ["render_classes"]


def render_classes(hypercube: Hypercube | int, *, max_nodes: int = 512) -> str:
    """One line per class: ``C_i (size): members`` with paper bit strings.

    >>> print(render_classes(2))  # doctest: +NORMALIZE_WHITESPACE
    classes C_i of H_2 (most significant bit position)
    C_0 (1): 0[00]
    C_1 (1): 1[10]
    C_2 (2): 2[01], 3[11]
    """
    h = Hypercube(hypercube) if isinstance(hypercube, int) else hypercube
    if h.n > max_nodes:
        raise ValueError(f"too many nodes to render ({h.n} > {max_nodes})")
    lines = [f"classes C_i of H_{h.d} (most significant bit position)"]
    for i in range(h.d + 1):
        members = h.class_members(i)
        shown = ", ".join(
            f"{x}[{h.bitstring(x)}]" if h.d else str(x) for x in members
        )
        lines.append(f"C_{i} ({len(members)}): {shown}")
    return "\n".join(lines)
