"""ASCII rendering of the broadcast tree (Figure 1 of the paper).

Figure 1 shows ``T(6)``, the broadcast tree of ``H_6``, organized by
levels with each node's heap-queue type.  :func:`render_broadcast_tree`
draws the same structure as an indented tree (one node per line, children
beneath their parent) and :func:`render_level_table` as the level-by-level
census the figure's caption describes.
"""

from __future__ import annotations

from typing import List

from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = ["render_broadcast_tree", "render_level_table"]


def render_broadcast_tree(
    tree: BroadcastTree | int,
    *,
    max_nodes: int = 512,
    show_bitstring: bool = True,
) -> str:
    """Indented rendering of the broadcast tree.

    Each line shows ``<node id> [<paper bit string>] T(<type>)``; children
    are indented beneath their parent, largest subtree first (Definition
    1's ``T(k-1) .. T(0)`` order).

    >>> print(render_broadcast_tree(2))  # doctest: +NORMALIZE_WHITESPACE
    broadcast tree T(2) of H_2 (4 nodes)
    0 [00] T(2)
    ├── 1 [10] T(1)
    │   └── 3 [11] T(0)
    └── 2 [01] T(0)
    """
    if isinstance(tree, int):
        tree = BroadcastTree(Hypercube(tree))
    h = tree.hypercube
    if h.n > max_nodes:
        raise ValueError(f"tree too large to render ({h.n} nodes > {max_nodes})")
    lines: List[str] = [f"broadcast tree T({h.d}) of H_{h.d} ({h.n} nodes)"]

    def label(x: int) -> str:
        bits = f" [{h.bitstring(x)}]" if show_bitstring and h.d else ""
        return f"{x}{bits} T({tree.node_type(x)})"

    def walk(x: int, prefix: str) -> None:
        kids = tree.children(x)
        for i, c in enumerate(kids):
            last = i == len(kids) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + label(c))
            walk(c, prefix + ("    " if last else "│   "))

    lines.append(label(tree.root))
    walk(tree.root, "")
    return "\n".join(lines)


def render_level_table(tree: BroadcastTree | int) -> str:
    """Level census table: nodes, leaves, and the type breakdown per level.

    This is the content Properties 1 and 2 describe for Figure 1.
    """
    if isinstance(tree, int):
        tree = BroadcastTree(Hypercube(tree))
    h = tree.hypercube
    lines = [f"{'level':>5} {'nodes':>6} {'leaves':>7}  types"]
    for level in range(h.d + 1):
        census = tree.type_census(level)
        types = ", ".join(f"T({k})x{census[k]}" for k in sorted(census, reverse=True))
        lines.append(
            f"{level:>5} {h.level_size(level):>6} "
            f"{tree.leaf_count_at_level(level):>7}  {types}"
        )
    return "\n".join(lines)
