"""Frame-by-frame rendering of a cleaning in progress.

Replays a schedule through the exact contamination dynamics and renders
each time unit as a text frame: one row per hypercube level, each node
shown as ``#`` (contaminated), ``A`` (guarded) or ``.`` (clean) — a
terminal-friendly "animation" of the sweep used by the ``watch_the_sweep``
example and by the CLI's ``--watch`` flag.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.schedule import Schedule
from repro.sim.contamination import ContaminationMap
from repro.topology.hypercube import Hypercube

__all__ = ["render_frames", "render_final_state"]


def _frame(cmap: ContaminationMap, h: Hypercube, caption: str) -> str:
    lines = [caption]
    for level in range(h.d + 1):
        cells = "".join(cmap.state(x).symbol() for x in h.level_nodes(level))
        lines.append(f"  level {level}: {cells}")
    return "\n".join(lines)


def render_frames(schedule: Schedule, *, max_nodes: int = 1024) -> Iterator[str]:
    """Yield one rendered frame per time unit of the schedule.

    The first frame shows the initial state (team at the homebase); each
    subsequent frame shows the network after all moves of one time unit.
    Nodes within a level are ordered by increasing id.
    """
    h = Hypercube(schedule.dimension)
    if h.n > max_nodes:
        raise ValueError(f"too many nodes to render ({h.n} > {max_nodes})")
    cmap = ContaminationMap(h, homebase=schedule.homebase, strict=False)
    if schedule.uses_cloning:
        # the original agent (id 0) starts at the homebase; clones are
        # placed lazily at their first move below
        cmap.place_agent(schedule.homebase)
        seen = {0}
    else:
        for _ in range(max(schedule.team_size, 1)):
            cmap.place_agent(schedule.homebase)
        seen = set()

    yield _frame(cmap, h, f"t=0  ({schedule.strategy} on H_{h.d}, team {schedule.team_size})")
    for time, group in schedule.by_time():
        if schedule.uses_cloning:
            for m in group:
                if m.agent not in seen:
                    seen.add(m.agent)
                    cmap.place_agent(m.src)
        for m in group:
            cmap.move_agent(m.src, m.dst)
        contaminated = len(cmap.contaminated_nodes())
        yield _frame(cmap, h, f"t={time}  ({contaminated} contaminated left)")


def render_final_state(schedule: Schedule) -> str:
    """Only the last frame (the fully decontaminated network)."""
    last = ""
    for frame in render_frames(schedule):
        last = frame
    return last
