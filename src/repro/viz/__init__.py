"""Text renderings of the paper's figures.

* :mod:`~repro.viz.tree_render` — Figure 1: the broadcast tree ``T(d)``.
* :mod:`~repro.viz.order_render` — Figures 2 and 4: the order nodes get
  cleaned under each strategy.
* :mod:`~repro.viz.class_render` — Figure 3: the classes :math:`C_i`.
* :mod:`~repro.viz.state_render` — frame-by-frame sweep animation.
* :mod:`~repro.viz.profile_render` — deployment-over-time bar charts.
* :mod:`~repro.viz.dot_export` — Graphviz DOT output.

Everything renders to plain strings (terminal-friendly); the benches tee
them into the experiment reports.
"""

from repro.viz.class_render import render_classes
from repro.viz.dot_export import broadcast_tree_dot, cleaning_order_dot
from repro.viz.order_render import render_cleaning_order, render_wave_table
from repro.viz.profile_render import render_deployment_profile
from repro.viz.state_render import render_final_state, render_frames
from repro.viz.tree_render import render_broadcast_tree

__all__ = [
    "render_broadcast_tree",
    "render_cleaning_order",
    "render_wave_table",
    "render_classes",
    "render_frames",
    "render_final_state",
    "render_deployment_profile",
    "broadcast_tree_dot",
    "cleaning_order_dot",
]
