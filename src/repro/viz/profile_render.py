"""ASCII charts of schedule time profiles.

Renders the :mod:`repro.analysis.profiles` series as terminal bar charts:
the deployment profile shows CLEAN's sawtooth against visibility's single
pyramid — the shape difference behind the Theorem 4 vs Theorem 7 time
separation.
"""

from __future__ import annotations

from repro.analysis.profiles import deployed_agents_profile
from repro.core.schedule import Schedule

__all__ = ["render_deployment_profile"]


def render_deployment_profile(
    schedule: Schedule,
    *,
    width: int = 60,
    max_rows: int = 120,
) -> str:
    """Horizontal bar chart of agents-away-from-home over time.

    Long schedules are downsampled to ``max_rows`` rows (each row then
    shows the maximum over its time bucket, so peaks are never hidden).
    """
    profile = deployed_agents_profile(schedule)
    times = sorted(profile)
    peak = max(profile.values()) or 1

    # downsample, keeping per-bucket maxima
    if len(times) > max_rows:
        bucket_size = (len(times) + max_rows - 1) // max_rows
        buckets = [
            times[i : i + bucket_size] for i in range(0, len(times), bucket_size)
        ]
        rows = [(b[0], max(profile[t] for t in b)) for b in buckets]
        note = f" (downsampled x{bucket_size}, bucket maxima)"
    else:
        rows = [(t, profile[t]) for t in times]
        note = ""

    lines = [
        f"deployed agents over time — {schedule.strategy} on H_{schedule.dimension}"
        f" (peak {peak}, team {schedule.team_size}){note}"
    ]
    for t, value in rows:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"t={t:>5} |{bar:<{width}}| {value}")
    return "\n".join(lines)
