"""Graphviz DOT export of the broadcast tree and cleaning orders.

Produces plain DOT text (no graphviz dependency required to generate it):
``dot -Tpng`` renders Figure-1-style drawings, and the cleaning-order
variant colours nodes by first-visit time for Figure-2/4-style views.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedule import Schedule
from repro.topology.broadcast_tree import BroadcastTree
from repro.topology.hypercube import Hypercube

__all__ = ["broadcast_tree_dot", "cleaning_order_dot"]


def broadcast_tree_dot(tree: BroadcastTree | int, *, include_non_tree_edges: bool = False) -> str:
    """DOT source for the broadcast tree (Figure 1).

    Tree edges are solid; with ``include_non_tree_edges`` the remaining
    hypercube edges are drawn dotted, matching the figure's style.
    """
    if isinstance(tree, int):
        tree = BroadcastTree(Hypercube(tree))
    h = tree.hypercube
    lines = [
        f'graph "T({h.d})" {{',
        "  rankdir=TB;",
        '  node [shape=circle, fontsize=10];',
    ]
    for x in h.nodes():
        label = f"{h.bitstring(x)}\\nT({tree.node_type(x)})" if h.d else "0"
        lines.append(f'  n{x} [label="{label}"];')
    for parent, child in tree.edges():
        lines.append(f"  n{parent} -- n{child};")
    if include_non_tree_edges:
        tree_edges = set(tree.edges())
        for x, y in h.edges():
            if (x, y) not in tree_edges and (y, x) not in tree_edges:
                lines.append(f"  n{x} -- n{y} [style=dotted, constraint=false];")
    lines.append("}")
    return "\n".join(lines)


def cleaning_order_dot(schedule: Schedule, *, max_nodes: int = 512) -> str:
    """DOT source colouring nodes by first-visit time (Figures 2 and 4).

    Earlier-cleaned nodes are lighter; each label carries the visit rank.
    """
    h = Hypercube(schedule.dimension)
    if h.n > max_nodes:
        raise ValueError(f"too many nodes to render ({h.n} > {max_nodes})")
    tree = BroadcastTree(h)
    times = schedule.visit_time()
    order = schedule.first_visit_order()
    rank = {node: i + 1 for i, node in enumerate(order)}
    horizon: Optional[int] = max(times.values()) or 1

    lines = [
        f'graph "{schedule.strategy} on H_{h.d}" {{',
        "  rankdir=TB;",
        '  node [shape=circle, style=filled, fontsize=10];',
    ]
    for x in h.nodes():
        shade = int(90 - 60 * times[x] / horizon)  # 90% (early) .. 30% (late)
        lines.append(
            f'  n{x} [label="{rank[x]}\\n{h.bitstring(x) if h.d else "0"}", '
            f'fillcolor="gray{shade}"];'
        )
    for parent, child in tree.edges():
        lines.append(f"  n{parent} -- n{child};")
    lines.append("}")
    return "\n".join(lines)
