"""Cleaning-order renderings (Figures 2 and 4 of the paper).

Figure 2 numbers the nodes of ``H_4`` in the order Algorithm ``CLEAN``
decontaminates them (sequential, level by level, lexicographic within a
level); Figure 4 does the same for ``CLEAN WITH VISIBILITY``, where whole
groups of nodes are cleaned simultaneously wave by wave.

:func:`render_cleaning_order` prints each node with its first-visit rank
and time, grouped by hypercube level; :func:`render_wave_table` shows the
wave structure (which nodes act at each ideal time step), which for the
visibility strategy is exactly the class partition :math:`C_i`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.schedule import Schedule
from repro.topology.hypercube import Hypercube

__all__ = ["render_cleaning_order", "render_wave_table"]


def render_cleaning_order(schedule: Schedule, *, max_nodes: int = 512) -> str:
    """Figure 2/4-style table: first-visit rank of every node, by level.

    Each level line lists ``node[bits]#rank@t`` entries in visit order;
    rank is the position in the global first-visit sequence (the numbers
    printed in the paper's figures), ``t`` the arrival time.
    """
    h = Hypercube(schedule.dimension)
    if h.n > max_nodes:
        raise ValueError(f"too many nodes to render ({h.n} > {max_nodes})")
    order = schedule.first_visit_order()
    times = schedule.visit_time()
    rank = {node: i + 1 for i, node in enumerate(order)}
    lines = [
        f"cleaning order of {schedule.strategy} on H_{schedule.dimension} "
        f"(rank: 1..{len(order)}, @ = first-arrival time)"
    ]
    for level in range(h.d + 1):
        nodes = sorted(h.level_nodes(level), key=lambda x: rank.get(x, 10**9))
        entries = [
            f"{x}[{h.bitstring(x)}]#{rank[x]}@{times[x]}" for x in nodes if x in rank
        ]
        lines.append(f"level {level}: " + "  ".join(entries))
    return "\n".join(lines)


def render_wave_table(schedule: Schedule) -> str:
    """Which nodes are first visited at each ideal time step.

    For the visibility/cloning/synchronous strategies, the row at time
    ``t`` contains exactly the nodes whose tree parent is in class
    :math:`C_{t-1}` — the Theorem 7 wave structure.
    """
    h = Hypercube(schedule.dimension)
    by_time: Dict[int, List[int]] = {}
    for node, t in sorted(schedule.visit_time().items()):
        by_time.setdefault(t, []).append(node)
    lines = [f"wave table of {schedule.strategy} on H_{schedule.dimension}"]
    for t in sorted(by_time):
        nodes = ", ".join(
            f"{x}[{h.bitstring(x)}]" if h.d else str(x) for x in sorted(by_time[t])
        )
        lines.append(f"t={t:>3}: {nodes}")
    return "\n".join(lines)
