"""Canned network scenarios for examples, tests and demos.

Realistic-looking topologies to exercise the generic layer beyond the
standard graph families: an enterprise LAN (backbone ring + departmental
stars + a server-room clique), a two-tier datacenter fabric (spines ×
leaves with hosts), and a campus of bridged clusters.  All return
:class:`~repro.topology.generic.GraphAdapter` objects and are deliberately
parameterized so tests can fuzz their sizes.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.generic import GraphAdapter

__all__ = ["enterprise_network", "datacenter_fabric", "campus_network"]


def enterprise_network(
    routers: int = 4, hosts_per_department: int = 3, servers: int = 3
) -> GraphAdapter:
    """Backbone ring of ``routers``, a star of hosts on each router but the
    last, and a server clique uplinked to the last router.

    >>> enterprise_network().n
    16
    """
    if routers < 3:
        raise TopologyError("the backbone ring needs at least 3 routers")
    if servers < 1 or hosts_per_department < 0:
        raise TopologyError("servers >= 1 and hosts_per_department >= 0 required")
    edges = [(r, (r + 1) % routers) for r in range(routers)]
    nxt = routers
    for router in range(routers - 1):
        for _ in range(hosts_per_department):
            edges.append((router, nxt))
            nxt += 1
    server_ids = list(range(nxt, nxt + servers))
    edges.append((routers - 1, server_ids[0]))
    for i, u in enumerate(server_ids):
        for v in server_ids[i + 1 :]:
            edges.append((u, v))
    nxt += servers
    return GraphAdapter(nxt, edges, name="enterprise")


def datacenter_fabric(
    spines: int = 2, leaves: int = 4, hosts_per_leaf: int = 2
) -> GraphAdapter:
    """A two-tier Clos-style fabric: every leaf links to every spine, and
    hosts hang off the leaves."""
    if spines < 1 or leaves < 1 or hosts_per_leaf < 0:
        raise TopologyError("spines, leaves >= 1 and hosts_per_leaf >= 0 required")
    edges = []
    leaf_ids = list(range(spines, spines + leaves))
    for spine in range(spines):
        for leaf in leaf_ids:
            edges.append((spine, leaf))
    nxt = spines + leaves
    for leaf in leaf_ids:
        for _ in range(hosts_per_leaf):
            edges.append((leaf, nxt))
            nxt += 1
    return GraphAdapter(nxt, edges, name="datacenter")


def campus_network(clusters: int = 3, cluster_size: int = 4) -> GraphAdapter:
    """Cliques of ``cluster_size`` bridged in a chain by single links.

    The narrow bridges make the BFS boundary small — the frontier sweep
    cleans a campus with a handful of agents regardless of cluster count.
    """
    if clusters < 1 or cluster_size < 2:
        raise TopologyError("clusters >= 1 and cluster_size >= 2 required")
    edges = []
    for c in range(clusters):
        base = c * cluster_size
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                edges.append((base + i, base + j))
        if c + 1 < clusters:
            edges.append((base + cluster_size - 1, base + cluster_size))
    return GraphAdapter(clusters * cluster_size, edges, name="campus")
