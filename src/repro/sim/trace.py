"""Execution traces: everything that happened in one simulation.

A :class:`Trace` is an append-only log of :class:`TraceEvent` records the
engine emits — moves, clones, terminations, whiteboard writes (optional) —
with float timestamps.  Traces support the two consumers we have:

* equivalence tests compare the *move multiset* of an asynchronous protocol
  run against the deterministic schedule plane (the multiset of traversed
  directed edges, with per-edge counts, is delay-model independent for the
  paper's protocols);
* the examples replay traces step by step for visualization.

Memory
------
By default the log is unbounded, which at ``d >= 13`` (hundreds of
thousands of moves) dominates a run's footprint.  Passing ``maxlen`` turns
the trace into a *ring*: only the newest ``maxlen`` events are retained
(oldest dropped first), while :meth:`move_count` and :meth:`sizes` keep
exact totals of everything ever logged.  Ring mode trades the replay /
multiset queries (which see only the retained window) for O(maxlen)
memory — pair it with a streaming subscriber
(:class:`repro.obs.stream.JsonlStreamer`) when the full event history is
needed outside the process.
"""

from __future__ import annotations

import sys
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One logged engine event."""

    time: float
    kind: str  # "move" | "clone" | "terminate" | "wait" | "wake" | "write"
    agent: int
    node: int
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only event log with query helpers.

    ``maxlen`` bounds the retained window (ring mode, see the module
    docstring); ``None`` keeps every event.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"trace maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._events: Union[List[TraceEvent], Deque[TraceEvent]] = (
            [] if maxlen is None else deque(maxlen=maxlen)
        )
        self._total_logged = 0
        self._total_moves = 0
        self._dropped = 0

    def log(self, event: TraceEvent) -> None:
        """Append one event (times must be non-decreasing).

        In ring mode a full trace silently evicts its oldest event; the
        running totals (:meth:`move_count`, :meth:`sizes`) still count it.
        """
        if self._events and event.time < self._events[-1].time - 1e-9:
            raise ValueError(
                f"trace event at {event.time} precedes last event "
                f"at {self._events[-1].time}"
            )
        if self.maxlen is not None and len(self._events) == self.maxlen:
            self._dropped += 1
        self._total_logged += 1
        if event.kind == "move":
            self._total_moves += 1
        self._events.append(event)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def moves(self) -> List[TraceEvent]:
        """All *retained* move events in time order."""
        return self.events("move")

    def move_count(self) -> int:
        """Total edge traversals ever logged (eviction-proof counter)."""
        return self._total_moves

    def sizes(self) -> Dict[str, Any]:
        """Memory/retention accounting for this trace.

        ``retained`` / ``dropped`` / ``total_logged`` are event counts
        (``retained + dropped == total_logged``); ``approx_bytes`` is a
        shallow estimate of the retained window's footprint (event objects
        plus their payload dicts, not deep payload values).
        """
        approx = sys.getsizeof(self._events)
        for event in self._events:
            approx += sys.getsizeof(event) + sys.getsizeof(event.data)
        return {
            "retained": len(self._events),
            "dropped": self._dropped,
            "total_logged": self._total_logged,
            "total_moves": self._total_moves,
            "maxlen": self.maxlen,
            "approx_bytes": approx,
        }

    def move_multiset(self) -> Counter:
        """Counter of directed edges ``(src, dst)`` traversed.

        For the paper's protocols this multiset is independent of the delay
        model, which is what the schedule/protocol equivalence tests check.
        """
        return Counter((e.data["src"], e.node) for e in self.moves())

    def makespan(self) -> float:
        """Completion time of the last event (0.0 when empty)."""
        return self._events[-1].time if self._events else 0.0

    def agents(self) -> List[int]:
        """Sorted ids of every agent appearing in the trace."""
        return sorted({e.agent for e in self._events})

    def per_agent_moves(self) -> Dict[int, int]:
        """Move counts per agent."""
        out: Dict[int, int] = {}
        for e in self.moves():
            out[e.agent] = out.get(e.agent, 0) + 1
        return out

    def first_visits(self) -> List[Tuple[float, int]]:
        """``(time, node)`` of each node's first agent arrival, in order."""
        seen = set()
        out = []
        for e in self.moves():
            if e.node not in seen:
                seen.add(e.node)
                out.append((e.time, e.node))
        return out

    def __repr__(self) -> str:
        return f"Trace(events={len(self._events)}, moves={self.move_count()})"

    # ------------------------------------------------------------------ #
    # serialization and integrity
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize the full event log to a JSON string."""
        import json

        return json.dumps(
            [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "agent": e.agent,
                    "node": e.node,
                    "data": e.data,
                }
                for e in self._events
            ]
        )

    @staticmethod
    def from_json(text: str) -> "Trace":
        """Inverse of :meth:`to_json`."""
        import json

        trace = Trace()
        for raw in json.loads(text):
            trace.log(
                TraceEvent(
                    time=float(raw["time"]),
                    kind=str(raw["kind"]),
                    agent=int(raw["agent"]),
                    node=int(raw["node"]),
                    data=dict(raw["data"]),
                )
            )
        return trace

    def validate_against(self, topology, homebase: int = 0) -> None:
        """Integrity check of the move log against a topology.

        Every move must traverse a real edge, and every agent's moves must
        chain (the ``src`` of each move is where its previous move — or a
        clone/spawn at the homebase — left it).  Raises ``ValueError`` on
        violation; the replay tests run saved traces through this before
        trusting them.
        """
        position = {}
        births = {}  # agent -> node where a clone event created it
        for e in self._events:
            if e.kind == "clone":
                births[e.data.get("child")] = e.node
        for e in self.moves():
            src = e.data["src"]
            if not topology.has_edge(src, e.node):
                raise ValueError(f"trace move ({src}, {e.node}) is not an edge")
            expected = position.get(e.agent, births.get(e.agent, homebase))
            if expected != src:
                raise ValueError(
                    f"agent {e.agent} moves from {src} but was at {expected}"
                )
            position[e.agent] = e.node
