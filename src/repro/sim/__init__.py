"""Simulation substrate: contamination dynamics, intruder, async engine.

This subpackage is the "system" half of the reproduction: the paper's
networked environment of hosts, whiteboards and asynchronous mobile agents
is modelled by

* :mod:`~repro.sim.contamination` — exact monotone node-search state
  dynamics (guarded / clean / contaminated, recontamination spread),
* :mod:`~repro.sim.intruder` — the omniscient, arbitrarily fast intruder,
* :mod:`~repro.sim.whiteboard` — per-node ``O(log n)``-bit whiteboards with
  fair mutual exclusion,
* :mod:`~repro.sim.engine` / :mod:`~repro.sim.events` — a discrete-event
  executor running agent behaviours with unpredictable action durations,
* :mod:`~repro.sim.scheduling` — delay models (unit, random, adversarial),
* :mod:`~repro.sim.agent` — the agent action vocabulary and base class,
* :mod:`~repro.sim.trace` — execution traces for replay and debugging.

Operational extensions beyond the paper: :mod:`~repro.sim.telemetry`
(traffic/overhead measures), :mod:`~repro.sim.replay` (execute any
schedule as scripted engine agents), :mod:`~repro.sim.reinfection`
(periodic cleaning service) and :mod:`~repro.sim.quarantine` (localized
incident response).
"""

from repro.sim.contamination import ContaminationMap
from repro.sim.engine import Engine, SimResult
from repro.sim.intruder import (
    Intruder,
    MultiWalkerIntruder,
    ReachableSetIntruder,
    WalkerIntruder,
)
from repro.sim.quarantine import QuarantineReport, quarantine_and_clean, quarantine_line
from repro.sim.reinfection import PeriodicCleaning, PeriodReport
from repro.sim.replay import execute_schedule_on_engine
from repro.sim.telemetry import TraceTelemetry, analyze_trace
from repro.sim.scheduling import (
    AdversarialSlowestDelay,
    DelayModel,
    LayeredDelay,
    RandomDelay,
    UnitDelay,
)
from repro.sim.trace import Trace, TraceEvent
from repro.sim.whiteboard import Whiteboard

__all__ = [
    "ContaminationMap",
    "Intruder",
    "ReachableSetIntruder",
    "WalkerIntruder",
    "Whiteboard",
    "Engine",
    "SimResult",
    "DelayModel",
    "UnitDelay",
    "RandomDelay",
    "AdversarialSlowestDelay",
    "LayeredDelay",
    "Trace",
    "TraceEvent",
    "MultiWalkerIntruder",
    "analyze_trace",
    "TraceTelemetry",
    "PeriodicCleaning",
    "PeriodReport",
    "quarantine_and_clean",
    "quarantine_line",
    "QuarantineReport",
    "execute_schedule_on_engine",
]
