"""Exact monotone node-search state dynamics (Section 2 of the paper).

The :class:`ContaminationMap` tracks, for every node of a topology, whether
it is *guarded* (at least one agent on it), *clean*, or *contaminated*, and
evolves the state under atomic agent moves with the standard node-search
semantics the paper uses:

* a contaminated node becomes guarded the moment an agent arrives;
* when the last agent leaves a node, the node stays clean only if every
  neighbour is clean or guarded — otherwise it is *recontaminated*, and
  recontamination spreads through every unguarded clean node reachable from
  a contaminated one;
* moves are atomic: the departure and arrival of a traversal take effect
  together, then recontamination is evaluated (this is the "move a searcher
  along an edge" action of the graph-search literature).

The map also answers the two global predicates the paper's definition of a
*contiguous, monotone* strategy needs: whether the decontaminated region
(clean + guarded) is connected, and whether any recontamination ever
happened.  Raising vs. recording is configurable so the verifier can either
fail fast (``strict=True``) or collect all violations for reporting.

Representation
--------------
Node sets are stored as integer bitmasks (bit ``i`` set iff node ``i`` is
in the set — see :mod:`repro._bitops`): :attr:`clean_mask`,
:attr:`guard_mask` and :attr:`visited_mask` are the primary state, and the
derived :attr:`contaminated_mask` / :attr:`decontaminated_mask` are single
big-integer expressions.  The departure rule ("every neighbour of the
vacated node is clean or guarded") and the recontamination trigger are
each one mask intersection against the topology's precomputed per-node
neighbour masks, so a move costs O(1) word-parallel operations instead of
a Python-level neighbourhood scan.

Contiguity is maintained *incrementally*.  Under the paper's model the
decontaminated region only ever grows (it shrinks exactly on
recontamination), and almost every growth event extends a connected region
by a node adjacent to it — which provably keeps it connected and is
verified with one mask test.  Only the rare non-extending event (an
arrival not adjacent to the current region, growth while the region is
already disconnected, or any recontamination) invalidates the cached
verdict; :meth:`is_contiguous` then re-derives it with a bitset BFS
(:meth:`~repro.topology.hypercube.Hypercube.spread_mask` expands a whole
frontier per step) and re-caches.  The original set-based predicates
survive as the ``slow_``-prefixed reference path used by the cross-check
tests and benches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro._bitops import iter_set_bits, nodes_from_mask
from repro.core.states import NodeState
from repro.errors import RecontaminationError, SimulationError

__all__ = ["ContaminationMap"]


class ContaminationMap:
    """Node-search state for one topology.

    Parameters
    ----------
    topology:
        Any object with ``n`` / ``nodes()`` / ``neighbors(x)`` /
        ``has_edge(x, y)`` — :class:`~repro.topology.hypercube.Hypercube`
        or :class:`~repro.topology.generic.GraphAdapter`.  Topologies that
        additionally provide ``neighbor_mask(x)`` / ``spread_mask(m)`` get
        the word-parallel fast paths; others fall back to an adjacency
        table built once at construction.
    homebase:
        Node where the team starts; initially the only non-contaminated
        node (guard count 0 but *visited*: agents are placed there by
        :meth:`place_agent` / the first moves).
    strict:
        If true, a recontamination raises
        :class:`~repro.errors.RecontaminationError` immediately; otherwise
        it is recorded in :attr:`recontamination_events`.
    incremental:
        If true (default), :meth:`is_contiguous` answers from the
        incrementally maintained cache; if false it recomputes the
        reference BFS on every call (the pre-bitset behaviour, kept for
        benchmarking and cross-checks).

    Notes
    -----
    The homebase starts *guarded* conceptually (the team sits on it).  For
    flexibility the map starts with zero guards everywhere and the caller
    places agents; :meth:`place_agent` at the homebase marks it visited
    without a move.
    """

    def __init__(
        self,
        topology,
        homebase: int = 0,
        strict: bool = True,
        *,
        incremental: bool = True,
    ) -> None:
        if homebase not in range(topology.n):
            raise SimulationError(f"homebase {homebase} not a node")
        self._topo = topology
        self.homebase = homebase
        self.strict = strict
        self._incremental = incremental
        self._n = topology.n
        self._full = (1 << self._n) - 1
        self._guards: Dict[int, int] = {}
        self._guard_mask = 0
        self._clean_mask = 0
        self._visited_mask = 0
        #: list of ``(node, cause_node)`` recontaminations (empty iff monotone)
        self.recontamination_events: List[tuple[int, int]] = []
        #: order in which nodes were first decontaminated (visited)
        self.first_visit_order: List[int] = []
        self._moves_applied = 0
        # cached contiguity verdict; None means "stale, recompute via BFS"
        self._contig_cache: Optional[bool] = True
        # per-node neighbour masks: native topology support, or a table
        # derived once from neighbors() for duck-typed topologies
        nbr_mask = getattr(topology, "neighbor_mask", None)
        if nbr_mask is None:
            table = tuple(
                sum(1 << y for y in topology.neighbors(x)) for x in topology.nodes()
            )
            nbr_mask = table.__getitem__
        self._nbr_mask = nbr_mask
        self._spread = getattr(topology, "spread_mask", None)

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #

    @property
    def topology(self):
        """The underlying topology object."""
        return self._topo

    @property
    def clean_mask(self) -> int:
        """Bitmask of clean (decontaminated, unguarded) nodes."""
        return self._clean_mask

    @property
    def guard_mask(self) -> int:
        """Bitmask of nodes holding at least one agent."""
        return self._guard_mask

    @property
    def visited_mask(self) -> int:
        """Bitmask of nodes ever decontaminated (visited by an agent)."""
        return self._visited_mask

    @property
    def decontaminated_mask(self) -> int:
        """Bitmask of clean-or-guarded nodes (the protected region)."""
        return self._clean_mask | self._guard_mask

    @property
    def contaminated_mask(self) -> int:
        """Bitmask of contaminated nodes (everything else)."""
        return self._full & ~(self._clean_mask | self._guard_mask)

    def state(self, node: int) -> NodeState:
        """Current :class:`~repro.core.states.NodeState` of ``node``."""
        bit = 1 << node
        if self._guard_mask & bit:
            return NodeState.GUARDED
        if self._clean_mask & bit:
            return NodeState.CLEAN
        return NodeState.CONTAMINATED

    def guards(self, node: int) -> int:
        """Number of agents currently on ``node``."""
        return self._guards.get(node, 0)

    def is_safe(self, node: int) -> bool:
        """Clean-or-guarded (the rule condition on smaller neighbours)."""
        return bool((self._clean_mask | self._guard_mask) & (1 << node))

    def contaminated_nodes(self) -> Set[int]:
        """The set of currently contaminated nodes."""
        return nodes_from_mask(self.contaminated_mask)

    def clean_nodes(self) -> Set[int]:
        """The set of currently clean (and unguarded) nodes."""
        return nodes_from_mask(self._clean_mask)

    def guarded_nodes(self) -> Set[int]:
        """Nodes currently holding at least one agent."""
        return nodes_from_mask(self._guard_mask)

    def decontaminated_nodes(self) -> Set[int]:
        """Clean plus guarded nodes (the region the intruder cannot enter)."""
        return nodes_from_mask(self.decontaminated_mask)

    def all_clean(self) -> bool:
        """Whether no contaminated node remains (the strategy's goal)."""
        return (self._clean_mask | self._guard_mask) == self._full

    def is_monotone(self) -> bool:
        """Whether no recontamination has occurred so far."""
        return not self.recontamination_events

    def frontier_mask(self) -> int:
        """Bitmask of decontaminated nodes adjacent to contamination.

        This is the search's moving boundary — the nodes that must stay
        guarded for the region to be safe.  One whole-frontier
        ``spread_mask`` pass when the topology supports it (O(d) bigint
        shifts on the hypercube), otherwise a per-node scan of the
        decontaminated set.  Zero once the network is fully clean.
        """
        contaminated = self.contaminated_mask
        if not contaminated:
            return 0
        region = self._clean_mask | self._guard_mask
        if self._spread is not None:
            return self._spread(contaminated) & region
        out = 0
        for x in iter_set_bits(region):
            if self._nbr_mask(x) & contaminated:
                out |= 1 << x
        return out

    def is_contiguous(self) -> bool:
        """Whether the decontaminated region is connected (contains homebase).

        The empty-region edge case (before any placement) counts as
        contiguous.  With ``incremental=True`` the answer comes from the
        maintained cache; a stale cache (non-extending arrival or
        recontamination since the last verdict) triggers one bitset BFS.
        """
        if not self._incremental:
            return self.slow_is_contiguous()
        region = self._clean_mask | self._guard_mask
        if not region:
            return True
        if self._contig_cache is None:
            self._contig_cache = self._mask_region_connected(region)
        return self._contig_cache

    def _mask_region_connected(self, region: int) -> bool:
        """Bitset BFS over ``region``; the fallback for non-extending events.

        The search starts at the homebase when it is in the region;
        otherwise (the homebase-evicted case, reachable only through the
        classical ``remove_agent`` model or hand-built ``from_state``
        snapshots) it starts at ``min(region)`` — the lowest set bit — so
        the verdict never depends on set iteration order.
        """
        home_bit = 1 << self.homebase
        frontier = home_bit if region & home_bit else region & -region
        reached = frontier
        if self._spread is not None:
            while frontier:
                frontier = self._spread(frontier) & region & ~reached
                reached |= frontier
        else:
            while frontier:
                grown = 0
                for x in iter_set_bits(frontier):
                    grown |= self._nbr_mask(x)
                frontier = grown & region & ~reached
                reached |= frontier
        return reached == region

    # ------------------------------------------------------------------ #
    # slow reference path (pre-bitset semantics, kept for cross-checks)
    # ------------------------------------------------------------------ #

    def slow_is_contiguous(self) -> bool:
        """Reference contiguity predicate: set-based BFS from scratch.

        Semantically identical to :meth:`is_contiguous`; costs O(n) per
        call.  Kept as the oracle the incremental path is cross-checked
        against (``tests/test_incremental_state.py``,
        ``benchmarks/bench_correctness_sweep.py``).
        """
        region = self.decontaminated_nodes()
        if not region:
            return True
        # min(region), not next(iter(region)): the BFS start must be
        # deterministic in the homebase-evicted case (see
        # _mask_region_connected) or verdicts become run-dependent.
        start = self.homebase if self.homebase in region else min(region)
        seen = {start}
        frontier = deque([start])
        while frontier:
            x = frontier.popleft()
            for y in self._topo.neighbors(x):
                if y in region and y not in seen:
                    seen.add(y)
                    frontier.append(y)
        return len(seen) == len(region)

    def slow_contaminated_nodes(self) -> Set[int]:
        """Reference contaminated set: per-node scan over the topology."""
        return {
            x
            for x in self._topo.nodes()
            if not (self._clean_mask >> x) & 1 and self._guards.get(x, 0) == 0
        }

    # ------------------------------------------------------------------ #
    # state evolution
    # ------------------------------------------------------------------ #

    def place_agent(self, node: int) -> None:
        """Place an agent on ``node`` without a move (initial deployment).

        Only meaningful at the homebase or on an already-guarded node —
        contiguous search forbids teleporting searchers; placing an agent on
        a contaminated node other than the homebase raises.
        """
        if node != self.homebase and self.state(node) is NodeState.CONTAMINATED:
            raise SimulationError(
                f"cannot place an agent on contaminated node {node} (contiguous model)"
            )
        self._note_region_arrival(node)
        self._guards[node] = self._guards.get(node, 0) + 1
        self._guard_mask |= 1 << node
        self._mark_visited(node)

    def move_agent(self, src: int, dst: int) -> None:
        """Atomically move one agent along edge ``(src, dst)``.

        Applies departure and arrival together, then evaluates
        recontamination (standard node-search action semantics).
        """
        if self._guards.get(src, 0) <= 0:
            raise SimulationError(f"no agent on {src} to move")
        if not self._topo.has_edge(src, dst):
            raise SimulationError(f"({src}, {dst}) is not an edge")
        self._note_region_arrival(dst)
        self._guards[src] -= 1
        self._guards[dst] = self._guards.get(dst, 0) + 1
        self._guard_mask |= 1 << dst
        self._mark_visited(dst)
        self._moves_applied += 1
        if self._guards[src] == 0:
            # src is now unguarded; it stays clean only if its whole
            # neighbourhood is safe, otherwise recontamination spreads.
            del self._guards[src]
            self._guard_mask &= ~(1 << src)
            self._clean_mask |= 1 << src
            self._evaluate_recontamination(seeds=[src])

    def remove_agent(self, node: int) -> None:
        """Remove an agent from the network (NOT allowed in the paper's
        contiguous model; provided only for the classical-search baselines).
        """
        if self._guards.get(node, 0) <= 0:
            raise SimulationError(f"no agent on {node} to remove")
        self._guards[node] -= 1
        if self._guards[node] == 0:
            del self._guards[node]
            self._guard_mask &= ~(1 << node)
            self._clean_mask |= 1 << node
            self._evaluate_recontamination(seeds=[node])

    @classmethod
    def from_state(
        cls,
        topology,
        guards: Dict[int, int],
        clean: Set[int],
        *,
        homebase: int = 0,
        strict: bool = True,
    ) -> "ContaminationMap":
        """Reconstruct a map mid-search from explicit guard counts and a
        clean set (replay/cross-validation hook; the caller vouches the
        state is reachable)."""
        cmap = cls(topology, homebase=homebase, strict=strict)
        cmap._guards = {n: c for n, c in guards.items() if c > 0}
        cmap._guard_mask = sum(1 << n for n in cmap._guards)
        cmap._clean_mask = sum(1 << n for n in set(clean) - set(cmap._guards))
        cmap._visited_mask = cmap._clean_mask | cmap._guard_mask
        cmap.first_visit_order = sorted(nodes_from_mask(cmap._visited_mask))
        cmap._contig_cache = None  # arbitrary snapshot: verdict unknown
        return cmap

    def _note_region_arrival(self, node: int) -> None:
        """Incremental contiguity bookkeeping for an arrival at ``node``.

        Called *before* the masks change.  Extending a connected region by
        a node adjacent to it keeps it connected (O(1) verify); anything
        else — first node, non-adjacent arrival, or growth of an already
        non-connected region — marks the cache stale for the BFS fallback.
        """
        bit = 1 << node
        region = self._clean_mask | self._guard_mask
        if region & bit:
            return  # already decontaminated: region shape unchanged
        if not region:
            self._contig_cache = True  # singleton region is connected
        elif self._contig_cache is True and self._nbr_mask(node) & region:
            pass  # connected + adjacent extension stays connected
        else:
            self._contig_cache = None

    def _mark_visited(self, node: int) -> None:
        bit = 1 << node
        if not self._visited_mask & bit:
            self._visited_mask |= bit
            self.first_visit_order.append(node)
        self._clean_mask &= ~bit  # guarded, not merely clean

    def _evaluate_recontamination(self, seeds: Iterable[int]) -> None:
        """Spread contamination from contaminated nodes into unguarded clean
        ones, starting the check at ``seeds`` (nodes that just lost guards).

        The no-recontamination fast path is one mask intersection per seed;
        the flood itself (rare, and terminal in strict mode) walks nodes to
        record ``(node, cause)`` pairs.
        """
        contaminated = self.contaminated_mask
        frontier = deque()
        for node in seeds:
            if (self._clean_mask >> node) & 1:
                causes = self._nbr_mask(node) & contaminated
                if causes:
                    self._recontaminate(node, (causes & -causes).bit_length() - 1)
                    frontier.append(node)
        # transitive spread through unguarded clean nodes
        while frontier:
            x = frontier.popleft()
            for y in iter_set_bits(self._nbr_mask(x) & self._clean_mask):
                self._recontaminate(y, x)
                frontier.append(y)

    def _recontaminate(self, node: int, cause: int) -> None:
        self._clean_mask &= ~(1 << node)
        self._contig_cache = None  # region shrank: verdict unknown
        self.recontamination_events.append((node, cause))
        if self.strict:
            raise RecontaminationError(
                f"node {node} recontaminated from {cause}", node=node
            )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def census(self) -> Dict[NodeState, int]:
        """Node counts per state (three popcounts)."""
        guarded = self._guard_mask.bit_count()
        clean = self._clean_mask.bit_count()
        return {
            NodeState.GUARDED: guarded,
            NodeState.CLEAN: clean,
            NodeState.CONTAMINATED: self._n - guarded - clean,
        }

    def snapshot(self) -> Dict[int, NodeState]:
        """Full state map (used by traces and the viz module)."""
        return {x: self.state(x) for x in self._topo.nodes()}

    def __repr__(self) -> str:
        c = self.census()
        return (
            f"ContaminationMap(n={self._topo.n}, guarded={c[NodeState.GUARDED]}, "
            f"clean={c[NodeState.CLEAN]}, contaminated={c[NodeState.CONTAMINATED]})"
        )
