"""Exact monotone node-search state dynamics (Section 2 of the paper).

The :class:`ContaminationMap` tracks, for every node of a topology, whether
it is *guarded* (at least one agent on it), *clean*, or *contaminated*, and
evolves the state under atomic agent moves with the standard node-search
semantics the paper uses:

* a contaminated node becomes guarded the moment an agent arrives;
* when the last agent leaves a node, the node stays clean only if every
  neighbour is clean or guarded — otherwise it is *recontaminated*, and
  recontamination spreads through every unguarded clean node reachable from
  a contaminated one;
* moves are atomic: the departure and arrival of a traversal take effect
  together, then recontamination is evaluated (this is the "move a searcher
  along an edge" action of the graph-search literature).

The map also answers the two global predicates the paper's definition of a
*contiguous, monotone* strategy needs: whether the decontaminated region
(clean + guarded) is connected, and whether any recontamination ever
happened.  Raising vs. recording is configurable so the verifier can either
fail fast (``strict=True``) or collect all violations for reporting.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.core.states import NodeState
from repro.errors import RecontaminationError, SimulationError
from repro.topology.hypercube import Hypercube

__all__ = ["ContaminationMap"]


class ContaminationMap:
    """Node-search state for one topology.

    Parameters
    ----------
    topology:
        Any object with ``n`` / ``nodes()`` / ``neighbors(x)`` /
        ``has_edge(x, y)`` — :class:`~repro.topology.hypercube.Hypercube`
        or :class:`~repro.topology.generic.GraphAdapter`.
    homebase:
        Node where the team starts; initially the only non-contaminated
        node (guard count 0 but *visited*: agents are placed there by
        :meth:`place_agent` / the first moves).
    strict:
        If true, a recontamination raises
        :class:`~repro.errors.RecontaminationError` immediately; otherwise
        it is recorded in :attr:`recontamination_events`.

    Notes
    -----
    The homebase starts *guarded* conceptually (the team sits on it).  For
    flexibility the map starts with zero guards everywhere and the caller
    places agents; :meth:`place_agent` at the homebase marks it visited
    without a move.
    """

    def __init__(self, topology, homebase: int = 0, strict: bool = True) -> None:
        if homebase not in range(topology.n):
            raise SimulationError(f"homebase {homebase} not a node")
        self._topo = topology
        self.homebase = homebase
        self.strict = strict
        self._guards: Dict[int, int] = {}
        self._clean: Set[int] = set()
        #: list of ``(node, cause_node)`` recontaminations (empty iff monotone)
        self.recontamination_events: List[tuple[int, int]] = []
        #: order in which nodes were first decontaminated (visited)
        self.first_visit_order: List[int] = []
        self._visited: Set[int] = set()
        self._moves_applied = 0

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #

    @property
    def topology(self):
        """The underlying topology object."""
        return self._topo

    def state(self, node: int) -> NodeState:
        """Current :class:`~repro.core.states.NodeState` of ``node``."""
        if self._guards.get(node, 0) > 0:
            return NodeState.GUARDED
        if node in self._clean:
            return NodeState.CLEAN
        return NodeState.CONTAMINATED

    def guards(self, node: int) -> int:
        """Number of agents currently on ``node``."""
        return self._guards.get(node, 0)

    def is_safe(self, node: int) -> bool:
        """Clean-or-guarded (the rule condition on smaller neighbours)."""
        return self.state(node) is not NodeState.CONTAMINATED

    def contaminated_nodes(self) -> Set[int]:
        """The set of currently contaminated nodes."""
        return {
            x
            for x in self._topo.nodes()
            if x not in self._clean and self._guards.get(x, 0) == 0
        }

    def clean_nodes(self) -> Set[int]:
        """The set of currently clean (and unguarded) nodes."""
        return set(self._clean)

    def guarded_nodes(self) -> Set[int]:
        """Nodes currently holding at least one agent."""
        return {x for x, c in self._guards.items() if c > 0}

    def decontaminated_nodes(self) -> Set[int]:
        """Clean plus guarded nodes (the region the intruder cannot enter)."""
        return self._clean | self.guarded_nodes()

    def all_clean(self) -> bool:
        """Whether no contaminated node remains (the strategy's goal)."""
        return len(self._clean) + len(self.guarded_nodes()) == self._topo.n

    def is_monotone(self) -> bool:
        """Whether no recontamination has occurred so far."""
        return not self.recontamination_events

    def is_contiguous(self) -> bool:
        """Whether the decontaminated region is connected (contains homebase).

        The empty-region edge case (before any placement) counts as
        contiguous.
        """
        region = self.decontaminated_nodes()
        if not region:
            return True
        start = self.homebase if self.homebase in region else next(iter(region))
        seen = {start}
        frontier = deque([start])
        while frontier:
            x = frontier.popleft()
            for y in self._topo.neighbors(x):
                if y in region and y not in seen:
                    seen.add(y)
                    frontier.append(y)
        return len(seen) == len(region)

    # ------------------------------------------------------------------ #
    # state evolution
    # ------------------------------------------------------------------ #

    def place_agent(self, node: int) -> None:
        """Place an agent on ``node`` without a move (initial deployment).

        Only meaningful at the homebase or on an already-guarded node —
        contiguous search forbids teleporting searchers; placing an agent on
        a contaminated node other than the homebase raises.
        """
        if node != self.homebase and self.state(node) is NodeState.CONTAMINATED:
            raise SimulationError(
                f"cannot place an agent on contaminated node {node} (contiguous model)"
            )
        self._guards[node] = self._guards.get(node, 0) + 1
        self._mark_visited(node)

    def move_agent(self, src: int, dst: int) -> None:
        """Atomically move one agent along edge ``(src, dst)``.

        Applies departure and arrival together, then evaluates
        recontamination (standard node-search action semantics).
        """
        if self._guards.get(src, 0) <= 0:
            raise SimulationError(f"no agent on {src} to move")
        if not self._topo.has_edge(src, dst):
            raise SimulationError(f"({src}, {dst}) is not an edge")
        self._guards[src] -= 1
        self._guards[dst] = self._guards.get(dst, 0) + 1
        self._mark_visited(dst)
        self._moves_applied += 1
        if self._guards[src] == 0:
            # src is now unguarded; it stays clean only if its whole
            # neighbourhood is safe, otherwise recontamination spreads.
            self._clean.add(src)
            self._evaluate_recontamination(seeds=[src])

    def remove_agent(self, node: int) -> None:
        """Remove an agent from the network (NOT allowed in the paper's
        contiguous model; provided only for the classical-search baselines).
        """
        if self._guards.get(node, 0) <= 0:
            raise SimulationError(f"no agent on {node} to remove")
        self._guards[node] -= 1
        if self._guards[node] == 0:
            self._clean.add(node)
            self._evaluate_recontamination(seeds=[node])

    @classmethod
    def from_state(
        cls,
        topology,
        guards: Dict[int, int],
        clean: Set[int],
        *,
        homebase: int = 0,
        strict: bool = True,
    ) -> "ContaminationMap":
        """Reconstruct a map mid-search from explicit guard counts and a
        clean set (replay/cross-validation hook; the caller vouches the
        state is reachable)."""
        cmap = cls(topology, homebase=homebase, strict=strict)
        cmap._guards = {n: c for n, c in guards.items() if c > 0}
        cmap._clean = set(clean) - set(cmap._guards)
        cmap._visited = set(cmap._clean) | set(cmap._guards)
        cmap.first_visit_order = sorted(cmap._visited)
        return cmap

    def _mark_visited(self, node: int) -> None:
        if node not in self._visited:
            self._visited.add(node)
            self.first_visit_order.append(node)
        self._clean.discard(node)  # guarded, not merely clean

    def _evaluate_recontamination(self, seeds: Iterable[int]) -> None:
        """Spread contamination from contaminated nodes into unguarded clean
        ones, starting the check at ``seeds`` (nodes that just lost guards).
        """
        frontier = deque()
        for node in seeds:
            if node in self._clean:
                cause = self._contaminated_neighbor(node)
                if cause is not None:
                    self._recontaminate(node, cause)
                    frontier.append(node)
        # transitive spread through unguarded clean nodes
        while frontier:
            x = frontier.popleft()
            for y in self._topo.neighbors(x):
                if y in self._clean:
                    self._recontaminate(y, x)
                    frontier.append(y)

    def _contaminated_neighbor(self, node: int) -> Optional[int]:
        for y in self._topo.neighbors(node):
            if y not in self._clean and self._guards.get(y, 0) == 0:
                return y
        return None

    def _recontaminate(self, node: int, cause: int) -> None:
        self._clean.discard(node)
        self.recontamination_events.append((node, cause))
        if self.strict:
            raise RecontaminationError(
                f"node {node} recontaminated from {cause}", node=node
            )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def census(self) -> Dict[NodeState, int]:
        """Node counts per state."""
        counts = {s: 0 for s in NodeState}
        for x in self._topo.nodes():
            counts[self.state(x)] += 1
        return counts

    def snapshot(self) -> Dict[int, NodeState]:
        """Full state map (used by traces and the viz module)."""
        return {x: self.state(x) for x in self._topo.nodes()}

    def __repr__(self) -> str:
        c = self.census()
        return (
            f"ContaminationMap(n={self._topo.n}, guarded={c[NodeState.GUARDED]}, "
            f"clean={c[NodeState.CLEAN]}, contaminated={c[NodeState.CONTAMINATED]})"
        )
