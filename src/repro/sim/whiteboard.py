"""Per-node whiteboards with fair mutual exclusion and bit accounting.

Section 2: "Each node has a local storage area called whiteboard
(``O(log n)`` bits of memory suffice for all our algorithms).  It is
through the whiteboards that agents communicate [...].  Access to a
whiteboard is gained fairly in mutual exclusion.  In particular, the
initial information contained in the whiteboard of a node are: its Id
(binary string), and the label of the incident ports."

In the discrete-event engine every whiteboard access is an atomic event,
which gives mutual exclusion for free; fairness comes from the FIFO
ordering of simultaneous events.  What the class adds is *accounting*: an
estimate of the bits stored, with a ceiling the A2 bench and the memory
tests use to confirm the paper's ``O(log n)``-bit claim (the ceiling
excludes the fixed initial content, as the paper's count does).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

from repro.errors import WhiteboardError

__all__ = ["Whiteboard", "estimate_bits"]


def estimate_bits(value: Any) -> int:
    """Rough storage size of a whiteboard value in bits.

    Ints cost their bit length (min 1), booleans 1, strings 8 per char,
    ``None`` 1; containers cost the sum over their items plus a constant 8
    per slot for structure.  Deliberately simple — the point is catching
    *growth* (e.g. an agent list that scales with ``n`` where a counter
    would do), not byte-exact sizes.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length() + 1)  # +1 sign bit
    if isinstance(value, float):
        return 64
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_bits(v) + 8 for v in value)
    if isinstance(value, dict):
        return 8 + sum(estimate_bits(k) + estimate_bits(v) + 8 for k, v in value.items())
    raise WhiteboardError(f"unsupported whiteboard value type {type(value).__name__}")


class Whiteboard:
    """The mutable store at one node.

    Parameters
    ----------
    node:
        Owning node id (stored for error messages and the initial content).
    degree:
        Number of incident ports (initial content: the port labels).
    capacity_bits:
        Optional ceiling on user-stored bits; ``None`` disables enforcement
        (the accounting still runs and :attr:`peak_bits` records the high
        water mark).
    """

    def __init__(self, node: int, degree: int, capacity_bits: Optional[int] = None) -> None:
        self.node = node
        self.degree = degree
        self.capacity_bits = capacity_bits
        self._data: Dict[str, Any] = {}
        self.peak_bits = 0
        self.access_count = 0

    # ------------------------------------------------------------------ #

    @property
    def initial_info(self) -> Dict[str, Any]:
        """The paper's fixed initial content: node id and port labels."""
        return {"id": self.node, "ports": list(range(1, self.degree + 1))}

    def read(self, key: Optional[str] = None) -> Any:
        """Read one key (or everything when ``key`` is None), as a deep copy.

        Returning the stored object itself would hand the caller a live
        alias into the board: mutating a returned list/dict would change
        node state outside :meth:`write`/:meth:`update`, silently
        bypassing the bit accounting and the ``capacity_bits`` ceiling.
        Mutation must go through :meth:`update`.
        """
        self.access_count += 1
        if key is None:
            return copy.deepcopy(self._data)
        return copy.deepcopy(self._data.get(key))

    def write(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic; engine serializes access)."""
        self.access_count += 1
        if not isinstance(key, str):
            raise WhiteboardError(f"whiteboard keys must be strings, got {key!r}")
        self._data[key] = value
        self._account()

    def update(self, mutator) -> Any:
        """Apply ``mutator(dict) -> result`` atomically; returns the result.

        The mutator receives the live dict — this is the read-modify-write
        primitive protocols use for counters and arrival lists.
        """
        self.access_count += 1
        result = mutator(self._data)
        self._account()
        return result

    def delete(self, key: str) -> None:
        """Remove ``key`` if present (and refresh the bit accounting —
        a board over capacity through an aliasing bug must be caught at
        the delete, not silently at the next unrelated write)."""
        self.access_count += 1
        self._data.pop(key, None)
        self._account()

    def used_bits(self) -> int:
        """Current user-stored bits (excludes the fixed initial content)."""
        return sum(estimate_bits(k) + estimate_bits(v) for k, v in self._data.items())

    def _account(self) -> None:
        bits = self.used_bits()
        if bits > self.peak_bits:
            self.peak_bits = bits
        if self.capacity_bits is not None and bits > self.capacity_bits:
            raise WhiteboardError(
                f"whiteboard of node {self.node} holds {bits} bits "
                f"(> capacity {self.capacity_bits})"
            )

    def __repr__(self) -> str:
        return f"Whiteboard(node={self.node}, keys={sorted(self._data)}, bits={self.used_bits()})"
