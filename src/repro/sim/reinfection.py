"""Periodic cleaning under re-infection (the Section 1.1 motivation).

"So to ensure that no undesirable intruders are present in a network,
periodic cleaning strategies could be performed by teams of agents" — this
module simulates exactly that lifecycle: the network gets infected (one or
more hosts seed a contamination that spreads to everything reachable
without guards — i.e., between sweeps, everything unguarded), a sweep runs
and is verified, time passes, new infections appear, repeat.

Each period replays the chosen strategy's schedule (optionally from a
different homebase via the XOR automorphism) against a fresh contamination
state and accounts the recurring overhead: moves, steps and agent-time per
period — the "cleaning overhead compared to the normal load" trade-off the
paper motivates.

Capture accounting is *seed-dependent*: each sampled seed hosts an inert
fugitive (arXiv:0802.3512 — it hides at its seed until a searcher steps
onto that node, then flees arbitrarily far through unguarded space), and
the period's ``capture_times`` record the time unit each fugitive's
possible-location set empties, via the shared
:class:`~repro.fastpath.batchsim.ScenarioTimeline` of the period's
homebase.  A homebase-adjacent seed is therefore *not* "captured" when
its node is cleaned in the first unit — it flees and survives until the
sweep's last pocket vanishes.

Determinism: seed sampling and homebase rotation draw from independent
sub-streams of the master RNG (the ``getrandbits(64)`` idiom from
:class:`~repro.sim.intruder.MultiWalkerIntruder`), so toggling
``rotate_homebase`` never reshuffles the seed sequence.  Verification and
timelines are memoized per homebase — a 1000-period run verifies each
distinct translation once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError

__all__ = ["PeriodReport", "PeriodicCleaning"]


@dataclass(frozen=True)
class PeriodReport:
    """Outcome of one infection + sweep cycle.

    ``capture_times[i]`` is the time unit the fugitive seeded at
    ``seeds[i]`` is captured (-1 if it survives the sweep); ``captured``
    is true iff every fugitive of the period was captured.
    """

    period: int
    homebase: int
    seeds: List[int]
    moves: int
    steps: int
    agents: int
    captured: bool
    capture_times: List[int] = field(default_factory=list)


@dataclass
class PeriodicCleaning:
    """A recurring decontamination service for one hypercube.

    Parameters
    ----------
    dimension:
        Hypercube degree.
    strategy:
        Registry name of the sweep strategy (default the fast local one).
    seeds_per_period:
        How many hosts get (re-)infected before each sweep.  In the
        worst-case model an infection spreads to every unguarded host
        before the team reacts, so the sweep must always clean the whole
        cube — the seeds determine where the *intruders* start, not how
        much work the sweep does.
    rotate_homebase:
        If true, each period launches from a different (random) homebase
        using the XOR automorphism — spreading the wear across hosts.
    rng_seed:
        Reproducibility.
    """

    dimension: int
    strategy: str = "visibility"
    seeds_per_period: int = 1
    rotate_homebase: bool = False
    rng_seed: int = 0
    history: List[PeriodReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        from repro.core.strategy import get_strategy  # lazy: avoids an
        # import cycle through the package __init__ modules

        if self.seeds_per_period < 1:
            raise ReproError("need at least one infection seed per period")
        master = random.Random(self.rng_seed)
        # Independent sub-streams (the getrandbits(64) idiom): seed
        # sampling must not share a stream with homebase rotation, or
        # toggling rotate_homebase would silently reshuffle every later
        # period's seeds.  Drawn in a fixed, documented order.
        self._seed_rng = random.Random(master.getrandbits(64))
        self._home_rng = random.Random(master.getrandbits(64))
        self._base_schedule = get_strategy(self.strategy).run(self.dimension)
        # compiled twin + per-homebase caches, built on first use (the
        # fastpath import stays lazy so `import repro.sim` stays light)
        self._compiled: Optional[Any] = None
        self._verified: Dict[int, Any] = {}
        self._timelines: Dict[int, Any] = {}

    # ------------------------------------------------------------------ #
    # per-homebase memoization
    # ------------------------------------------------------------------ #

    def _verify_homebase(self, homebase: int):
        """Verify the translated schedule once per distinct homebase."""
        report = self._verified.get(homebase)
        if report is None:
            from repro.analysis.verify import verify_schedule

            schedule = (
                self._base_schedule.translated(homebase)
                if homebase != self._base_schedule.homebase
                else self._base_schedule
            )
            report = verify_schedule(schedule)
            self._verified[homebase] = report
        return report

    def _timeline(self, homebase: int):
        """The shared scenario timeline for one homebase (memoized)."""
        timeline = self._timelines.get(homebase)
        if timeline is None:
            from repro.fastpath.batchsim import ScenarioTimeline
            from repro.fastpath.compiled import CompiledSchedule

            if self._compiled is None:
                self._compiled = CompiledSchedule.from_schedule(self._base_schedule)
            timeline = ScenarioTimeline(self._compiled, homebase)
            self._timelines[homebase] = timeline
        return timeline

    def score_seeds(self, homebase: int, seeds: Sequence[int]) -> List[int]:
        """Capture time unit of the inert fugitive at each seed (-1:
        never captured) under the sweep launched from ``homebase``."""
        timeline = self._timeline(homebase)
        out = []
        for seed in seeds:
            index = timeline.inert_capture_index(seed)
            out.append(timeline.unit_times[index] if index >= 0 else -1)
        return out

    @property
    def verifications(self) -> int:
        """Distinct homebases verified so far (memoization observability)."""
        return len(self._verified)

    # ------------------------------------------------------------------ #
    # the lifecycle
    # ------------------------------------------------------------------ #

    def run_period(self) -> PeriodReport:
        """Infect, sweep, verify; returns (and records) the period report."""
        n = 1 << self.dimension
        homebase = self._home_rng.randrange(n) if self.rotate_homebase else 0
        schedule = (
            self._base_schedule.translated(homebase)
            if homebase
            else self._base_schedule
        )
        # Seeds are sampled as nonzero offsets relative to the homebase
        # and mapped through the same XOR automorphism as the schedule:
        # the drawn sequence is identical whatever the homebase, so
        # rotation changes only the translation, never the stream.
        offsets = self._seed_rng.sample(range(1, n), min(self.seeds_per_period, n - 1))
        seeds = sorted(offset ^ homebase for offset in offsets)

        report = self._verify_homebase(homebase)
        if not report.ok:
            raise ReproError(f"sweep failed in period {len(self.history)}: {report.summary()}")
        # capture check for the specific intruders: each seed hosts an
        # inert fugitive whose possible region is tracked under the sweep
        capture_times = self.score_seeds(homebase, seeds)
        captured = all(t >= 0 for t in capture_times)

        period = PeriodReport(
            period=len(self.history),
            homebase=homebase,
            seeds=seeds,
            moves=schedule.total_moves,
            steps=schedule.makespan,
            agents=schedule.team_size,
            captured=captured,
            capture_times=capture_times,
        )
        self.history.append(period)
        return period

    def run(self, periods: int) -> List[PeriodReport]:
        """Run several cycles; returns the accumulated history."""
        for _ in range(periods):
            self.run_period()
        return list(self.history)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @property
    def total_moves(self) -> int:
        return sum(p.moves for p in self.history)

    @property
    def total_steps(self) -> int:
        return sum(p.steps for p in self.history)

    def amortized_overhead(self) -> float:
        """Moves per host per period — the §1.1 overhead figure."""
        if not self.history:
            return 0.0
        return self.total_moves / ((1 << self.dimension) * len(self.history))

    def describe(self) -> str:
        """Multi-line service report: per-period rows plus the overhead."""
        lines = [
            f"periodic cleaning of H_{self.dimension} with {self.strategy}: "
            f"{len(self.history)} periods"
        ]
        for p in self.history:
            lines.append(
                f"  period {p.period}: homebase {p.homebase}, seeds {p.seeds}, "
                f"{p.moves} moves / {p.steps} steps, captured={p.captured} "
                f"at {p.capture_times}"
            )
        lines.append(f"amortized overhead: {self.amortized_overhead():.2f} moves/host/period")
        return "\n".join(lines)
