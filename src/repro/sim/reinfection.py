"""Periodic cleaning under re-infection (the Section 1.1 motivation).

"So to ensure that no undesirable intruders are present in a network,
periodic cleaning strategies could be performed by teams of agents" — this
module simulates exactly that lifecycle: the network gets infected (one or
more hosts seed a contamination that spreads to everything reachable
without guards — i.e., between sweeps, everything unguarded), a sweep runs
and is verified, time passes, new infections appear, repeat.

Each period replays the chosen strategy's schedule (optionally from a
different homebase via the XOR automorphism) against a fresh contamination
state and accounts the recurring overhead: moves, steps and agent-time per
period — the "cleaning overhead compared to the normal load" trade-off the
paper motivates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ReproError

__all__ = ["PeriodReport", "PeriodicCleaning"]


@dataclass(frozen=True)
class PeriodReport:
    """Outcome of one infection + sweep cycle."""

    period: int
    homebase: int
    seeds: List[int]
    moves: int
    steps: int
    agents: int
    captured: bool


@dataclass
class PeriodicCleaning:
    """A recurring decontamination service for one hypercube.

    Parameters
    ----------
    dimension:
        Hypercube degree.
    strategy:
        Registry name of the sweep strategy (default the fast local one).
    seeds_per_period:
        How many hosts get (re-)infected before each sweep.  In the
        worst-case model an infection spreads to every unguarded host
        before the team reacts, so the sweep must always clean the whole
        cube — the seeds determine where the *intruder* starts, not how
        much work the sweep does.
    rotate_homebase:
        If true, each period launches from a different (random) homebase
        using the XOR automorphism — spreading the wear across hosts.
    rng_seed:
        Reproducibility.
    """

    dimension: int
    strategy: str = "visibility"
    seeds_per_period: int = 1
    rotate_homebase: bool = False
    rng_seed: int = 0
    history: List[PeriodReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        from repro.core.strategy import get_strategy  # lazy: avoids an
        # import cycle through the package __init__ modules

        if self.seeds_per_period < 1:
            raise ReproError("need at least one infection seed per period")
        self._rng = random.Random(self.rng_seed)
        self._base_schedule = get_strategy(self.strategy).run(self.dimension)

    def run_period(self) -> PeriodReport:
        """Infect, sweep, verify; returns (and records) the period report."""
        n = 1 << self.dimension
        homebase = self._rng.randrange(n) if self.rotate_homebase else 0
        schedule = (
            self._base_schedule.translated(homebase)
            if homebase
            else self._base_schedule
        )
        candidates = [x for x in range(n) if x != homebase]
        seeds = sorted(self._rng.sample(candidates, min(self.seeds_per_period, len(candidates))))

        from repro.analysis.verify import verify_schedule

        report = verify_schedule(schedule)
        if not report.ok:
            raise ReproError(f"sweep failed in period {len(self.history)}: {report.summary()}")
        # capture check for the specific intruders: each seed's possible
        # region is wiped because the sweep decontaminates everything
        captured = report.complete and report.monotone

        period = PeriodReport(
            period=len(self.history),
            homebase=homebase,
            seeds=seeds,
            moves=schedule.total_moves,
            steps=schedule.makespan,
            agents=schedule.team_size,
            captured=captured,
        )
        self.history.append(period)
        return period

    def run(self, periods: int) -> List[PeriodReport]:
        """Run several cycles; returns the accumulated history."""
        for _ in range(periods):
            self.run_period()
        return list(self.history)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @property
    def total_moves(self) -> int:
        return sum(p.moves for p in self.history)

    @property
    def total_steps(self) -> int:
        return sum(p.steps for p in self.history)

    def amortized_overhead(self) -> float:
        """Moves per host per period — the §1.1 overhead figure."""
        if not self.history:
            return 0.0
        return self.total_moves / ((1 << self.dimension) * len(self.history))

    def describe(self) -> str:
        """Multi-line service report: per-period rows plus the overhead."""
        lines = [
            f"periodic cleaning of H_{self.dimension} with {self.strategy}: "
            f"{len(self.history)} periods"
        ]
        for p in self.history:
            lines.append(
                f"  period {p.period}: homebase {p.homebase}, seeds {p.seeds}, "
                f"{p.moves} moves / {p.steps} steps, captured={p.captured}"
            )
        lines.append(f"amortized overhead: {self.amortized_overhead():.2f} moves/host/period")
        return "\n".join(lines)
