"""The intruder: omniscient, arbitrarily fast, hostile (Section 1.1).

The paper's worst-case intruder "moves as if it can see the whereabouts of
the team of agents, thus avoiding them as much as possible" and can move
arbitrarily fast — i.e. between any two agent actions it may traverse any
number of edges, as long as it never steps on a guarded node.

Two equivalent formalizations are provided:

* :class:`ReachableSetIntruder` — the standard graph-search semantics: the
  intruder "is" the set of nodes it could possibly occupy, namely the set
  of contaminated nodes.  It is captured exactly when that set becomes
  empty.  This is the model the verifier uses to prove capture.

* :class:`WalkerIntruder` — a concrete adversarial walker occupying one
  node, used by the examples and the failure-injection tests: after every
  agent action it greedily relocates inside its reachable contaminated
  region (preferring nodes far from agents) and is captured when an agent
  lands on its node or its region vanishes.

Both share the :class:`Intruder` interface so the engine can host either.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional, Set

from repro._bitops import nodes_from_mask
from repro.errors import SimulationError
from repro.sim.contamination import ContaminationMap

__all__ = ["Intruder", "ReachableSetIntruder", "WalkerIntruder"]


class Intruder:
    """Interface: something hiding in the contaminated region."""

    def observe(self, cmap: ContaminationMap) -> None:
        """React (arbitrarily fast) to the new network state."""
        raise NotImplementedError

    @property
    def captured(self) -> bool:
        """Whether the intruder has been caught."""
        raise NotImplementedError


class ReachableSetIntruder(Intruder):
    """Set semantics: the intruder occupies *every* contaminated node.

    Captured exactly when no contaminated node remains.  Additionally
    verifies the classic equivalence: the contaminated region can only
    shrink in a monotone strategy — if it ever grows somewhere that was
    clean, the underlying map has already recorded a recontamination.

    The region is tracked as a node-set bitmask read straight off the
    map's :attr:`~repro.sim.contamination.ContaminationMap.contaminated_mask`
    delta — per observation this is a couple of big-integer operations, not
    an O(n) set rebuild, so co-simulating the intruder no longer dominates
    large runs.
    """

    def __init__(self, cmap: ContaminationMap) -> None:
        self._region_mask: int = cmap.contaminated_mask
        self._ever_grew = False
        self.observe(cmap)

    def observe(self, cmap: ContaminationMap) -> None:
        new_mask = cmap.contaminated_mask
        if new_mask & ~self._region_mask:
            self._ever_grew = True
        self._region_mask = new_mask

    @property
    def region(self) -> Set[int]:
        """The set of nodes the intruder may currently occupy."""
        return nodes_from_mask(self._region_mask)

    @property
    def region_mask(self) -> int:
        """The possible-location set as a node bitmask."""
        return self._region_mask

    @property
    def captured(self) -> bool:
        return self._region_mask == 0

    @property
    def ever_escaped_into_clean_area(self) -> bool:
        """True iff the possible-location set ever grew (recontamination)."""
        return self._ever_grew


class WalkerIntruder(Intruder):
    """A concrete intruder occupying a single node.

    Movement model: after each observation the intruder may traverse any
    number of edges through nodes that are not guarded (arbitrarily fast),
    so its options are the nodes of its current connected unguarded region.
    The policy picks, within the *contaminated* part of that region, a node
    maximizing distance from the nearest guard (ties broken by the given
    RNG so runs are reproducible).

    Parameters
    ----------
    cmap:
        The contamination map to live in.
    start:
        Starting node; must be contaminated.  If ``None``, the node of the
        contaminated region farthest from the homebase is chosen.
    rng:
        Source of tie-breaking randomness (``random.Random``).
    """

    def __init__(
        self,
        cmap: ContaminationMap,
        start: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._rng = rng or random.Random(0)
        self._captured = False
        contaminated = cmap.contaminated_nodes()
        if not contaminated:
            raise SimulationError("nothing is contaminated; no place for an intruder")
        if start is None:
            start = max(contaminated, key=lambda x: self._bfs_depth(cmap, x))
        if start not in contaminated:
            raise SimulationError(f"intruder start {start} is not contaminated")
        self.position = start
        #: every node the intruder has ever occupied, in order
        self.trajectory = [start]

    @staticmethod
    def _bfs_depth(cmap: ContaminationMap, node: int) -> int:
        # distance from homebase, used only for the default start heuristic
        topo = cmap.topology
        seen = {cmap.homebase: 0}
        q = deque([cmap.homebase])
        while q:
            x = q.popleft()
            for y in topo.neighbors(x):
                if y not in seen:
                    seen[y] = seen[x] + 1
                    q.append(y)
        return seen.get(node, -1)

    def _reachable_region(self, cmap: ContaminationMap) -> Set[int]:
        """Nodes reachable from the current position avoiding guards.

        A bitset BFS over the unguarded node set when the topology supports
        whole-frontier expansion (``spread_mask``); otherwise the plain
        set-based walk.
        """
        topo = cmap.topology
        if cmap.guards(self.position) > 0:
            return set()
        spread = getattr(topo, "spread_mask", None)
        if spread is not None:
            unguarded = ((1 << topo.n) - 1) & ~cmap.guard_mask
            frontier = 1 << self.position
            reached = frontier
            while frontier:
                frontier = spread(frontier) & unguarded & ~reached
                reached |= frontier
            return nodes_from_mask(reached)
        seen = {self.position}
        q = deque([self.position])
        while q:
            x = q.popleft()
            for y in topo.neighbors(x):
                if y not in seen and cmap.guards(y) == 0:
                    seen.add(y)
                    q.append(y)
        return seen

    def observe(self, cmap: ContaminationMap) -> None:
        if self._captured:
            return
        if cmap.guards(self.position) > 0:
            # an agent stepped onto the intruder's node
            self._captured = True
            return
        reachable = self._reachable_region(cmap)
        hideouts = reachable & cmap.contaminated_nodes()
        if not hideouts:
            # nowhere contaminated to hide: the intruder is cornered in the
            # clean region, where it is detected by the sweep (equivalently,
            # its possible-location set is empty).
            self._captured = True
            return
        # greedy: maximize distance to nearest guard, break ties randomly
        guard_nodes = cmap.guarded_nodes()
        if guard_nodes:
            distances = self._multi_source_distances(cmap, guard_nodes)
            best = max(distances.get(x, 0) for x in hideouts)
            candidates = [x for x in hideouts if distances.get(x, 0) == best]
        else:
            candidates = sorted(hideouts)
        target = self._rng.choice(sorted(candidates))
        if target != self.position:
            self.position = target
            self.trajectory.append(target)

    @staticmethod
    def _multi_source_distances(cmap: ContaminationMap, sources: Set[int]) -> dict:
        topo = cmap.topology
        dist = {s: 0 for s in sources}
        q = deque(sources)
        while q:
            x = q.popleft()
            for y in topo.neighbors(x):
                if y not in dist:
                    dist[y] = dist[x] + 1
                    q.append(y)
        return dist

    @property
    def captured(self) -> bool:
        return self._captured


class MultiWalkerIntruder(Intruder):
    """Several independent adversarial walkers (a botnet, not one virus).

    Each walker flees independently; the pack is captured when every
    member is.  Walkers may share a node (they do not block each other).

    Parameters
    ----------
    cmap:
        The contamination map to live in.
    count:
        Number of walkers; starts are sampled without replacement from the
        contaminated region (with replacement if the region is smaller).
    rng:
        Shared randomness for starts and tie-breaking.
    """

    def __init__(
        self,
        cmap: ContaminationMap,
        count: int = 2,
        rng: Optional[random.Random] = None,
    ) -> None:
        if count < 1:
            raise SimulationError("need at least one walker")
        self._rng = rng or random.Random(0)
        contaminated = sorted(cmap.contaminated_nodes())
        if not contaminated:
            raise SimulationError("nothing is contaminated; no place for intruders")
        if count <= len(contaminated):
            starts = self._rng.sample(contaminated, count)
        else:
            starts = [self._rng.choice(contaminated) for _ in range(count)]
        # Seed sub-walkers from getrandbits(64), not random(): a float seed
        # quantizes the stream to 53 bits and two walkers could collide on
        # identical seeds; 64 fresh bits keep packs reproducible per seed
        # and the sub-streams distinct.
        self.walkers = [
            WalkerIntruder(cmap, start=s, rng=random.Random(self._rng.getrandbits(64)))
            for s in starts
        ]

    def observe(self, cmap: ContaminationMap) -> None:
        for walker in self.walkers:
            walker.observe(cmap)

    @property
    def captured(self) -> bool:
        return all(w.captured for w in self.walkers)

    @property
    def positions(self) -> list:
        """Current positions of the uncaptured walkers."""
        return [w.position for w in self.walkers if not w.captured]
