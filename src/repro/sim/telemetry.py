"""Simulation telemetry: the traffic/overhead measures from Section 1.1.

The paper's motivation says cleaning teams "would have to use as few agents
as possible and these agents would have to perform as few moves as possible
so that the cleaning overhead would not be too important compared to the
normal load of the network."  This module extracts exactly those overhead
measures from an execution trace:

* per-node traffic (how many traversals *enter* each host — hotspots),
* per-agent work (moves, busy vs waiting time),
* per-link traffic (directed edge usage),
* wait statistics (how long agents idle on whiteboard conditions).

Used by the overhead-study example and the telemetry tests; everything is
computed from the :class:`~repro.sim.trace.Trace` after the run, so the
engine pays nothing during simulation.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import Trace

__all__ = ["TraceTelemetry", "analyze_trace"]


@dataclass(frozen=True)
class TraceTelemetry:
    """Aggregated overhead measures for one run."""

    total_moves: int
    makespan: float
    node_traffic: Dict[int, int]  # arrivals per node
    link_traffic: Dict[Tuple[int, int], int]  # traversals per directed edge
    agent_moves: Dict[int, int]
    agent_wait_time: Dict[int, float]  # total blocked time per agent
    clones_created: int
    terminations: int

    @property
    def hottest_node(self) -> Optional[Tuple[int, int]]:
        """``(node, arrivals)`` of the most-trafficked host.

        ``None`` when no traffic was recorded — previously this returned
        ``(0, 0)``, indistinguishable from "node 0 had 0 arrivals".
        """
        if not self.node_traffic:
            return None
        node = max(self.node_traffic, key=lambda x: (self.node_traffic[x], -x))
        return node, self.node_traffic[node]

    @property
    def hottest_link(self) -> Optional[Tuple[Tuple[int, int], int]]:
        """``((src, dst), traversals)`` of the busiest directed link.

        ``None`` when no link was ever traversed (see :attr:`hottest_node`).
        """
        if not self.link_traffic:
            return None
        link = max(self.link_traffic, key=lambda e: (self.link_traffic[e], e))
        return link, self.link_traffic[link]

    @property
    def mean_moves_per_agent(self) -> float:
        if not self.agent_moves:
            return 0.0
        return sum(self.agent_moves.values()) / len(self.agent_moves)

    @property
    def total_wait_time(self) -> float:
        return sum(self.agent_wait_time.values())

    def traffic_overhead_per_node(self, n: int) -> float:
        """Average arrivals per host — the §1.1 'cleaning overhead' figure."""
        return self.total_moves / n if n else 0.0

    def describe(self) -> str:
        """Multi-line human-readable report."""
        if self.hottest_node is not None:
            node, arrivals = self.hottest_node
            node_line = f"hottest node  : {node} ({arrivals} arrivals)"
        else:
            node_line = "hottest node  : none (no traffic)"
        if self.hottest_link is not None:
            link, crossings = self.hottest_link
            link_line = f"hottest link  : {link[0]} -> {link[1]} ({crossings} traversals)"
        else:
            link_line = "hottest link  : none (no traffic)"
        return "\n".join(
            [
                f"moves         : {self.total_moves} over {self.makespan:.2f} time units",
                node_line,
                link_line,
                f"moves/agent   : {self.mean_moves_per_agent:.2f} mean",
                f"waiting       : {self.total_wait_time:.2f} agent-time blocked",
                f"clones/terms  : {self.clones_created}/{self.terminations}",
            ]
        )


def analyze_trace(trace: Trace) -> TraceTelemetry:
    """Compute :class:`TraceTelemetry` from a finished run's trace.

    Wait time is measured from each ``wait`` event to the same agent's next
    ``wake`` (or move/terminate) event; an agent still blocked at the end
    contributes until the trace's makespan.
    """
    node_traffic: Counter = Counter()
    link_traffic: Counter = Counter()
    agent_moves: Counter = Counter()
    wait_started: Dict[int, float] = {}
    agent_wait: defaultdict = defaultdict(float)
    clones = 0
    terminations = 0

    for event in trace:
        if event.kind == "move":
            node_traffic[event.node] += 1
            link_traffic[(event.data["src"], event.node)] += 1
            agent_moves[event.agent] += 1
            if event.agent in wait_started:
                agent_wait[event.agent] += event.time - wait_started.pop(event.agent)
        elif event.kind == "wait":
            wait_started.setdefault(event.agent, event.time)
        elif event.kind == "wake":
            if event.agent in wait_started:
                agent_wait[event.agent] += event.time - wait_started.pop(event.agent)
        elif event.kind == "clone":
            clones += 1
        elif event.kind in ("terminate", "crash"):
            if event.kind == "terminate":
                terminations += 1
            # either way the agent is gone: close any open wait interval
            if event.agent in wait_started:
                agent_wait[event.agent] += event.time - wait_started.pop(event.agent)

    makespan = trace.makespan()
    for agent, started in wait_started.items():
        agent_wait[agent] += makespan - started

    return TraceTelemetry(
        total_moves=trace.move_count(),
        makespan=makespan,
        node_traffic=dict(node_traffic),
        link_traffic=dict(link_traffic),
        agent_moves=dict(agent_moves),
        agent_wait_time=dict(agent_wait),
        clones_created=clones,
        terminations=terminations,
    )
