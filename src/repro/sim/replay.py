"""Execute any schedule on the discrete-event engine.

Bridges the two planes in the remaining direction: the protocols show that
distributed rules *produce* the schedules; this module takes any
:class:`~repro.core.schedule.Schedule` (a paper strategy, a baseline, a
hand-written one) and runs it as scripted clock-driven agents on the
engine, so the engine's independent contamination/intruder bookkeeping
re-judges it.

Timing: a move stamped ``t`` occupies ``(t-1, t]``, so its agent waits for
global time ``t - 1`` (synchronous model) and then traverses one edge
under unit delays, arriving at ``t`` exactly.  The engine's verdict must
therefore agree with the schedule verifier's — tested over every strategy
and over fuzzed generic-graph schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schedule import Move as ScheduleMove
from repro.core.schedule import Schedule
from repro.errors import SimulationError
from repro.sim.agent import AgentContext, CloneSelf, Move, Terminate, WaitUntil
from repro.sim.engine import Engine, SimResult
from repro.sim.scheduling import UnitDelay

__all__ = ["clone_parentage", "execute_schedule_on_engine"]


def _scripted(moves: List[ScheduleMove]):
    """Behaviour factory: follow the timed move script verbatim."""

    # Not a protocol: scripted replay follows a precomputed schedule, so
    # there is no capability claim for a MODEL declaration to check.
    def behavior(ctx: AgentContext):  # repro-lint: disable=RPR100
        for m in moves:
            yield WaitUntil(
                lambda view, t=m.time: view.time >= t - 1,
                wake_at=float(m.time - 1),
                description=f"scripted move at t={m.time}",
            )
            if ctx.node != m.src:
                raise SimulationError(
                    f"scripted agent at {ctx.node}, script expects {m.src}"
                )
            yield Move(m.dst)
        yield Terminate()

    return behavior


def _terminator(ctx: AgentContext):
    """An agent that just guards the homebase."""
    yield Terminate()


def clone_parentage(schedule: Schedule) -> Dict[int, int]:
    """Map every non-root agent of a cloning schedule to its parent.

    A clone's parent is the agent resident on its birth node: the agent
    whose latest move *strictly before* the clone's first move landed
    there (the cloning generator's convention); clones born on the
    homebase descend from the root agent.  When several agents arrived
    at the birth node at that same latest time, the **lowest agent id**
    wins — dict iteration order must never decide the spawn tree, or the
    same schedule could replay differently across runs.
    """
    per_agent: Dict[int, List[ScheduleMove]] = {}
    for m in schedule.moves:
        per_agent.setdefault(m.agent, []).append(m)
    for moves in per_agent.values():
        moves.sort(key=lambda m: m.time)

    if not per_agent:
        return {}
    root_agent = min(per_agent)

    def parent_of(agent: int) -> int:
        moves = per_agent[agent]
        node, when = moves[0].src, moves[0].time
        if node == schedule.homebase:
            return root_agent
        best: Optional[tuple[int, int]] = None  # (arrival time, agent id)
        for other, other_moves in per_agent.items():
            if other == agent:
                continue
            for m in other_moves:
                if m.dst == node and m.time < when:
                    if (
                        best is None
                        or m.time > best[0]
                        or (m.time == best[0] and other < best[1])
                    ):
                        best = (m.time, other)
        if best is None:
            raise SimulationError(f"no parent found for clone {agent} at {node}")
        return best[1]

    return {agent: parent_of(agent) for agent in sorted(per_agent) if agent != root_agent}


def execute_schedule_on_engine(
    schedule: Schedule,
    topology,
    *,
    intruder: Optional[str] = "reachable",
    intruder_seed: int = 0,
    intruder_count: int = 2,
    check_contiguity: bool = True,
) -> SimResult:
    """Run ``schedule`` as scripted agents; returns the engine's verdict.

    ``intruder_seed`` / ``intruder_count`` parameterize the walker
    intruders exactly as on :class:`~repro.sim.engine.Engine`, so a
    scripted replay is a scalar twin for any batch-engine scenario.

    Cloning schedules are executed with real ``CloneSelf`` actions: each
    clone is spawned, just before its first scripted move, by the agent
    resident on its birth node (the agent whose latest earlier move landed
    there — the convention of the cloning generator).
    """
    per_agent: Dict[int, List[ScheduleMove]] = {}
    for m in schedule.moves:
        per_agent.setdefault(m.agent, []).append(m)
    for moves in per_agent.values():
        moves.sort(key=lambda m: m.time)

    if not schedule.uses_cloning:
        idle_agents = max(schedule.team_size - len(per_agent), 0)
        behaviors = [_scripted(moves) for _, moves in sorted(per_agent.items())]
        behaviors += [_terminator] * idle_agents
        engine = Engine(
            topology,
            behaviors or [_terminator],
            homebase=schedule.homebase,
            delay=UnitDelay(),
            global_clock=True,
            intruder=intruder,
            intruder_seed=intruder_seed,
            intruder_count=intruder_count,
            check_contiguity=check_contiguity,
        )
        return engine.run()

    # ---- cloning: build the spawn tree ---------------------------------- #
    root_agent = min(per_agent) if per_agent else 0
    birth_time = {a: moves[0].time for a, moves in per_agent.items()}

    parentage = clone_parentage(schedule)
    children: Dict[int, List[int]] = {}
    for agent, parent in parentage.items():
        children.setdefault(parent, []).append(agent)

    def scripted_with_clones(agent: int):
        moves = per_agent[agent]
        kids = sorted(children.get(agent, []), key=lambda a: birth_time[a])

        def behavior(ctx: AgentContext):
            pending = list(kids)
            for m in moves:
                while pending and birth_time[pending[0]] <= m.time:
                    yield CloneSelf(scripted_with_clones(pending.pop(0)))
                yield WaitUntil(
                    lambda view, t=m.time: view.time >= t - 1,
                    wake_at=float(m.time - 1),
                    description=f"scripted move at t={m.time}",
                )
                yield Move(m.dst)
            while pending:
                yield CloneSelf(scripted_with_clones(pending.pop(0)))
            yield Terminate()

        return behavior

    engine = Engine(
        topology,
        [scripted_with_clones(root_agent)],
        homebase=schedule.homebase,
        delay=UnitDelay(),
        global_clock=True,
        cloning=True,
        intruder=intruder,
        intruder_seed=intruder_seed,
        intruder_count=intruder_count,
        check_contiguity=check_contiguity,
    )
    return engine.run()
