"""Event queue for the discrete-event engine.

A tiny priority queue of ``(time, sequence, agent_id)`` entries.  The
sequence number makes ordering deterministic for simultaneous events (FIFO
among equals), which keeps whole simulations reproducible for a fixed delay
model and seed — a property the protocol equivalence tests rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled agent resumption.

    ``token`` is the agent's scheduling-generation counter at push time;
    the engine drops events whose token no longer matches the agent's
    (they were superseded by a newer decision — e.g. a wake-up queued for
    an agent that has since started a move).
    """

    time: float
    sequence: int
    agent_id: int = field(compare=False)
    token: int = field(compare=False, default=0)


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0

    @property
    def total_pushed(self) -> int:
        """Events ever pushed (the sequence counter; never decreases).

        Instrumentation reads this for scheduler-pressure accounting —
        superseded-token drops are ``total_pushed`` minus the events the
        engine actually processed.
        """
        return self._sequence

    def push(self, time: float, agent_id: int, token: int = 0) -> Event:
        """Schedule ``agent_id`` to resume at ``time``; returns the event.

        Only ``time >= 0`` is validated here — the queue has no notion of
        "now".  Rejecting events scheduled before the current simulation
        time is the engine's job (``Engine._schedule``), which knows the
        clock and the offending agent.
        """
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=time, sequence=self._sequence, agent_id=agent_id, token=token)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or ``None``."""
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
