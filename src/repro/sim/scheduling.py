"""Delay models: the adversary controlling asynchrony.

The paper's agents are asynchronous — "every action they perform takes a
finite but otherwise unpredictable amount of time".  A :class:`DelayModel`
is the adversary choosing those times.  The engine asks it for the duration
of every action; correctness (Theorems 1 and 6) must hold for *every*
model, while the ideal-time results (Theorems 4 and 7) are measured under
:class:`UnitDelay` (footnote 1: one unit per link traversal).

Models provided:

* :class:`UnitDelay` — every move takes 1, local actions are instantaneous;
  measures ideal time.
* :class:`RandomDelay` — i.i.d. uniform move durations in
  ``[low, high]``; seeded, reproducible.
* :class:`AdversarialSlowestDelay` — a targeted adversary that slows a
  chosen subset of agents by a large factor (failure injection: stragglers).
* :class:`LayeredDelay` — per-node slowdowns (models congested hosts).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence

__all__ = [
    "DelayModel",
    "UnitDelay",
    "RandomDelay",
    "AdversarialSlowestDelay",
    "LayeredDelay",
]


class DelayModel:
    """Interface: durations for agent actions."""

    def move_delay(self, agent_id: int, src: int, dst: int) -> float:
        """Duration of traversing edge ``(src, dst)`` by ``agent_id``."""
        raise NotImplementedError

    def local_delay(self, agent_id: int, node: int) -> float:
        """Duration of a local action (read/write/compute) at ``node``."""
        return 0.0

    def describe(self) -> str:
        """Short label for reports."""
        return type(self).__name__


class UnitDelay(DelayModel):
    """Ideal time: moves take exactly one unit, local actions are free."""

    def move_delay(self, agent_id: int, src: int, dst: int) -> float:
        return 1.0


class RandomDelay(DelayModel):
    """Uniformly random move durations in ``[low, high]``, seeded.

    Local actions take a small uniform delay in ``[0, local_jitter]`` so
    whiteboard access interleavings are genuinely shuffled between runs
    with different seeds.
    """

    def __init__(
        self,
        seed: int = 0,
        low: float = 0.5,
        high: float = 3.0,
        local_jitter: float = 0.1,
    ) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got {low}, {high}")
        self._rng = random.Random(seed)
        self.low = low
        self.high = high
        self.local_jitter = local_jitter
        self.seed = seed

    def move_delay(self, agent_id: int, src: int, dst: int) -> float:
        return self._rng.uniform(self.low, self.high)

    def local_delay(self, agent_id: int, node: int) -> float:
        return self._rng.uniform(0.0, self.local_jitter) if self.local_jitter else 0.0

    def describe(self) -> str:
        return f"RandomDelay(seed={self.seed}, [{self.low}, {self.high}])"


class AdversarialSlowestDelay(DelayModel):
    """Slows a chosen set of agents by a large factor.

    Models stragglers: the adversary picks victims (e.g. the synchronizer,
    or the agents heading to the deepest leaves) and stretches their every
    action.  Correct strategies must still clean monotonically.
    """

    def __init__(self, slow_agents: Sequence[int], factor: float = 50.0) -> None:
        if factor < 1:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.slow_agents = frozenset(slow_agents)
        self.factor = factor

    def move_delay(self, agent_id: int, src: int, dst: int) -> float:
        return self.factor if agent_id in self.slow_agents else 1.0

    def describe(self) -> str:
        return f"AdversarialSlowest({sorted(self.slow_agents)}, x{self.factor})"


class LayeredDelay(DelayModel):
    """Per-node slowdowns: traversals *into* a slow node take longer.

    ``node_factor`` maps node ids to multipliers (default 1.0); useful for
    modelling congested hosts in the examples.
    """

    def __init__(
        self,
        node_factor: Optional[Dict[int, float]] = None,
        base: float = 1.0,
        fallback: Callable[[int], float] = lambda node: 1.0,
    ) -> None:
        self.node_factor = dict(node_factor or {})
        self.base = base
        self.fallback = fallback

    def move_delay(self, agent_id: int, src: int, dst: int) -> float:
        return self.base * self.node_factor.get(dst, self.fallback(dst))

    def describe(self) -> str:
        return f"LayeredDelay({len(self.node_factor)} slow nodes)"
