"""Quarantine and clean: localized decontamination of a partial infection.

The paper's strategies always sweep the whole network from scratch.  A
deployed cleaning service (Section 1.1's motivation) faces a different
situation mid-incident: a *known* contaminated region ``C`` inside an
otherwise clean network.  The consistent partial states of the node-search
dynamics are exactly the quarantined ones — every clean node adjacent to
``C`` must be guarded, or the flood semantics recontaminate it instantly.

:func:`quarantine_and_clean` therefore:

1. computes the quarantine line — the clean nodes adjacent to ``C`` — and
   stations one guard on each;
2. picks a homebase on that line and runs the generic frontier sweep on
   the subgraph ``C ∪ {homebase}`` (deployments never leave the
   quarantined zone);
3. replays the whole operation against the exact dynamics (starting from
   the partial state via
   :meth:`~repro.sim.contamination.ContaminationMap.from_state`) and
   returns a verified report.

The payoff is locality: cleaning a small incident costs ``O(|C|)``-ish
work instead of a full ``O(n log n)`` sweep — measured by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.schedule import Move
from repro.errors import SimulationError, TopologyError
from repro.sim.contamination import ContaminationMap
from repro.sim.intruder import ReachableSetIntruder
from repro.topology.generic import GraphAdapter

__all__ = ["QuarantineReport", "quarantine_line", "quarantine_and_clean"]


@dataclass(frozen=True)
class QuarantineReport:
    """Outcome of one quarantine-and-clean operation."""

    contaminated: Tuple[int, ...]
    quarantine_guards: Tuple[int, ...]
    homebase: int
    sweep_team: int
    total_agents: int
    moves: int
    monotone: bool
    complete: bool
    intruder_captured: bool
    sweep_moves: List[Move] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whole operation verified end to end."""
        return self.monotone and self.complete and self.intruder_captured


def quarantine_line(graph, contaminated: Set[int]) -> Set[int]:
    """The clean nodes adjacent to the contaminated region.

    These are exactly the nodes that must hold guards for the partial
    state to be stable (otherwise recontamination floods outward).
    """
    line = set()
    for c in contaminated:
        for y in graph.neighbors(c):
            if y not in contaminated:
                line.add(y)
    return line


def quarantine_and_clean(
    graph,
    contaminated: Set[int],
    *,
    homebase: Optional[int] = None,
) -> QuarantineReport:
    """Contain and clean a partial infection; returns a verified report.

    ``contaminated`` must be non-empty and must not cover the whole graph
    (someone has to stand on the quarantine line).  ``homebase`` selects
    which line guard hosts the sweep team (default: the smallest id).
    """
    contaminated = set(contaminated)
    if not contaminated:
        raise SimulationError("nothing to clean")
    if not contaminated < set(graph.nodes()):
        raise SimulationError("the infection covers the whole graph; no quarantine line")

    line = quarantine_line(graph, contaminated)
    if homebase is None:
        homebase = min(line)
    if homebase not in line:
        raise SimulationError(f"homebase {homebase} is not on the quarantine line")

    from repro.search.frontier_sweep import frontier_sweep_schedule  # lazy:
    # repro.search pulls in repro.core/analysis, which import this package

    # ---- sweep schedule on the quarantined subgraph -------------------- #
    zone = sorted(contaminated | {homebase})
    index = {node: i for i, node in enumerate(zone)}
    sub_edges = [
        (index[u], index[v])
        for u, v in graph.edges()
        if u in index and v in index
    ]
    zone_graph = GraphAdapter(len(zone), sub_edges, name="quarantine-zone")
    if not zone_graph.is_connected():
        raise TopologyError(
            "contaminated region not connected to the homebase; "
            "clean each component separately"
        )
    sub_schedule = frontier_sweep_schedule(zone_graph, homebase=index[homebase])
    sweep_moves = [
        Move(
            agent=m.agent,
            src=zone[m.src],
            dst=zone[m.dst],
            time=m.time,
            role=m.role,
            kind=m.kind,
        )
        for m in sub_schedule.moves
    ]

    # ---- replay against the exact partial-state dynamics --------------- #
    guards = {g: 1 for g in line}
    guards[homebase] = guards.get(homebase, 0) + sub_schedule.team_size
    clean = set(graph.nodes()) - contaminated - set(guards)
    cmap = ContaminationMap.from_state(
        graph, guards, clean, homebase=homebase, strict=False
    )
    intruder = ReachableSetIntruder(cmap)
    for move in sweep_moves:
        cmap.move_agent(move.src, move.dst)
        intruder.observe(cmap)

    return QuarantineReport(
        contaminated=tuple(sorted(contaminated)),
        quarantine_guards=tuple(sorted(line)),
        homebase=homebase,
        sweep_team=sub_schedule.team_size,
        total_agents=len(line) + sub_schedule.team_size,
        moves=len(sweep_moves),
        monotone=cmap.is_monotone(),
        complete=cmap.all_clean(),
        intruder_captured=intruder.captured,
        sweep_moves=sweep_moves,
    )
