"""Agent action vocabulary for the discrete-event engine.

An agent *behaviour* is a Python generator: it yields :class:`Action`
objects and receives results back through ``send``.  The engine executes
actions atomically (whiteboard mutual exclusion comes for free) and charges
durations from the active :class:`~repro.sim.scheduling.DelayModel` —
moves always cost time, local actions cost the model's local delay.

The vocabulary mirrors the paper's model exactly:

* :class:`Move` — walk to a neighbouring node (the only way to relocate);
* :class:`ReadWhiteboard` / :class:`WriteWhiteboard` /
  :class:`UpdateWhiteboard` — communicate through the local whiteboard;
* :class:`See` — inspect the states of the neighbours; only legal when the
  engine is created with ``visibility=True`` (the Section 4 model);
* :class:`WaitUntil` — block until a predicate over the local view holds
  (how "the agents wait on x" is expressed);
* :class:`CloneSelf` — create a copy of this agent here (Section 5 model,
  requires ``cloning=True``);
* :class:`Terminate` — stop acting; the agent remains on its node (a
  terminated agent still guards).

Behaviours receive an :class:`AgentContext` with read-only identity and a
live view of position/time, plus an ``O(log n)``-bit-accounted local
memory dict (the paper grants agents ``O(log n)`` bits of state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import AgentError
from repro.sim.whiteboard import estimate_bits

__all__ = [
    "Action",
    "Move",
    "ReadWhiteboard",
    "WriteWhiteboard",
    "UpdateWhiteboard",
    "See",
    "WaitUntil",
    "CloneSelf",
    "Terminate",
    "AgentContext",
    "NodeView",
]


class Action:
    """Marker base class for everything a behaviour may yield."""


@dataclass(frozen=True)
class Move(Action):
    """Traverse the edge to neighbouring node ``dst``."""

    dst: int


@dataclass(frozen=True)
class ReadWhiteboard(Action):
    """Read ``key`` from the local whiteboard (whole board if ``None``)."""

    key: Optional[str] = None


@dataclass(frozen=True)
class WriteWhiteboard(Action):
    """Write ``key = value`` on the local whiteboard."""

    key: str
    value: Any


@dataclass(frozen=True)
class UpdateWhiteboard(Action):
    """Atomic read-modify-write: ``mutator(dict) -> result`` on the board."""

    mutator: Callable[[Dict[str, Any]], Any]


@dataclass(frozen=True)
class See(Action):
    """Return ``{neighbor: NodeState}`` — Section 4 visibility only."""


@dataclass(frozen=True)
class WaitUntil(Action):
    """Block until ``predicate(view)`` is true.

    The predicate receives a :class:`NodeView` of the agent's node; it must
    be side-effect free (it is re-evaluated opportunistically).  For purely
    time-based waits (the synchronous model) set ``wake_at`` so the engine
    schedules a timer even when no other event would advance the clock.
    """

    predicate: Callable[["NodeView"], bool]
    description: str = ""
    wake_at: Optional[float] = None


@dataclass(frozen=True)
class CloneSelf(Action):
    """Create a copy of this agent on the current node (Section 5 model).

    ``behavior`` is a factory called with the clone's
    :class:`AgentContext`; the action returns the clone's agent id.
    """

    behavior: Callable[["AgentContext"], Any]


@dataclass(frozen=True)
class Terminate(Action):
    """Stop acting; the agent keeps guarding its final node."""


@dataclass
class NodeView:
    """Read-only view handed to :class:`WaitUntil` predicates.

    Attributes are populated by the engine; ``neighbor_states`` is a
    callable raising unless the engine runs in the visibility model, and
    ``time`` raises unless the engine exposes a global clock (synchronous
    model) — so a predicate cannot use more power than its model grants.
    """

    node: int
    _wb_read: Optional[Callable[[Optional[str]], Any]] = field(repr=False, default=None)
    _see: Optional[Callable[[], Dict[int, Any]]] = field(repr=False, default=None)
    _clock: Optional[Callable[[], float]] = field(repr=False, default=None)

    def wb(self, key: Optional[str] = None) -> Any:
        """Read the local whiteboard."""
        if self._wb_read is None:
            raise AgentError("this view has no whiteboard attached")
        return self._wb_read(key)

    def neighbor_states(self) -> Dict[int, Any]:
        """Neighbour states — only in the visibility model."""
        if self._see is None:
            raise AgentError("neighbor states are not visible in this model")
        return self._see()

    @property
    def time(self) -> float:
        """Global time — only in the synchronous model."""
        if self._clock is None:
            raise AgentError("no global clock in this model")
        return self._clock()


class AgentContext:
    """Identity and local memory of one agent.

    The ``memory`` dict is the agent's ``O(log n)``-bit local storage; its
    peak estimated size is recorded for the memory-bound tests
    (:attr:`peak_memory_bits`).
    """

    def __init__(self, agent_id: int, start_node: int, dimension: int) -> None:
        self.agent_id = agent_id
        self.node = start_node  # kept current by the engine
        self.dimension = dimension
        self.memory: Dict[str, Any] = {}
        self.peak_memory_bits = 0

    def remember(self, key: str, value: Any) -> None:
        """Store a value in local memory (bit-accounted)."""
        self.memory[key] = value
        bits = sum(estimate_bits(k) + estimate_bits(v) for k, v in self.memory.items())
        if bits > self.peak_memory_bits:
            self.peak_memory_bits = bits

    def recall(self, key: str, default: Any = None) -> Any:
        """Read a value from local memory."""
        return self.memory.get(key, default)

    def __repr__(self) -> str:
        return f"AgentContext(id={self.agent_id}, node={self.node})"
