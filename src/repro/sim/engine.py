"""The asynchronous discrete-event executor for agent protocols.

The engine is the substrate standing in for the paper's real network: it
hosts a team of agent behaviours (generators yielding
:mod:`~repro.sim.agent` actions), charges every action a duration chosen by
the adversary (:class:`~repro.sim.scheduling.DelayModel`), serializes
whiteboard access (fair mutual exclusion via FIFO event ordering), evolves
the exact contamination dynamics on every move, and co-simulates the
omniscient intruder.

Capability flags configure which model of the paper is in force:

* default — the Section 3 whiteboard model;
* ``visibility=True`` — Section 4 ("an agent can see whether its
  neighbouring nodes are clean or guarded or contaminated");
* ``cloning=True`` — the Section 5 cloning observation;
* ``global_clock=True`` — the Section 5 synchronous observation (agents
  may consult the time; pair with :class:`~repro.sim.scheduling.UnitDelay`).

An action that needs a capability the engine was not given raises
:class:`~repro.errors.AgentError` — protocols cannot quietly use more
power than their model grants.

Instrumentation
---------------
The engine carries an :class:`~repro.obs.bus.EventBus`: subscribers
(metric collectors, invariant probes, JSONL streamers — see
:mod:`repro.obs`) receive typed events for every move, clone, wait/wake,
whiteboard write, recontamination, contiguity break and phase transition.
The contract is *zero overhead when unobserved*: every emission site is
guarded by one ``if self._subscribers:`` truthiness test on the live
subscriber list, so with no subscriber attached the engine never
constructs an event object (``BENCH_obs_overhead.json`` tracks both the
unobserved and the fully-instrumented cost).  Every run also stamps its
:class:`SimResult` with a :mod:`~repro.obs.manifest` record (seed,
topology, capability model, delay model, git revision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import AgentError, SimulationError
from repro.obs.bus import EventBus, Subscriber
from repro.obs.events import (
    CloneEvent,
    ContiguityLostEvent,
    CrashEvent,
    MoveEvent,
    PhaseEvent,
    RecontaminationEvent,
    RunEndEvent,
    RunStartEvent,
    SpawnEvent,
    TerminateEvent,
    WaitEvent,
    WakeEvent,
    WhiteboardEvent,
)
from repro.obs.manifest import build_manifest
from repro.obs.trace import get_active_tracer
from repro.sim.agent import (
    AgentContext,
    CloneSelf,
    Move,
    NodeView,
    ReadWhiteboard,
    See,
    Terminate,
    UpdateWhiteboard,
    WaitUntil,
    WriteWhiteboard,
)
from repro.sim.contamination import ContaminationMap
from repro.sim.events import EventQueue
from repro.sim.intruder import ReachableSetIntruder, WalkerIntruder
from repro.sim.scheduling import DelayModel, UnitDelay
from repro.sim.trace import Trace, TraceEvent
from repro.sim.whiteboard import Whiteboard

__all__ = ["Engine", "SimResult"]

BehaviorFactory = Callable[[AgentContext], Any]


@dataclass
class SimResult:
    """Outcome of one engine run."""

    n: int
    delay_model: str
    trace: Trace
    all_clean: bool
    monotone: bool
    contiguous: bool
    intruder_captured: bool
    deadlocked: bool
    makespan: float
    total_moves: int
    team_size: int
    terminated_agents: int
    blocked_agents: int
    event_count: int
    peak_whiteboard_bits: int
    peak_agent_memory_bits: int
    final_states: Dict[int, Any] = field(default_factory=dict)
    #: Attribution record for this run (see :mod:`repro.obs.manifest`).
    manifest: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Cleaning succeeded with all invariants intact."""
        return (
            self.all_clean
            and self.monotone
            and self.contiguous
            and self.intruder_captured
            and not self.deadlocked
        )

    def summary(self) -> str:
        """One-line verdict."""
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"[{verdict}] n={self.n} delays={self.delay_model}: "
            f"moves={self.total_moves} makespan={self.makespan:.2f} "
            f"team={self.team_size} clean={self.all_clean} "
            f"monotone={self.monotone} contiguous={self.contiguous} "
            f"captured={self.intruder_captured} deadlock={self.deadlocked}"
        )


class _AgentRecord:
    """Engine-internal per-agent state.

    ``token`` is the scheduling generation: every event pushed for this
    agent carries the token current at push time, and the engine drops
    events whose token has been superseded (stale wake-ups must not fire
    once the agent has moved on — literally).
    """

    __slots__ = ("ctx", "generator", "status", "pending", "wait", "token")

    def __init__(self, ctx: AgentContext, generator) -> None:
        self.ctx = ctx
        self.generator = generator
        self.status = "ready"  # ready | inflight | blocked | terminated
        self.pending: Optional[Callable[[float], Any]] = None
        self.wait: Optional[WaitUntil] = None
        self.token = 0


class Engine:
    """Discrete-event executor for agent protocols on one topology.

    Parameters
    ----------
    topology:
        Hypercube or GraphAdapter to run on.
    behaviors:
        One behaviour factory per initial agent; every agent starts at
        ``homebase`` (the paper's model).
    delay:
        The asynchrony adversary; default ideal time.
    visibility, cloning, global_clock:
        Capability flags (see module docstring).
    whiteboard_capacity_bits:
        Optional per-node whiteboard ceiling (A2 memory bench).
    intruder:
        ``"reachable"`` (default, proves capture), ``"walker"`` (a concrete
        adversarial walker), ``"walkers"`` (``intruder_count`` independent
        walkers) or ``None``.
    check_contiguity:
        Verify the decontaminated region stays connected after every move.
        The map maintains contiguity incrementally (amortized O(1) per
        move; a bitset BFS only on the rare non-extending event), so this
        stays on even for large runs.
    max_events:
        Hard safety limit on processed events.
    fault_plan:
        Crash-stop fault injection: ``{agent_id: action_budget}`` — the
        agent silently stops acting after that many actions (its body
        keeps guarding its node, per the model's no-removal rule).  Used
        by the robustness tests: the paper's strategies stay *safe*
        (monotone) under crashes but lose liveness (reported deadlock).
    subscribers:
        Event-bus subscribers attached before the initial agents spawn
        (so they observe the deployment); see :mod:`repro.obs`.  More can
        be attached later via :meth:`subscribe`.
    trace_maxlen:
        Optional bound on the in-memory :class:`~repro.sim.trace.Trace`
        (ring mode: oldest events are dropped once full).  Use together
        with a streaming subscriber for long runs; ``None`` (default)
        keeps the full log.
    """

    def __init__(
        self,
        topology,
        behaviors: List[BehaviorFactory],
        *,
        homebase: int = 0,
        delay: Optional[DelayModel] = None,
        visibility: bool = False,
        cloning: bool = False,
        global_clock: bool = False,
        whiteboard_capacity_bits: Optional[int] = None,
        intruder: Optional[str] = "reachable",
        intruder_seed: int = 0,
        intruder_count: int = 2,
        check_contiguity: bool = True,
        max_events: int = 2_000_000,
        fault_plan: Optional[Dict[int, int]] = None,
        subscribers: Optional[Iterable[Subscriber]] = None,
        trace_maxlen: Optional[int] = None,
    ) -> None:
        if not behaviors:
            raise SimulationError("need at least one agent behaviour")
        self._topo = topology
        self._homebase = homebase
        self._delay = delay or UnitDelay()
        self._visibility = visibility
        self._cloning = cloning
        self._global_clock = global_clock
        self._wb_capacity = whiteboard_capacity_bits
        self._check_contiguity = check_contiguity
        self._max_events = max_events
        self._fault_plan = dict(fault_plan or {})
        self._actions_taken: Dict[int, int] = {}
        self._intruder_kind = intruder
        self._intruder_seed = intruder_seed

        self._queue = EventQueue()
        self._trace = Trace(maxlen=trace_maxlen)
        self._boards: Dict[int, Whiteboard] = {}
        self._agents: Dict[int, _AgentRecord] = {}
        self._next_agent_id = 0
        self._time = 0.0
        self._events_processed = 0
        self._contiguous_ok = True
        self._was_contiguous = True  # previous per-move verdict (bus edge detect)

        # the bus's subscriber list is aliased so every emission site pays
        # exactly one truthiness test when nobody is listening
        self._bus = EventBus()
        self._subscribers = self._bus.subscribers
        for fn in subscribers or ():
            self._bus.subscribe(fn)

        self._cmap = ContaminationMap(topology, homebase=homebase, strict=False)
        dimension = getattr(topology, "d", 0)
        for factory in behaviors:
            # spawn events for the initial team are deferred to run(), so
            # subscribers see them after the run-start bracket
            self._spawn(factory, homebase, dimension, publish=False)

        if intruder == "reachable":
            self._intruder = ReachableSetIntruder(self._cmap)
        elif intruder == "walker":
            import random

            self._intruder = WalkerIntruder(self._cmap, rng=random.Random(intruder_seed))
        elif intruder == "walkers":
            import random

            from repro.sim.intruder import MultiWalkerIntruder

            self._intruder = MultiWalkerIntruder(
                self._cmap, count=intruder_count, rng=random.Random(intruder_seed)
            )
        elif intruder is None:
            self._intruder = None
        else:
            raise SimulationError(f"unknown intruder kind {intruder!r}")

    # ------------------------------------------------------------------ #
    # setup helpers
    # ------------------------------------------------------------------ #

    def _spawn(
        self,
        factory: BehaviorFactory,
        node: int,
        dimension: int,
        parent: Optional[int] = None,
        publish: bool = True,
    ) -> int:
        agent_id = self._next_agent_id
        self._next_agent_id += 1
        ctx = AgentContext(agent_id, node, dimension)
        self._cmap.place_agent(node)
        generator = factory(ctx)
        record = _AgentRecord(ctx, generator)
        self._agents[agent_id] = record
        self._schedule(record, self._time)
        if publish and self._subscribers:
            self._bus.publish(
                SpawnEvent(time=self._time, agent=agent_id, node=node, parent=parent)
            )
        return agent_id

    def _schedule(self, record: "_AgentRecord", time: float) -> None:
        """Push the next event for an agent, superseding older ones.

        Scheduling into the past is rejected here (the queue itself only
        checks ``time >= 0``): an event before the current time would be
        popped immediately but silently reorder history around every event
        already queued at earlier times.
        """
        if time < self._time:
            raise SimulationError(
                f"agent {record.ctx.agent_id}: event scheduled at {time} "
                f"is before current time {self._time}"
            )
        record.token += 1
        self._queue.push(time, record.ctx.agent_id, record.token)

    def board(self, node: int) -> Whiteboard:
        """The whiteboard of ``node`` (created on first access)."""
        wb = self._boards.get(node)
        if wb is None:
            degree = len(self._topo.neighbors(node))
            wb = Whiteboard(node, degree, self._wb_capacity)
            self._boards[node] = wb
        return wb

    def _view(self, record: _AgentRecord) -> NodeView:
        node = record.ctx.node
        see = (lambda: {y: self._cmap.state(y) for y in self._topo.neighbors(node)}) if self._visibility else None
        clock = (lambda: self._time) if self._global_clock else None
        return NodeView(node=node, _wb_read=self.board(node).read, _see=see, _clock=clock)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self) -> SimResult:
        """Execute until quiescence and return the :class:`SimResult`.

        When a process-wide tracer is active the run is wrapped in an
        ``engine.run`` span (same zero-cost-when-disabled guard as the
        event bus: one global read per run, nothing per event).
        """
        tracer = get_active_tracer()
        if tracer is None:
            return self._run_traced()
        with tracer.span(
            "engine.run",
            n=self._topo.n,
            dimension=getattr(self._topo, "d", 0),
            agents=len(self._agents),
        ) as span:
            result = self._run_traced()
            span.attrs["makespan"] = result.makespan
            span.attrs["moves"] = result.total_moves
            span.attrs["captured"] = result.intruder_captured
            return result

    def _run_traced(self) -> SimResult:
        if self._subscribers:
            self._bus.publish(
                RunStartEvent(
                    time=self._time,
                    n=self._topo.n,
                    dimension=getattr(self._topo, "d", 0),
                    homebase=self._homebase,
                    team_size=len(self._agents),
                    delay_model=self._delay.describe(),
                )
            )
            for agent_id, record in self._agents.items():
                self._bus.publish(
                    SpawnEvent(time=0.0, agent=agent_id, node=record.ctx.node)
                )
        while self._queue:
            if self._events_processed >= self._max_events:
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "livelock or runaway protocol"
                )
            event = self._queue.pop()
            self._events_processed += 1
            self._time = max(self._time, event.time)
            record = self._agents[event.agent_id]
            if event.token != record.token:
                continue  # superseded by a newer scheduling decision
            if record.status == "terminated":
                continue
            if record.status == "blocked":
                # a wake-up: re-check the predicate under mutual exclusion
                if record.wait is not None and not record.wait.predicate(self._view(record)):
                    continue
                record.wait = None
                record.status = "ready"
                self._resume(record, True)
            elif record.pending is not None:
                completion = record.pending
                record.pending = None
                record.status = "ready"
                value = completion(self._time)
                self._resume(record, value)
            else:
                self._resume(record, None)
            self._wake_blocked()
        return self._finish()

    def _resume(self, record: _AgentRecord, value: Any) -> None:
        """Step the behaviour until it blocks, terminates or yields a timed
        action."""
        while True:
            # zero-delay local actions execute inline, so they must count
            # against the event budget or a spinning behaviour never yields
            # control back to the loop's max_events guard
            self._events_processed += 1
            if self._events_processed >= self._max_events:
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "livelock or runaway protocol"
                )
            agent_key = record.ctx.agent_id
            budget = self._fault_plan.get(agent_key)
            if budget is not None:
                taken = self._actions_taken.get(agent_key, 0)
                if taken >= budget:
                    # crash-stop: the agent silently halts, body stays put
                    record.generator.close()
                    record.status = "terminated"
                    self._trace.log(
                        TraceEvent(self._time, "crash", agent_key, record.ctx.node)
                    )
                    if self._subscribers:
                        self._bus.publish(
                            CrashEvent(self._time, agent_key, record.ctx.node)
                        )
                    return
                self._actions_taken[agent_key] = taken + 1
            try:
                action = record.generator.send(value)
            except StopIteration:
                record.status = "terminated"
                self._trace.log(
                    TraceEvent(self._time, "terminate", record.ctx.agent_id, record.ctx.node)
                )
                if self._subscribers:
                    self._bus.publish(
                        TerminateEvent(self._time, record.ctx.agent_id, record.ctx.node)
                    )
                return
            value = None
            agent_id = record.ctx.agent_id
            node = record.ctx.node

            if isinstance(action, Terminate):
                record.generator.close()
                record.status = "terminated"
                self._trace.log(TraceEvent(self._time, "terminate", agent_id, node))
                if self._subscribers:
                    self._bus.publish(TerminateEvent(self._time, agent_id, node))
                return

            if isinstance(action, Move):
                dst = action.dst
                if not self._topo.has_edge(node, dst):
                    raise AgentError(f"agent {agent_id}: ({node}, {dst}) is not an edge")
                duration = self._delay.move_delay(agent_id, node, dst)
                if duration <= 0:
                    raise SimulationError(
                        f"agent {agent_id}: delay model returned non-positive "
                        f"move duration {duration}"
                    )
                record.pending = self._make_move_completion(record, node, dst)
                record.status = "inflight"
                self._schedule(record, self._time + duration)
                return

            if isinstance(action, WaitUntil):
                if action.predicate(self._view(record)):
                    value = True
                    continue
                record.wait = action
                record.status = "blocked"
                if action.wake_at is not None and action.wake_at > self._time:
                    self._schedule(record, action.wake_at)
                self._trace.log(
                    TraceEvent(
                        self._time, "wait", agent_id, node,
                        {"why": action.description},
                    )
                )
                if self._subscribers:
                    self._bus.publish(
                        WaitEvent(self._time, agent_id, node, why=action.description)
                    )
                return

            # local actions: execute now or after the model's local delay
            executor = self._local_executor(record, action)
            local = self._delay.local_delay(agent_id, node)
            if local < 0:
                raise SimulationError(
                    f"agent {agent_id}: delay model returned negative "
                    f"local duration {local}"
                )
            if local > 0:
                record.pending = executor
                record.status = "inflight"
                self._schedule(record, self._time + local)
                return
            value = executor(self._time)

    def _make_move_completion(self, record: _AgentRecord, src: int, dst: int):
        def complete(now: float) -> None:
            observed = bool(self._subscribers)
            recon_before = len(self._cmap.recontamination_events) if observed else 0
            self._cmap.move_agent(src, dst)
            record.ctx.node = dst
            self._trace.log(
                TraceEvent(now, "move", record.ctx.agent_id, dst, {"src": src})
            )
            if self._intruder is not None:
                self._intruder.observe(self._cmap)
            contiguous: Optional[bool] = None
            if self._check_contiguity:
                contiguous = self._cmap.is_contiguous()
                if not contiguous:
                    self._contiguous_ok = False
            if observed:
                self._publish_move(
                    record.ctx.agent_id, src, dst, now, recon_before, contiguous
                )
            return None

        return complete

    def _publish_move(
        self,
        agent_id: int,
        src: int,
        dst: int,
        now: float,
        recon_before: int,
        contiguous: Optional[bool],
    ) -> None:
        """Emit the move event cluster (move, recontaminations, contiguity).

        Only called with subscribers attached; the masks ride along as
        plain int references, and the frontier is one spread-mask pass.
        """
        cmap = self._cmap
        recons = tuple(cmap.recontamination_events[recon_before:])
        self._bus.publish(
            MoveEvent(
                time=now,
                agent=agent_id,
                node=dst,
                src=src,
                src_vacated=cmap.guards(src) == 0,
                recontaminations=recons,
                contiguous=contiguous,
                clean_mask=cmap.clean_mask,
                guard_mask=cmap.guard_mask,
                frontier_mask=cmap.frontier_mask(),
            )
        )
        for node, cause in recons:
            self._bus.publish(
                RecontaminationEvent(
                    time=now, agent=agent_id, node=node, cause=cause, src=src, dst=dst
                )
            )
        if contiguous is not None:
            if self._was_contiguous and not contiguous:
                self._bus.publish(
                    ContiguityLostEvent(
                        time=now, agent=agent_id, node=dst, src=src, dst=dst
                    )
                )
            self._was_contiguous = contiguous

    def _local_executor(self, record: _AgentRecord, action) -> Callable[[float], Any]:
        agent_id = record.ctx.agent_id

        if isinstance(action, ReadWhiteboard):
            return lambda now: self.board(record.ctx.node).read(action.key)

        if isinstance(action, WriteWhiteboard):
            def write(now: float) -> None:
                self.board(record.ctx.node).write(action.key, action.value)
                if self._subscribers:
                    self._bus.publish(
                        WhiteboardEvent(now, agent_id, record.ctx.node, key=action.key)
                    )
                return None

            return write

        if isinstance(action, UpdateWhiteboard):
            def update(now: float) -> Any:
                result = self.board(record.ctx.node).update(action.mutator)
                if self._subscribers:
                    self._bus.publish(
                        WhiteboardEvent(now, agent_id, record.ctx.node, key=None)
                    )
                return result

            return update

        if isinstance(action, See):
            if not self._visibility:
                raise AgentError(f"agent {agent_id} used See() without the visibility model")
            return lambda now: {
                y: self._cmap.state(y) for y in self._topo.neighbors(record.ctx.node)
            }

        if isinstance(action, CloneSelf):
            if not self._cloning:
                raise AgentError(f"agent {agent_id} cloned without the cloning model")

            def clone(now: float) -> int:
                new_id = self._spawn(
                    action.behavior, record.ctx.node, record.ctx.dimension,
                    parent=agent_id,
                )
                self._trace.log(
                    TraceEvent(now, "clone", agent_id, record.ctx.node, {"child": new_id})
                )
                if self._subscribers:
                    self._bus.publish(
                        CloneEvent(now, agent_id, record.ctx.node, child=new_id)
                    )
                return new_id

            return clone

        raise AgentError(f"agent {agent_id} yielded unknown action {action!r}")

    def _wake_blocked(self) -> None:
        """Re-check every blocked agent's predicate; schedule true ones.

        Predicates are pure, so evaluating them here and again at wake-up
        (under mutual exclusion) is safe; double-waking is prevented by the
        status transition in :meth:`run`.
        """
        for record in self._agents.values():
            if record.status == "blocked" and record.wait is not None:
                if record.wait.predicate(self._view(record)):
                    self._trace.log(
                        TraceEvent(
                            self._time, "wake", record.ctx.agent_id, record.ctx.node
                        )
                    )
                    if self._subscribers:
                        self._bus.publish(
                            WakeEvent(self._time, record.ctx.agent_id, record.ctx.node)
                        )
                    self._schedule(record, self._time)

    # ------------------------------------------------------------------ #

    def _finish(self) -> SimResult:
        blocked = sum(1 for r in self._agents.values() if r.status == "blocked")
        terminated = sum(1 for r in self._agents.values() if r.status == "terminated")
        all_clean = self._cmap.all_clean()
        deadlocked = blocked > 0 and not all_clean
        if self._intruder is not None:
            captured = self._intruder.captured
        else:
            captured = all_clean
        monotone = self._cmap.is_monotone()
        total_moves = self._trace.move_count()
        if self._subscribers:
            self._bus.publish(
                RunEndEvent(
                    time=self._time,
                    all_clean=all_clean,
                    monotone=monotone,
                    contiguous=self._contiguous_ok,
                    total_moves=total_moves,
                    events_processed=self._events_processed,
                    clean_mask=self._cmap.clean_mask,
                    guard_mask=self._cmap.guard_mask,
                )
            )
        manifest = build_manifest(
            seed=self._intruder_seed,
            topology=self._topo,
            model={
                "visibility": self._visibility,
                "cloning": self._cloning,
                "global_clock": self._global_clock,
            },
            delay=self._delay.describe(),
            metrics={
                "total_moves": total_moves,
                "makespan": self._trace.makespan(),
                "event_count": self._events_processed,
                "team_size": self._next_agent_id,
                "all_clean": all_clean,
                "monotone": monotone,
                "contiguous": self._contiguous_ok,
            },
            extra={
                "homebase": self._homebase,
                "intruder": self._intruder_kind,
                "check_contiguity": self._check_contiguity,
            },
        )
        return SimResult(
            n=self._topo.n,
            delay_model=self._delay.describe(),
            trace=self._trace,
            all_clean=all_clean,
            monotone=monotone,
            contiguous=self._contiguous_ok,
            intruder_captured=captured,
            deadlocked=deadlocked,
            makespan=self._trace.makespan(),
            total_moves=total_moves,
            team_size=self._next_agent_id,
            terminated_agents=terminated,
            blocked_agents=blocked,
            event_count=self._events_processed,
            peak_whiteboard_bits=max(
                (wb.peak_bits for wb in self._boards.values()), default=0
            ),
            peak_agent_memory_bits=max(
                (r.ctx.peak_memory_bits for r in self._agents.values()), default=0
            ),
            final_states=self._cmap.snapshot(),
            manifest=manifest,
        )

    # instrumentation ---------------------------------------------------- #

    @property
    def bus(self) -> EventBus:
        """The engine's event bus (see :mod:`repro.obs`)."""
        return self._bus

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Attach an event subscriber; returns ``fn`` (for unsubscribe)."""
        return self._bus.subscribe(fn)

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach a previously attached subscriber."""
        self._bus.unsubscribe(fn)

    def mark_phase(self, name: str) -> None:
        """Publish a named :class:`~repro.obs.events.PhaseEvent`.

        Protocol drivers and tests call this to delimit strategy phases
        (e.g. one hypercube level of the sweep); with no subscriber
        attached it is a no-op.
        """
        if self._subscribers:
            self._bus.publish(PhaseEvent(time=self._time, name=name))

    # exposed for tests and protocols ----------------------------------- #

    @property
    def contamination(self) -> ContaminationMap:
        """The live contamination map (read-only use, please)."""
        return self._cmap

    @property
    def time(self) -> float:
        """Current simulation time."""
        return self._time

    @property
    def intruder(self):
        """The co-simulated intruder object (or ``None``)."""
        return self._intruder
