"""Typed engine events — the vocabulary of the instrumentation layer.

Every event the engine can publish is a small frozen dataclass with a
stable ``kind`` string.  The kinds deliberately coincide with the
:class:`~repro.sim.trace.TraceEvent` kinds where both exist (``"move"``,
``"clone"``, ``"wait"``, ``"wake"``, ``"terminate"``, ``"crash"``,
``"write"``), and every event exposes the same record shape the trace
uses — ``time`` / ``kind`` / ``agent`` / ``node`` / ``data`` — so one
consumer (e.g. :func:`repro.sim.telemetry.analyze_trace`) can read either
a post-hoc trace or a live event stream without translation.

State-carrying events (:class:`MoveEvent`, :class:`RunEndEvent`) embed the
engine's node-set *bitmasks* (bit ``i`` set iff node ``i`` is in the set).
Masks are plain ``int`` references, so attaching them costs O(1); they are
what lets metric collectors and invariant probes live entirely in this
package without importing — or holding — any simulation object.

This module must not import anything from ``repro.sim`` (lint rule
``RPR200``): the engine imports *us*, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Tuple

__all__ = [
    "EngineEvent",
    "RunStartEvent",
    "RunEndEvent",
    "SpawnEvent",
    "MoveEvent",
    "CloneEvent",
    "WaitEvent",
    "WakeEvent",
    "WhiteboardEvent",
    "TerminateEvent",
    "CrashEvent",
    "RecontaminationEvent",
    "ContiguityLostEvent",
    "PhaseEvent",
    "EVENT_KINDS",
]

#: Sentinel agent/node id for events not attributable to one agent.
_SYSTEM = -1


@dataclass(frozen=True)
class EngineEvent:
    """Base of every published event.

    ``agent`` and ``node`` are ``-1`` for system-level events (run start /
    end, phase marks) that no single agent caused.
    """

    time: float
    agent: int = _SYSTEM
    node: int = _SYSTEM

    #: Stable kind string; subclasses override.
    kind: ClassVar[str] = "event"

    @property
    def data(self) -> Dict[str, Any]:
        """Trace-compatible payload dict (subclasses add their extras)."""
        return {}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable record (the JSONL stream line)."""
        out: Dict[str, Any] = {
            "time": self.time,
            "kind": self.kind,
            "agent": self.agent,
            "node": self.node,
        }
        out.update(self.data)
        return out


@dataclass(frozen=True)
class RunStartEvent(EngineEvent):
    """Published once when :meth:`Engine.run` begins."""

    kind: ClassVar[str] = "run-start"
    n: int = 0
    dimension: int = 0
    homebase: int = 0
    team_size: int = 0
    delay_model: str = ""

    @property
    def data(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "dimension": self.dimension,
            "homebase": self.homebase,
            "team_size": self.team_size,
            "delay_model": self.delay_model,
        }


@dataclass(frozen=True)
class RunEndEvent(EngineEvent):
    """Published once when the engine reaches quiescence."""

    kind: ClassVar[str] = "run-end"
    all_clean: bool = False
    monotone: bool = True
    contiguous: bool = True
    total_moves: int = 0
    events_processed: int = 0
    clean_mask: int = 0
    guard_mask: int = 0

    @property
    def data(self) -> Dict[str, Any]:
        return {
            "all_clean": self.all_clean,
            "monotone": self.monotone,
            "contiguous": self.contiguous,
            "total_moves": self.total_moves,
            "events_processed": self.events_processed,
        }


@dataclass(frozen=True)
class SpawnEvent(EngineEvent):
    """An agent entered the system (initial deployment or clone birth)."""

    kind: ClassVar[str] = "spawn"
    parent: Optional[int] = None

    @property
    def data(self) -> Dict[str, Any]:
        return {"parent": self.parent}


@dataclass(frozen=True)
class MoveEvent(EngineEvent):
    """An agent completed an edge traversal; ``node`` is the destination.

    The post-move state rides along: ``src_vacated`` says the source lost
    its last guard, ``recontaminations`` lists any ``(node, cause)`` pairs
    the departure triggered, ``contiguous`` is the post-move contiguity
    verdict (``None`` when the engine runs with ``check_contiguity=False``)
    and the three masks are the live node sets *after* the move.
    ``frontier_mask`` is the decontaminated nodes that still touch
    contamination — the paper's moving boundary.
    """

    kind: ClassVar[str] = "move"
    src: int = 0
    src_vacated: bool = False
    recontaminations: Tuple[Tuple[int, int], ...] = field(default=())
    contiguous: Optional[bool] = None
    clean_mask: int = 0
    guard_mask: int = 0
    frontier_mask: int = 0

    @property
    def data(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"src": self.src}
        if self.recontaminations:
            out["recontaminations"] = list(map(list, self.recontaminations))
        return out


@dataclass(frozen=True)
class CloneEvent(EngineEvent):
    """An agent cloned itself; ``child`` is the new agent's id."""

    kind: ClassVar[str] = "clone"
    child: int = 0

    @property
    def data(self) -> Dict[str, Any]:
        return {"child": self.child}


@dataclass(frozen=True)
class WaitEvent(EngineEvent):
    """An agent blocked on a :class:`~repro.sim.agent.WaitUntil` predicate."""

    kind: ClassVar[str] = "wait"
    why: str = ""

    @property
    def data(self) -> Dict[str, Any]:
        return {"why": self.why}


@dataclass(frozen=True)
class WakeEvent(EngineEvent):
    """A blocked agent's predicate turned true (wake-up scheduled)."""

    kind: ClassVar[str] = "wake"


@dataclass(frozen=True)
class WhiteboardEvent(EngineEvent):
    """A whiteboard mutation (``WriteWhiteboard`` or ``UpdateWhiteboard``).

    ``key`` is ``None`` for opaque read-modify-write mutators.
    """

    kind: ClassVar[str] = "write"
    key: Optional[str] = None

    @property
    def data(self) -> Dict[str, Any]:
        return {"key": self.key}


@dataclass(frozen=True)
class TerminateEvent(EngineEvent):
    """An agent stopped acting (it keeps guarding its final node)."""

    kind: ClassVar[str] = "terminate"


@dataclass(frozen=True)
class CrashEvent(EngineEvent):
    """Fault injection stopped an agent (crash-stop; body stays put)."""

    kind: ClassVar[str] = "crash"


@dataclass(frozen=True)
class RecontaminationEvent(EngineEvent):
    """A clean node was recontaminated — the monotonicity invariant broke.

    ``node`` is the recontaminated node, ``cause`` the contaminated
    neighbour it caught the intruder's reach from, and ``agent`` / ``src``
    / ``dst`` identify the move whose departure opened the breach.
    """

    kind: ClassVar[str] = "recontaminated"
    cause: int = 0
    src: int = 0
    dst: int = 0

    @property
    def data(self) -> Dict[str, Any]:
        return {"cause": self.cause, "src": self.src, "dst": self.dst}


@dataclass(frozen=True)
class ContiguityLostEvent(EngineEvent):
    """The decontaminated region disconnected — contiguity broke.

    ``agent`` / ``src`` / ``dst`` identify the move after which the region
    first failed the connectivity check.
    """

    kind: ClassVar[str] = "contiguity-lost"
    src: int = 0
    dst: int = 0

    @property
    def data(self) -> Dict[str, Any]:
        return {"src": self.src, "dst": self.dst}


@dataclass(frozen=True)
class PhaseEvent(EngineEvent):
    """A named phase transition (:meth:`Engine.mark_phase`).

    Protocol drivers and tests use this to delimit strategy phases (e.g.
    level sweeps); the metrics collector keys per-phase counters off it.
    """

    kind: ClassVar[str] = "phase"
    name: str = ""

    @property
    def data(self) -> Dict[str, Any]:
        return {"name": self.name}


#: Every published kind, for consumers that dispatch on strings.
EVENT_KINDS: Tuple[str, ...] = (
    RunStartEvent.kind,
    RunEndEvent.kind,
    SpawnEvent.kind,
    MoveEvent.kind,
    CloneEvent.kind,
    WaitEvent.kind,
    WakeEvent.kind,
    WhiteboardEvent.kind,
    TerminateEvent.kind,
    CrashEvent.kind,
    RecontaminationEvent.kind,
    ContiguityLostEvent.kind,
    PhaseEvent.kind,
)
