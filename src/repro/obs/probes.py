"""Invariant probes: first-failure diagnostics at the violating event.

The paper's definition of a successful strategy is three invariants —
*monotone* (no recontamination), *contiguous* (the decontaminated region
stays connected) and the guard-coverage condition behind both (no merely
clean node may touch contamination).  Before this layer existed a
violation surfaced only as a terse end-state verdict ("final state is
contaminated"); a probe is a bus subscriber that checks its invariant *at
the event that breaks it* and produces a :class:`ProbeViolation` naming
the agent, node, event kind and simulation time::

    monotonicity: agent 3 vacated node 5 at t=12.25 -> node 5
    recontaminated from contaminated neighbour 13 (during move 5->7)

Probes run in one of two modes:

* ``strict`` (default) — raise :class:`InvariantViolation` immediately,
  aborting the run at the first bad event (the exception carries the
  structured diagnostic);
* ``lenient`` — record every violation in :attr:`InvariantProbe.violations`
  and let the run continue (post-mortem over a full failing run).

Probes read only event payloads (masks and scalars) — no simulation
object, no ``repro.sim`` import (lint rule ``RPR200``).  Because the
engine's own dynamics repair guard-coverage breaches by immediately
recontaminating the exposed node, :class:`GuardCoverageProbe` doubles as a
cross-check on the state layer itself: it fires only if the dynamics and
the invariant disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.obs.events import EngineEvent, MoveEvent

__all__ = [
    "ProbeViolation",
    "InvariantViolation",
    "InvariantProbe",
    "MonotonicityProbe",
    "ContiguityProbe",
    "GuardCoverageProbe",
    "standard_probes",
]


@dataclass(frozen=True)
class ProbeViolation:
    """One structured invariant diagnostic."""

    probe: str  # "monotonicity" | "contiguity" | "guard-coverage"
    agent: int
    node: int
    event_kind: str
    time: float
    message: str

    def describe(self) -> str:
        """The one-line diagnostic (probe prefix + message)."""
        return f"{self.probe}: {self.message}"


class InvariantViolation(ReproError):
    """Raised by a strict probe at the violating event."""

    def __init__(self, violation: ProbeViolation) -> None:
        super().__init__(violation.describe())
        self.violation = violation


class InvariantProbe:
    """Base class: mode handling and the violation log."""

    #: Probe name used in diagnostics; subclasses override.
    name = "invariant"

    def __init__(self, mode: str = "strict") -> None:
        if mode not in ("strict", "lenient"):
            raise ValueError(f"probe mode must be 'strict' or 'lenient', got {mode!r}")
        self.mode = mode
        #: Violations recorded so far (lenient mode accumulates here;
        #: strict mode records the first, then raises).
        self.violations: List[ProbeViolation] = []

    @property
    def ok(self) -> bool:
        """Whether the invariant has held so far."""
        return not self.violations

    def _report(self, event: EngineEvent, message: str) -> None:
        violation = ProbeViolation(
            probe=self.name,
            agent=event.agent,
            node=event.node,
            event_kind=event.kind,
            time=event.time,
            message=message,
        )
        self.violations.append(violation)
        if self.mode == "strict":
            raise InvariantViolation(violation)

    def __call__(self, event: EngineEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class MonotonicityProbe(InvariantProbe):
    """No node may ever be recontaminated (the paper's monotone condition).

    Fires on the move whose departure triggered the recontamination,
    naming the vacating agent, the vacated node and every node the breach
    flooded.
    """

    name = "monotonicity"

    def __call__(self, event: EngineEvent) -> None:
        if event.kind != "move":
            return
        assert isinstance(event, MoveEvent)
        if not event.recontaminations:
            return
        first_node, first_cause = event.recontaminations[0]
        flooded = ", ".join(str(n) for n, _ in event.recontaminations)
        self._report(
            event,
            f"agent {event.agent} vacated node {event.src} at t={event.time:g} "
            f"-> node {first_node} recontaminated from contaminated neighbour "
            f"{first_cause} (during move {event.src}->{event.node}; "
            f"flooded: {flooded})",
        )


class ContiguityProbe(InvariantProbe):
    """The decontaminated region must stay connected after every move.

    Uses the engine's post-move verdict carried on the event; a move made
    with ``check_contiguity=False`` carries no verdict and is skipped.
    Only the *transition* into disconnection fires (one diagnostic per
    breach, not one per subsequent move).
    """

    name = "contiguity"

    def __init__(self, mode: str = "strict") -> None:
        super().__init__(mode)
        self._was_contiguous = True

    def __call__(self, event: EngineEvent) -> None:
        if event.kind != "move":
            return
        assert isinstance(event, MoveEvent)
        if event.contiguous is None:
            return
        if event.contiguous:
            self._was_contiguous = True
            return
        if not self._was_contiguous:
            return  # still broken; already diagnosed at the transition
        self._was_contiguous = False
        self._report(
            event,
            f"decontaminated region disconnected after agent {event.agent} "
            f"moved {event.src}->{event.node} at t={event.time:g}",
        )


class GuardCoverageProbe(InvariantProbe):
    """No merely clean (unguarded) node may touch contamination.

    This is the pointwise condition that implies monotonicity under the
    paper's dynamics; the engine's state layer enforces it by immediately
    recontaminating any exposed node, so this probe firing means the
    dynamics themselves mis-evolved a mask — a state-layer cross-check.
    """

    name = "guard-coverage"

    def __call__(self, event: EngineEvent) -> None:
        if event.kind != "move":
            return
        assert isinstance(event, MoveEvent)
        exposed = event.frontier_mask & event.clean_mask & ~event.guard_mask
        if not exposed:
            return
        node = (exposed & -exposed).bit_length() - 1
        self._report(
            event,
            f"clean unguarded node {node} touches contamination after agent "
            f"{event.agent} moved {event.src}->{event.node} at t={event.time:g} "
            f"(exposed mask {exposed:#x})",
        )


def standard_probes(mode: str = "strict") -> List[InvariantProbe]:
    """The three built-in probes, ready to pass as engine subscribers."""
    return [MonotonicityProbe(mode), ContiguityProbe(mode), GuardCoverageProbe(mode)]
