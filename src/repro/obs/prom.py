"""Prometheus text exposition of a metrics snapshot — stdlib only.

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
0.0.4), the lingua franca every scrape pipeline accepts:

* counters become ``<prefix><name>_total`` with ``# TYPE ... counter``;
* gauges become ``<prefix><name>`` with ``# TYPE ... gauge``;
* bracketed registry families — ``moves_per_level[3]``,
  ``moves_per_phase[sweep]`` — collapse into one metric family with a
  ``key`` label, which is exactly what the bracket convention encodes;
* time series export their last value as a gauge plus a
  ``<name>_samples`` gauge carrying the retained sample count (exposition
  is a point-in-time scrape; the full series lives in the RunLog).

Names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric charset and
label values are escaped per the spec.  This is a *renderer* of plain
snapshot dicts: it imports nothing above the metrics layer and can format
snapshots from live registries, RunLog ``metrics`` records, or checkpoint
telemetry alike.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["prometheus_name", "to_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_BRACKET = re.compile(r"^(?P<family>[^\[\]]+)\[(?P<key>[^\[\]]*)\]$")


def prometheus_name(name: str) -> str:
    """Sanitize ``name`` into the Prometheus metric-name charset."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: Any) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _split_family(name: str) -> Tuple[str, Optional[str]]:
    """``moves_per_level[3]`` -> (``moves_per_level``, ``3``)."""
    match = _BRACKET.match(name)
    if match is None:
        return name, None
    return match.group("family"), match.group("key")


def _emit_family(
    lines: List[str],
    family: str,
    kind: str,
    samples: List[Tuple[Optional[str], Any]],
    help_text: str,
) -> None:
    lines.append(f"# HELP {family} {help_text}")
    lines.append(f"# TYPE {family} {kind}")
    for key, value in samples:
        label = "" if key is None else f'{{key="{_escape_label(key)}"}}'
        lines.append(f"{family}{label} {_format_value(value)}")


def to_prometheus(snapshot: Mapping[str, Any], *, prefix: str = "repro_") -> str:
    """Render ``snapshot`` (a registry snapshot dict) as exposition text."""
    families: Dict[str, Tuple[str, str, List[Tuple[Optional[str], Any]]]] = {}

    def add(raw_name: str, suffix: str, kind: str, value: Any, help_text: str) -> None:
        base, key = _split_family(raw_name)
        family = prometheus_name(f"{prefix}{base}{suffix}")
        entry = families.get(family)
        if entry is None:
            entry = families[family] = (kind, help_text, [])
        entry[2].append((key, value))

    for name, value in sorted(dict(snapshot.get("counters") or {}).items()):
        suffix = "" if name.split("[", 1)[0].endswith("_total") else "_total"
        add(name, suffix, "counter", value, f"repro counter {name}")
    for name, value in sorted(dict(snapshot.get("gauges") or {}).items()):
        add(name, "", "gauge", value, f"repro gauge {name}")
    for name, samples in sorted(dict(snapshot.get("series") or {}).items()):
        last = samples[-1][1] if samples else 0
        add(name, "_last", "gauge", last, f"repro series {name} (last sample)")
        add(name, "_samples", "gauge", len(samples), f"repro series {name} retained samples")

    lines: List[str] = []
    for family in sorted(families):
        kind, help_text, samples = families[family]
        _emit_family(lines, family, kind, samples, help_text)
    return "\n".join(lines) + ("\n" if lines else "")
