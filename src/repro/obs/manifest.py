"""Run manifests: attributable records for runs and benchmarks (schema v1).

A manifest answers "what exactly produced this number?" for every
``BENCH_*.json`` entry, benchmark report and engine run: the seed, the
topology, the protocol's capability model, the delay model, the git
revision of the code and (optionally) a metric snapshot.  Two artifacts
with the same manifest fields are comparable; two with different ones are
not — which is the whole point of stamping them.

Schema ``repro-manifest/v1`` (all keys always present; ``None`` when
unknown)::

    {
      "schema":   "repro-manifest/v1",
      "git":      "<git describe --always --dirty>" | null,
      "python":   "3.12.1",
      "seed":     0 | null,
      "topology": {"type": "Hypercube", "n": 256, "dimension": 8} | null,
      "model":    {"visibility": true, "cloning": false,
                   "global_clock": false} | null,
      "delay":    "unit" | null,
      "metrics":  {...snapshot...} | null,
      "extra":    {...caller keys...}        # only when provided
    }

``git`` is resolved once per process (subprocess call, cached) and is
``None`` outside a git checkout — manifests never fail to build.
"""

from __future__ import annotations

import json
import platform
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["MANIFEST_SCHEMA", "git_revision", "describe_topology", "build_manifest", "write_manifest"]

#: The schema identifier stamped into every manifest.
MANIFEST_SCHEMA = "repro-manifest/v1"


@lru_cache(maxsize=1)
def git_revision() -> Optional[str]:
    """``git describe --always --dirty`` of this checkout, or ``None``.

    Cached for the process lifetime: manifests are built per run and per
    benchmark row, and the revision cannot change under a running process.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else None


def describe_topology(topology: Any) -> Optional[Dict[str, Any]]:
    """A JSON-able description of a duck-typed topology object.

    Records the class name, node count and — when present — the hypercube
    dimension ``d``.  Accepts ``None`` (returns ``None``).
    """
    if topology is None:
        return None
    out: Dict[str, Any] = {
        "type": type(topology).__name__,
        "n": getattr(topology, "n", None),
    }
    dimension = getattr(topology, "d", None)
    if dimension is not None:
        out["dimension"] = dimension
    return out


def build_manifest(
    *,
    seed: Optional[int] = None,
    topology: Any = None,
    model: Optional[Dict[str, bool]] = None,
    delay: Optional[str] = None,
    metrics: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-v1 manifest dict.

    Parameters mirror the schema keys; ``topology`` may be the live
    topology object (described via :func:`describe_topology`) or an
    already-built dict.  ``extra`` is appended verbatim for caller-specific
    keys (benchmark names, artifact ids).
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "git": git_revision(),
        "python": platform.python_version(),
        "seed": seed,
        "topology": topology if isinstance(topology, dict) else describe_topology(topology),
        "model": dict(model) if model is not None else None,
        "delay": delay,
        "metrics": metrics,
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> Path:
    """Write ``manifest`` as pretty JSON to ``path``; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target
