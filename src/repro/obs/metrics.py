"""Metrics registry: counters, gauges and time series — stdlib only.

:class:`MetricsRegistry` is a named bag of three instrument kinds:

* :class:`Counter` — monotonically increasing totals (moves, clones,
  recontaminations);
* :class:`Gauge` — last-value instruments (clean nodes, blocked agents);
* :class:`TimeSeries` — ``(time, value)`` samplers with bounded memory
  (stride-doubling decimation: when full, every other sample is dropped
  and the sampling stride doubles, so a series never exceeds its cap yet
  always spans the whole run).

:class:`SimMetricsCollector` is the built-in event-bus subscriber that
fills a registry with the paper's quantities — live clean / contaminated /
guarded counts, frontier size, per-agent busy/blocked state, moves per
hypercube level, recontamination events — entirely from event payloads
(masks and scalars); it holds no reference to any simulation object, so
this module stays import-clean of ``repro.sim`` (lint rule ``RPR200``).

Snapshots are plain dicts (:meth:`MetricsRegistry.snapshot`), exportable
as JSON and renderable as a sparkline report via :mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import EngineEvent, MoveEvent

__all__ = ["Counter", "Gauge", "TimeSeries", "MetricsRegistry", "SimMetricsCollector"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0; counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the current value."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` (default 1) from the current value."""
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class TimeSeries:
    """Bounded ``(time, value)`` sampler with stride-doubling decimation.

    Keeps at most ``maxlen`` samples.  When the cap is hit, every other
    retained sample is dropped and the acceptance stride doubles: the
    series always covers the full run at progressively coarser resolution
    instead of silently truncating the tail — O(maxlen) memory for runs of
    any length.
    """

    __slots__ = ("name", "maxlen", "_samples", "_stride", "_pending")

    def __init__(self, name: str, maxlen: int = 512) -> None:
        if maxlen < 8:
            raise ValueError(f"series {name}: maxlen must be >= 8, got {maxlen}")
        self.name = name
        self.maxlen = maxlen
        self._samples: List[Tuple[float, float]] = []
        self._stride = 1
        self._pending = 0

    def sample(self, time: float, value: float) -> None:
        """Record ``value`` at ``time`` (subject to the current stride)."""
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self._samples.append((time, value))
        if len(self._samples) >= self.maxlen:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def samples(self) -> List[Tuple[float, float]]:
        """The retained ``(time, value)`` pairs, oldest first."""
        return list(self._samples)

    @property
    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent retained sample, or ``None``."""
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, n={len(self._samples)}, stride={self._stride})"


class MetricsRegistry:
    """Named counters, gauges and series with one JSON-able snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._series: Dict[str, TimeSeries] = {}

    # -- get-or-create accessors --------------------------------------- #

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def series(self, name: str, maxlen: int = 512) -> TimeSeries:
        """The time series named ``name`` (created on first use)."""
        metric = self._series.get(name)
        if metric is None:
            metric = self._series[name] = TimeSeries(name, maxlen)
        return metric

    # -- cross-process merge -------------------------------------------- #

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        The executor's telemetry merge: each worker ships its registry
        snapshot (a *delta* — workers start from an empty registry) over
        the result pipe and the parent folds them in job order, so merged
        counters are independent of completion order.  Counters add,
        gauges take the incoming value (last-write in merge order), series
        samples are replayed through the stride-decimation logic.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, samples in (snapshot.get("series") or {}).items():
            series = self.series(name)
            for t, v in samples:
                series.sample(t, v)

    # -- export --------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict export of every instrument (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "series": {
                name: [[t, v] for t, v in s.samples]
                for name, s in sorted(self._series.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, series={len(self._series)})"
        )


class SimMetricsCollector:
    """Event-bus subscriber filling a registry with the paper's quantities.

    Attach to an engine (``Engine(..., subscribers=[collector])`` or
    ``engine.subscribe(collector)``); every metric is derived from event
    payloads alone.

    Parameters
    ----------
    registry:
        Destination registry; one is created when omitted.
    sample_every:
        Sampling period for the time series, in *moves* — 1 samples after
        every traversal, k > 1 reduces collection overhead k-fold on big
        runs at the cost of resolution.

    Collected
    ---------
    counters
        ``moves_total``, ``moves_per_level[k]`` (destination Hamming
        weight — the paper's level), ``clones_total``, ``waits_total``,
        ``wakes_total``, ``whiteboard_writes_total``, ``terminations_total``,
        ``crashes_total``, ``recontaminations_total``,
        ``contiguity_breaks_total``, ``phases_total``
    gauges
        ``clean_nodes``, ``guarded_nodes``, ``contaminated_nodes``,
        ``frontier_size``, ``agents_total``, ``agents_blocked``,
        ``agents_terminated``, ``sim_time``
    series
        ``clean_nodes``, ``contaminated_nodes``, ``guarded_nodes``,
        ``frontier_size``, ``agents_blocked`` — all over simulation time
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        self._n = 0  # network size, learned from run-start
        self._moves_seen = 0
        #: per-agent status: "active" | "blocked" | "terminated" | "crashed"
        self.agent_states: Dict[int, str] = {}
        #: per-agent move totals
        self.agent_moves: Dict[int, int] = {}
        self._phase: str = ""

    # -- event dispatch -------------------------------------------------- #

    def __call__(self, event: EngineEvent) -> None:
        kind = event.kind
        reg = self.registry
        if kind == "move":
            assert isinstance(event, MoveEvent)
            self._on_move(event)
        elif kind == "wait":
            reg.counter("waits_total").inc()
            self._set_state(event.agent, "blocked")
        elif kind == "wake":
            reg.counter("wakes_total").inc()
            self._set_state(event.agent, "active")
        elif kind == "write":
            reg.counter("whiteboard_writes_total").inc()
        elif kind == "spawn":
            self.agent_states.setdefault(event.agent, "active")
            reg.gauge("agents_total").set(len(self.agent_states))
        elif kind == "clone":
            reg.counter("clones_total").inc()
        elif kind == "terminate":
            reg.counter("terminations_total").inc()
            self._set_state(event.agent, "terminated")
        elif kind == "crash":
            reg.counter("crashes_total").inc()
            self._set_state(event.agent, "crashed")
        elif kind == "recontaminated":
            reg.counter("recontaminations_total").inc()
        elif kind == "contiguity-lost":
            reg.counter("contiguity_breaks_total").inc()
        elif kind == "phase":
            reg.counter("phases_total").inc()
            self._phase = str(event.data.get("name", ""))
        elif kind == "run-start":
            self._n = int(event.data["n"])
            reg.gauge("contaminated_nodes").set(self._n)
        elif kind == "run-end":
            reg.gauge("sim_time").set(event.time)

    def _on_move(self, event: MoveEvent) -> None:
        reg = self.registry
        reg.counter("moves_total").inc()
        reg.counter(f"moves_per_level[{event.node.bit_count()}]").inc()
        self.agent_moves[event.agent] = self.agent_moves.get(event.agent, 0) + 1
        self._set_state(event.agent, "active")
        if self._phase:
            reg.counter(f"moves_per_phase[{self._phase}]").inc()
        self._moves_seen += 1
        if self._moves_seen % self.sample_every:
            return
        clean = event.clean_mask.bit_count()
        guarded = event.guard_mask.bit_count()
        frontier = event.frontier_mask.bit_count()
        contaminated = max(self._n - clean - guarded, 0)
        blocked = sum(1 for s in self.agent_states.values() if s == "blocked")
        t = event.time
        reg.gauge("clean_nodes").set(clean)
        reg.gauge("guarded_nodes").set(guarded)
        reg.gauge("contaminated_nodes").set(contaminated)
        reg.gauge("frontier_size").set(frontier)
        reg.gauge("agents_blocked").set(blocked)
        reg.gauge("sim_time").set(t)
        reg.series("clean_nodes").sample(t, clean)
        reg.series("guarded_nodes").sample(t, guarded)
        reg.series("contaminated_nodes").sample(t, contaminated)
        reg.series("frontier_size").sample(t, frontier)
        reg.series("agents_blocked").sample(t, blocked)

    def _set_state(self, agent: int, state: str) -> None:
        if agent < 0:
            return
        self.agent_states[agent] = state
        reg = self.registry
        reg.gauge("agents_total").set(len(self.agent_states))
        reg.gauge("agents_blocked").set(
            sum(1 for s in self.agent_states.values() if s == "blocked")
        )
        reg.gauge("agents_terminated").set(
            sum(1 for s in self.agent_states.values() if s in ("terminated", "crashed"))
        )

    # -- export ----------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Any]:
        """Registry snapshot plus the per-agent busy/blocked table."""
        out = self.registry.snapshot()
        out["per_agent"] = {
            str(agent): {
                "state": self.agent_states.get(agent, "active"),
                "moves": self.agent_moves.get(agent, 0),
            }
            for agent in sorted(self.agent_states)
        }
        return out
