"""Hierarchical spans: monotonic-clock tracing across processes — stdlib only.

A :class:`Span` is one timed operation; a :class:`Tracer` holds a forest of
them for a single *run* (identified by a correlation ``run_id``).  Spans nest
through the context-manager API::

    tracer = Tracer()
    with tracer.span("engine.run", dimension=4):
        with tracer.span("strategy.run", strategy="clean"):
            ...

Durations come from :func:`time.perf_counter` (monotonic, immune to wall
clock steps — exempt from lint rule ``RPR310``).  Span start/end values are
therefore only meaningful *relative to other spans from the same process*;
cross-process ordering is carried by the tree structure, never by clocks.

Cross-process capture
---------------------
Worker processes build their own :class:`Tracer`, serialize it with
:meth:`Tracer.to_records`, and ship the records over the executor result
pipe.  The parent grafts them under its own span tree with
:meth:`Tracer.attach` — span ids are rewritten into the parent's id space,
so ids are *local handles*, never global identity.

Determinism
-----------
:func:`span_tree_digest` canonicalizes a span forest into a digest that is
invariant to sibling completion order, span ids, and volatile attributes
(pids, timings, attempt counters).  The executor's telemetry-merge tests
pin shuffled / crash-requeued / resumed runs to byte-identical digests.

Layering: this module (and the sibling trajectory store
:mod:`repro.obs.runlog`) is the substrate every layer feeds — imports point
*into* it, never out of it.  It must not import the simulation, executor,
fastpath or frontend layers (lint rule ``RPR230``).
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Tracer",
    "new_run_id",
    "set_active_tracer",
    "get_active_tracer",
    "span_tree_digest",
    "critical_path",
    "self_times",
    "render_span_tree",
    "render_trace",
    "VOLATILE_ATTRS",
]

#: Attribute names excluded from :func:`span_tree_digest` canonical form —
#: anything that legitimately differs between an execution and its replay
#: (retry counters, process ids, cache warmth) without changing *what work
#: was done*.
VOLATILE_ATTRS = frozenset(
    {"attempt", "attempts", "pid", "worker_pid", "cached", "run_id", "duration"}
)


def new_run_id() -> str:
    """A fresh correlation id (12 hex chars, collision-safe per machine)."""
    return uuid.uuid4().hex[:12]


class Span:
    """One timed operation inside a :class:`Tracer`'s forest."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "status", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        *,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        #: ``"open"`` until closed, then ``"ok"`` or ``"error"``.
        self.status = "open"
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return max(self.end - self.start, 0.0)

    def to_record(self) -> Dict[str, Any]:
        """JSON-able form (the ``repro-trace/v1`` span payload)."""
        record: Dict[str, Any] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"status={self.status}, duration={self.duration:.6f})"
        )


class Tracer:
    """A forest of spans for one run, with a context-manager entry point.

    Not thread-safe by design: each process (and each executor worker) owns
    exactly one tracer, the same ownership discipline the executor already
    applies to its :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self, run_id: Optional[str] = None, *, clock: Any = time.perf_counter) -> None:
        #: Correlation id threaded through job payloads and RunLog records.
        self.run_id = run_id if run_id is not None else new_run_id()
        self._clock = clock
        self.spans: List[Span] = []  # creation order == record order
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------- #

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` at the top level."""
        return self._stack[-1] if self._stack else None

    def _new_span(self, name: str, parent_id: Optional[int], attrs: Dict[str, Any]) -> Span:
        span = Span(self._next_id, parent_id, name, self._clock(), attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child of the current span; close it (ok/error) on exit."""
        parent = self.current
        span = self._new_span(name, parent.span_id if parent else None, attrs)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.end = self._clock()
            if span.status == "open":
                span.status = "ok"
            self._stack.pop()

    def record_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Span:
        """Append an already-completed span (for after-the-fact bookkeeping).

        ``parent`` defaults to the innermost open span; pass an explicit
        :class:`Span` to graft elsewhere.
        """
        anchor = parent if parent is not None else self.current
        span = self._new_span(name, anchor.span_id if anchor else None, dict(attrs))
        span.start = start
        span.end = end
        span.status = status
        return span

    def attach(
        self,
        records: Sequence[Dict[str, Any]],
        *,
        parent: Optional[Span] = None,
    ) -> List[Span]:
        """Graft serialized span records (e.g. from a worker) into this forest.

        Ids are rewritten into this tracer's id space; roots of the incoming
        forest become children of ``parent`` (default: the innermost open
        span, or forest roots).  Records arrive in creation order, which is
        preserved.
        """
        anchor = parent if parent is not None else self.current
        anchor_id = anchor.span_id if anchor else None
        id_map: Dict[int, int] = {}
        grafted: List[Span] = []
        for record in records:
            old_id = record.get("span")
            old_parent = record.get("parent")
            if old_parent is not None and old_parent in id_map:
                new_parent: Optional[int] = id_map[old_parent]
            else:
                new_parent = anchor_id
            span = self._new_span(str(record.get("name", "?")), new_parent, dict(record.get("attrs") or {}))
            span.start = float(record.get("start") or 0.0)
            end = record.get("end")
            span.end = float(end) if end is not None else None
            span.status = str(record.get("status", "ok"))
            if isinstance(old_id, int):
                id_map[old_id] = span.span_id
            grafted.append(span)
        return grafted

    # -- export ---------------------------------------------------------- #

    def to_records(self) -> List[Dict[str, Any]]:
        """All spans as JSON-able records, creation order."""
        return [span.to_record() for span in self.spans]

    def __repr__(self) -> str:
        return f"Tracer(run_id={self.run_id!r}, spans={len(self.spans)}, open={len(self._stack)})"


# -- process-wide active tracer ------------------------------------------- #
#
# The same duck-typed global idiom as ``repro.core.strategy.set_active_cache``:
# instrumented layers (Strategy.run, Engine.run) fetch the active tracer with
# one function call and skip all tracing work when it is None — the EventBus
# zero-cost-guard discipline.

_ACTIVE_TRACER: Optional[Tracer] = None


def set_active_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


def get_active_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE_TRACER


# -- canonical digest ------------------------------------------------------ #


def _build_forest(
    records: Sequence[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[int, List[Dict[str, Any]]]]:
    """(roots, children-by-span-id), preserving record order."""
    by_id = {r["span"]: r for r in records if isinstance(r.get("span"), int)}
    roots: List[Dict[str, Any]] = []
    children: Dict[int, List[Dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    return roots, children


def _canonical(
    record: Dict[str, Any],
    children: Dict[int, List[Dict[str, Any]]],
    volatile: frozenset,
) -> Any:
    attrs = {
        k: v for k, v in sorted((record.get("attrs") or {}).items()) if k not in volatile
    }
    kids = sorted(
        (
            _canonical(child, children, volatile)
            for child in children.get(record.get("span"), [])
        ),
        key=lambda c: json.dumps(c, sort_keys=True),
    )
    return [str(record.get("name", "?")), str(record.get("status", "ok")), attrs, kids]


def span_tree_digest(
    records: Sequence[Dict[str, Any]],
    *,
    volatile: frozenset = VOLATILE_ATTRS,
) -> str:
    """SHA-256 over the canonical span forest.

    Invariant to span ids, sibling order, timings and ``volatile``
    attributes — two runs that did the same *work* digest identically even
    when scheduling, retries or cache warmth differed.
    """
    roots, children = _build_forest(records)
    canon = sorted(
        (_canonical(root, children, volatile) for root in roots),
        key=lambda c: json.dumps(c, sort_keys=True),
    )
    payload = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- analysis -------------------------------------------------------------- #


def critical_path(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The chain of longest-duration spans from the longest root down."""
    roots, children = _build_forest(records)
    if not roots:
        return []

    def dur(record: Dict[str, Any]) -> float:
        return float(record.get("duration") or 0.0)

    path = [max(roots, key=dur)]
    while True:
        kids = children.get(path[-1].get("span"), [])
        if not kids:
            return path
        path.append(max(kids, key=dur))


def self_times(records: Sequence[Dict[str, Any]]) -> List[Tuple[str, float, int]]:
    """Per-span-name ``(name, self_seconds, count)``, largest first.

    Self time is a span's duration minus its direct children's durations
    (clamped at zero — cross-process clocks make child sums approximate).
    """
    _, children = _build_forest(records)
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in records:
        name = str(record.get("name", "?"))
        own = float(record.get("duration") or 0.0)
        child_sum = sum(
            float(c.get("duration") or 0.0) for c in children.get(record.get("span"), [])
        )
        totals[name] = totals.get(name, 0.0) + max(own - child_sum, 0.0)
        counts[name] = counts.get(name, 0) + 1
    return sorted(
        ((name, totals[name], counts[name]) for name in totals),
        key=lambda item: (-item[1], item[0]),
    )


# -- rendering ------------------------------------------------------------- #


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    shown = [f"{k}={v}" for k, v in list(sorted(attrs.items()))[:limit] if k != "error"]
    return f" [{', '.join(shown)}]" if shown else ""


def render_span_tree(
    records: Sequence[Dict[str, Any]],
    *,
    max_depth: Optional[int] = None,
) -> str:
    """ASCII tree of the span forest with durations and percentages."""
    roots, children = _build_forest(records)
    if not roots:
        return "(no spans)"
    total = sum(float(r.get("duration") or 0.0) for r in roots) or 1.0
    lines: List[str] = []

    def walk(record: Dict[str, Any], prefix: str, is_last: bool, depth: int) -> None:
        dur = float(record.get("duration") or 0.0)
        pct = 100.0 * dur / total
        connector = "" if not prefix and depth == 0 else ("`- " if is_last else "|- ")
        marker = " !" if record.get("status") == "error" else ""
        lines.append(
            f"{prefix}{connector}{record.get('name', '?')}"
            f"  {_fmt_seconds(dur)} ({pct:.1f}%){marker}"
            f"{_fmt_attrs(record.get('attrs') or {})}"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        kids = children.get(record.get("span"), [])
        child_prefix = prefix + ("" if depth == 0 else ("   " if is_last else "|  "))
        for i, child in enumerate(kids):
            walk(child, child_prefix, i == len(kids) - 1, depth + 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1, 0)
    return "\n".join(lines)


def render_trace(
    records: Sequence[Dict[str, Any]],
    *,
    top: int = 5,
    max_depth: Optional[int] = None,
) -> str:
    """Span tree + critical path + top-K self-time — the `trace` CLI body."""
    sections = [render_span_tree(records, max_depth=max_depth)]
    path = critical_path(records)
    if path:
        steps = " -> ".join(
            f"{r.get('name', '?')} ({_fmt_seconds(float(r.get('duration') or 0.0))})"
            for r in path
        )
        sections.append(f"critical path: {steps}")
    ranked = self_times(records)[:top]
    if ranked:
        width = max(len(name) for name, _, _ in ranked)
        rows = "\n".join(
            f"  {name.ljust(width)}  {_fmt_seconds(sec).rjust(9)}  x{count}"
            for name, sec, count in ranked
        )
        sections.append(f"top self-time:\n{rows}")
    return "\n\n".join(sections)
