"""RunLog trajectory store: one append-only JSONL stream per run.

Schema ``repro-trace/v1``.  Every record is one JSON object with a
``record`` discriminator:

``begin``
    Stream header: ``schema``, ``run_id`` (the tracer correlation id) and
    the run's ``repro-manifest/v1`` provenance record.  Always first.
``span``
    One completed span (:meth:`repro.obs.trace.Span.to_record` payload).
``event``
    One engine event (flattened :meth:`~repro.obs.events.EngineEvent.to_dict`
    payload) — the RunLog writer is a bus subscriber, so it can be attached
    to an :class:`~repro.obs.bus.EventBus` like any other consumer.
``metrics``
    A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` sample.
``end``
    Explicit terminator with a ``status`` — its *absence* marks a run that
    died mid-stream, which is a finding, not a parse error.

The stream itself is append-only (durable against crashes up to a torn
tail, read back with :func:`repro.obs.stream.read_jsonl_records`); the
per-directory ``index.json`` is rewritten through the atomic
``mkstemp`` + ``os.replace`` idiom so readers never observe a partial
index.

Like :mod:`repro.obs.trace`, this module is layering-terminal: it must not
import the simulation, executor, fastpath or frontend layers (lint rule
``RPR230``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.stream import JsonlStreamer, read_jsonl_records

__all__ = ["TRACE_SCHEMA", "RunLog", "RunLogWriter", "RunLogData", "read_runlog"]

#: Schema identifier stamped into every ``begin`` record and the index.
TRACE_SCHEMA = "repro-trace/v1"

_INDEX_NAME = "index.json"


class RunLogData:
    """Parsed view of one RunLog stream (see :func:`read_runlog`)."""

    __slots__ = ("path", "run_id", "schema", "manifest", "spans", "events", "metrics", "end")

    def __init__(self, path: Path) -> None:
        self.path = path
        self.run_id: str = ""
        self.schema: str = ""
        self.manifest: Dict[str, Any] = {}
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self.metrics: List[Dict[str, Any]] = []
        self.end: Optional[Dict[str, Any]] = None

    @property
    def complete(self) -> bool:
        """True when the stream carries its explicit ``end`` marker."""
        return self.end is not None

    @property
    def counters(self) -> Dict[str, float]:
        """Counters from the last metrics sample (``{}`` when none)."""
        if not self.metrics:
            return {}
        return dict(self.metrics[-1].get("counters") or {})

    def __repr__(self) -> str:
        return (
            f"RunLogData(run_id={self.run_id!r}, spans={len(self.spans)}, "
            f"events={len(self.events)}, complete={self.complete})"
        )


def read_runlog(path: Union[str, Path]) -> RunLogData:
    """Parse one RunLog stream, tolerating a torn tail after a crash."""
    data = RunLogData(Path(path))
    for record in read_jsonl_records(path, missing_ok=False):
        kind = record.get("record")
        if kind == "begin":
            data.run_id = str(record.get("run_id", ""))
            data.schema = str(record.get("schema", ""))
            data.manifest = dict(record.get("manifest") or {})
        elif kind == "span":
            data.spans.append(record)
        elif kind == "event":
            data.events.append(record)
        elif kind == "metrics":
            data.metrics.append(dict(record.get("metrics") or {}))
        elif kind == "end":
            data.end = record
    return data


class RunLogWriter:
    """Appender for one run's stream; also usable as a bus subscriber.

    Create through :meth:`RunLog.writer`; call :meth:`begin` first, then
    any mix of :meth:`write_span` / :meth:`write_event` / ``__call__`` /
    :meth:`write_metrics`, and finish with :meth:`end` (which also
    publishes the run into the directory index).
    """

    def __init__(self, runlog: "RunLog", run_id: str, *, fsync: bool = False) -> None:
        self._runlog = runlog
        self.run_id = run_id
        self.path = runlog.root / f"{run_id}.jsonl"
        self._fh = self.path.open("a")
        self._streamer = JsonlStreamer(self._fh, flush_every=1, fsync=fsync)
        self._ended = False

    # -- records --------------------------------------------------------- #

    def begin(self, manifest: Optional[Mapping[str, Any]] = None, **attrs: Any) -> None:
        """Write the stream header (schema + run id + provenance)."""
        record: Dict[str, Any] = {
            "record": "begin",
            "schema": TRACE_SCHEMA,
            "run_id": self.run_id,
            "manifest": dict(manifest or {}),
        }
        if attrs:
            record["attrs"] = attrs
        self._streamer.write_record(record)

    def write_span(self, span_record: Mapping[str, Any]) -> None:
        """Append one completed span record."""
        self._streamer.write_record({"record": "span", **span_record})

    def write_spans(self, span_records: Sequence[Mapping[str, Any]]) -> None:
        """Append a span forest (e.g. :meth:`repro.obs.trace.Tracer.to_records`)."""
        for record in span_records:
            self.write_span(record)

    def write_event(self, event_record: Mapping[str, Any]) -> None:
        """Append one engine-event record (already serialized to a dict)."""
        self._streamer.write_record({"record": "event", **event_record})

    def __call__(self, event: Any) -> None:
        """Bus-subscriber entry point: serialize one engine event."""
        self.write_event(event.to_dict())

    def write_metrics(self, snapshot: Mapping[str, Any]) -> None:
        """Append a metrics-snapshot sample."""
        self._streamer.write_record({"record": "metrics", "metrics": dict(snapshot)})

    def end(self, status: str = "ok", **summary: Any) -> None:
        """Terminate the stream and publish the run into the index."""
        if self._ended:
            return
        record: Dict[str, Any] = {"record": "end", "status": status}
        if summary:
            record["summary"] = summary
        self._streamer.write_record(record)
        self._ended = True
        self.close()
        self._runlog.publish(
            {"run_id": self.run_id, "file": self.path.name, "status": status}
        )

    def close(self) -> None:
        """Close the stream file without writing ``end`` (crash semantics)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if not self._ended:
            try:
                self.end(status="ok" if exc_type is None else "error")
            finally:
                self.close()

    def __repr__(self) -> str:
        return f"RunLogWriter(run_id={self.run_id!r}, path={str(self.path)!r})"


class RunLog:
    """A directory of run streams plus an atomically-published index."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def writer(self, run_id: str, *, fsync: bool = False) -> RunLogWriter:
        """Open (append) the stream for ``run_id``."""
        self.root.mkdir(parents=True, exist_ok=True)
        return RunLogWriter(self, run_id, fsync=fsync)

    # -- index ----------------------------------------------------------- #

    def index(self) -> Dict[str, Any]:
        """The directory index (``{"schema": ..., "runs": []}`` when absent
        or unreadable — the streams themselves are the source of truth)."""
        try:
            data = json.loads(self.index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {"schema": TRACE_SCHEMA, "runs": []}
        if not isinstance(data, dict) or not isinstance(data.get("runs"), list):
            return {"schema": TRACE_SCHEMA, "runs": []}
        return data

    def runs(self) -> List[Dict[str, Any]]:
        """Indexed run entries, oldest first."""
        return [entry for entry in self.index()["runs"] if isinstance(entry, dict)]

    def latest(self) -> Optional[Path]:
        """Path of the most recently published run's stream, or ``None``."""
        for entry in reversed(self.runs()):
            path = self.root / str(entry.get("file", ""))
            if path.is_file():
                return path
        return None

    def publish(self, entry: Dict[str, Any]) -> None:
        """Insert/replace ``entry`` (by ``run_id``) and atomically rewrite
        the index — a reader never observes a partial file."""
        index = self.index()
        runs = [
            e
            for e in index["runs"]
            if isinstance(e, dict) and e.get("run_id") != entry.get("run_id")
        ]
        runs.append(entry)
        payload = {"schema": TRACE_SCHEMA, "runs": runs}
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=f".{_INDEX_NAME}.", suffix=".tmp", dir=self.root)
        try:
            with os.fdopen(fd, "w") as staging:
                json.dump(payload, staging, indent=2, sort_keys=True)
                staging.write("\n")
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        return f"RunLog(root={str(self.root)!r}, runs={len(self.runs())})"
