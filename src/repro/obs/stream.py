"""JSONL event streaming: write each engine event as one JSON line.

:class:`JsonlStreamer` is a bus subscriber that serializes events with
:meth:`~repro.obs.events.EngineEvent.to_dict` and writes them to any
text-file-like object as they happen — the live-tailing path behind
``repro-search watch``.  Unlike the :class:`~repro.sim.trace.Trace`, a
streamer holds O(1) state no matter how long the run is: events leave the
process as they occur instead of accumulating.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO

from repro.obs.events import EngineEvent

__all__ = ["JsonlStreamer"]


class JsonlStreamer:
    """Subscriber writing one JSON line per event to ``fh``.

    Parameters
    ----------
    fh:
        Any object with ``write(str)`` (an open text file, ``sys.stdout``,
        an ``io.StringIO`` in tests).
    flush_every:
        Flush the handle every N events (1 = after each line, the live
        tailing default; larger values batch for throughput).  ``0``
        disables explicit flushing entirely.
    mask_fields:
        When true, include the bitmask payload fields of state-carrying
        events (as hex strings — they can be thousands of bits at high
        dimension); default omits them to keep lines small.
    """

    def __init__(self, fh: TextIO, *, flush_every: int = 1, mask_fields: bool = False) -> None:
        self._fh = fh
        self._flush_every = flush_every
        self._mask_fields = mask_fields
        #: Events written so far.
        self.count = 0

    def __call__(self, event: EngineEvent) -> None:
        record = event.to_dict()
        if self._mask_fields:
            for name in ("clean_mask", "guard_mask", "frontier_mask"):
                mask = getattr(event, name, None)
                if mask is not None:
                    record[name] = hex(mask)
        self._fh.write(json.dumps(record) + "\n")
        self.count += 1
        if self._flush_every and self.count % self._flush_every == 0:
            self._maybe_flush()

    def write_record(self, record: Dict[str, Any]) -> None:
        """Write one extra non-event record (e.g. the closing manifest)."""
        self._fh.write(json.dumps(record) + "\n")
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        flush = getattr(self._fh, "flush", None)
        if flush is not None:
            try:
                flush()
            except OSError:  # pragma: no cover - closed pipe during teardown
                pass

    def __repr__(self) -> str:
        return f"JsonlStreamer(count={self.count})"
