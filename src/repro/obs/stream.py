"""JSONL event streaming: write each engine event as one JSON line.

:class:`JsonlStreamer` is a bus subscriber that serializes events with
:meth:`~repro.obs.events.EngineEvent.to_dict` and writes them to any
text-file-like object as they happen — the live-tailing path behind
``repro-search watch``.  Unlike the :class:`~repro.sim.trace.Trace`, a
streamer holds O(1) state no matter how long the run is: events leave the
process as they occur instead of accumulating.

:func:`read_jsonl_records` is the matching reader — torn-tail tolerant,
shared by the executor checkpoint and the :mod:`~repro.obs.runlog`
trajectory store, so "append-only JSONL that survives a crash mid-line"
has exactly one implementation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, TextIO, Union

from repro.obs.events import EngineEvent

__all__ = ["JsonlStreamer", "read_jsonl_records"]


def read_jsonl_records(path: Union[str, Path], *, missing_ok: bool = True) -> List[Dict[str, Any]]:
    """All complete JSON-object records from an append-only JSONL file.

    Tolerates the torn tail a crash mid-append leaves behind: parsing stops
    at the first undecodable line and the intact prefix is returned.  Blank
    lines and non-object records are skipped.  A missing file yields ``[]``
    when ``missing_ok`` (the default); other ``OSError``\\ s propagate for
    the caller to wrap in its own error type.
    """
    target = Path(path)
    if missing_ok and not target.exists():
        return []
    text = target.read_text()
    records: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail from a crash mid-append: keep the prefix
        if isinstance(record, dict):
            records.append(record)
    return records


class JsonlStreamer:
    """Subscriber writing one JSON line per event to ``fh``.

    Parameters
    ----------
    fh:
        Any object with ``write(str)`` (an open text file, ``sys.stdout``,
        an ``io.StringIO`` in tests).
    flush_every:
        Flush the handle every N events (1 = after each line, the live
        tailing default; larger values batch for throughput).  ``0``
        disables explicit flushing entirely.
    mask_fields:
        When true, include the bitmask payload fields of state-carrying
        events (as hex strings — they can be thousands of bits at high
        dimension); default omits them to keep lines small.
    fsync:
        When true, every flush is followed by ``os.fsync`` so each record
        is durable against power loss, not just process death.  Costs one
        disk sync per ``flush_every`` records — the trajectory store's
        ``--trace`` durability opt-in.  Ignored for handles without a real
        file descriptor (``StringIO``, pipes that reject fsync).
    """

    def __init__(
        self,
        fh: TextIO,
        *,
        flush_every: int = 1,
        mask_fields: bool = False,
        fsync: bool = False,
    ) -> None:
        self._fh = fh
        self._flush_every = flush_every
        self._mask_fields = mask_fields
        self._fsync = fsync
        #: Events written so far.
        self.count = 0

    def __call__(self, event: EngineEvent) -> None:
        record = event.to_dict()
        if self._mask_fields:
            for name in ("clean_mask", "guard_mask", "frontier_mask"):
                mask = getattr(event, name, None)
                if mask is not None:
                    record[name] = hex(mask)
        self._fh.write(json.dumps(record) + "\n")
        self.count += 1
        if self._flush_every and self.count % self._flush_every == 0:
            self._maybe_flush()

    def write_record(self, record: Dict[str, Any]) -> None:
        """Write one extra non-event record (e.g. the closing manifest)."""
        self._fh.write(json.dumps(record) + "\n")
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        flush = getattr(self._fh, "flush", None)
        if flush is not None:
            try:
                flush()
            except OSError:  # pragma: no cover - closed pipe during teardown
                return
        if self._fsync:
            fileno = getattr(self._fh, "fileno", None)
            if fileno is None:
                return
            try:
                os.fsync(fileno())
            except (OSError, ValueError):  # StringIO / closed handle / pipes
                pass

    def __repr__(self) -> str:
        return f"JsonlStreamer(count={self.count})"
