"""Sparkline text reports over metric snapshots (``repro-search report``).

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or a
:meth:`~repro.obs.metrics.SimMetricsCollector.snapshot`, which adds the
per-agent table) as a compact terminal report: counters and gauges as
aligned key/value rows, every time series as a unicode sparkline spanning
the run.  Pure string formatting over plain dicts — usable on snapshots
loaded back from JSON just as well as on live registries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["sparkline", "render_report"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """``values`` as a fixed-width unicode sparkline.

    Longer sequences are resampled down to ``width`` points (bucket means);
    shorter ones are rendered as-is.  A flat series renders at the lowest
    bar so changes, not absolute levels, stand out.
    """
    if not values:
        return ""
    points = _resample([float(v) for v in values], width)
    lo, hi = min(points), max(points)
    if hi <= lo:
        return _BARS[0] * len(points)
    scale = (len(_BARS) - 1) / (hi - lo)
    return "".join(_BARS[round((v - lo) * scale)] for v in points)


def _resample(values: List[float], width: int) -> List[float]:
    if len(values) <= width:
        return values
    out: List[float] = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max((i + 1) * len(values) // width, lo + 1)
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def _kv_rows(table: Dict[str, float], indent: str = "  ") -> List[str]:
    if not table:
        return [f"{indent}(none)"]
    pad = max(len(name) for name in table)
    return [f"{indent}{name:<{pad}} : {_format_value(value)}" for name, value in table.items()]


def render_report(snapshot: Dict[str, Any], *, title: str = "metrics", width: int = 48) -> str:
    """Multi-line text report for one metric snapshot.

    ``snapshot`` is the dict shape produced by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; the optional
    ``per_agent`` key (added by
    :meth:`~repro.obs.metrics.SimMetricsCollector.snapshot`) renders as a
    summary row per agent state.
    """
    lines: List[str] = [f"=== {title} ==="]

    counters: Dict[str, float] = snapshot.get("counters", {})
    gauges: Dict[str, float] = snapshot.get("gauges", {})
    series: Dict[str, List[Tuple[float, float]]] = snapshot.get("series", {})

    lines.append("counters:")
    lines.extend(_kv_rows(counters))
    lines.append("gauges:")
    lines.extend(_kv_rows(gauges))

    if series:
        lines.append("series (start -> end over sim time):")
        pad = max(len(name) for name in series)
        for name, samples in series.items():
            values = [v for _, v in samples]
            if not values:
                continue
            lines.append(
                f"  {name:<{pad}} {sparkline(values, width)} "
                f"[{_format_value(values[0])} -> {_format_value(values[-1])}, "
                f"peak {_format_value(max(values))}]"
            )

    per_agent: Optional[Dict[str, Dict[str, Any]]] = snapshot.get("per_agent")
    if per_agent:
        states: Dict[str, int] = {}
        for info in per_agent.values():
            state = str(info.get("state", "active"))
            states[state] = states.get(state, 0) + 1
        total_moves = sum(int(info.get("moves", 0)) for info in per_agent.values())
        summary = ", ".join(f"{count} {state}" for state, count in sorted(states.items()))
        lines.append(f"agents: {len(per_agent)} ({summary}); {total_moves} moves total")
    return "\n".join(lines)
