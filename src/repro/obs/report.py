"""Sparkline text reports over metric snapshots (``repro-search report``).

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or a
:meth:`~repro.obs.metrics.SimMetricsCollector.snapshot`, which adds the
per-agent table) as a compact terminal report: counters and gauges as
aligned key/value rows, every time series as a unicode sparkline spanning
the run.  Pure string formatting over plain dicts — usable on snapshots
loaded back from JSON just as well as on live registries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["sparkline", "render_report", "report_payload", "REPORT_SCHEMA"]

#: Schema identifier for the machine-readable report payload
#: (``repro-search report --json``).
REPORT_SCHEMA = "repro-report/v1"

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """``values`` as a fixed-width unicode sparkline.

    Longer sequences are resampled down to ``width`` points (bucket means);
    shorter ones are rendered as-is.  A flat series renders at the lowest
    bar so changes, not absolute levels, stand out.
    """
    if not values:
        return ""
    points = _resample([float(v) for v in values], width)
    lo, hi = min(points), max(points)
    if hi <= lo:
        return _BARS[0] * len(points)
    scale = (len(_BARS) - 1) / (hi - lo)
    return "".join(_BARS[round((v - lo) * scale)] for v in points)


def _resample(values: List[float], width: int) -> List[float]:
    if len(values) <= width:
        return values
    out: List[float] = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max((i + 1) * len(values) // width, lo + 1)
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def _kv_rows(table: Dict[str, float], indent: str = "  ") -> List[str]:
    if not table:
        return [f"{indent}(none)"]
    pad = max(len(name) for name in table)
    return [f"{indent}{name:<{pad}} : {_format_value(value)}" for name, value in table.items()]


def report_payload(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Machine-readable report: counters, gauges, per-series summaries.

    The JSON twin of :func:`render_report` (schema ``repro-report/v1``) —
    series collapse to ``{first, last, min, peak, mean, samples}`` summary
    stats instead of sparklines, and the optional per-agent table reduces
    to state counts plus the total move count.  Consumed by
    ``repro-search report --json``; the shape is pinned by a test.
    """
    counters: Dict[str, float] = dict(snapshot.get("counters") or {})
    gauges: Dict[str, float] = dict(snapshot.get("gauges") or {})
    series_summary: Dict[str, Dict[str, float]] = {}
    for name, samples in sorted(dict(snapshot.get("series") or {}).items()):
        values = [float(v) for _, v in samples]
        if not values:
            continue
        series_summary[name] = {
            "first": values[0],
            "last": values[-1],
            "min": min(values),
            "peak": max(values),
            "mean": sum(values) / len(values),
            "samples": len(values),
        }
    payload: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "counters": counters,
        "gauges": gauges,
        "series": series_summary,
    }
    per_agent: Optional[Dict[str, Dict[str, Any]]] = snapshot.get("per_agent")
    if per_agent:
        states: Dict[str, int] = {}
        for info in per_agent.values():
            state = str(info.get("state", "active"))
            states[state] = states.get(state, 0) + 1
        payload["agents"] = {
            "total": len(per_agent),
            "states": dict(sorted(states.items())),
            "moves_total": sum(int(info.get("moves", 0)) for info in per_agent.values()),
        }
    return payload


def render_report(snapshot: Dict[str, Any], *, title: str = "metrics", width: int = 48) -> str:
    """Multi-line text report for one metric snapshot.

    ``snapshot`` is the dict shape produced by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; the optional
    ``per_agent`` key (added by
    :meth:`~repro.obs.metrics.SimMetricsCollector.snapshot`) renders as a
    summary row per agent state.
    """
    lines: List[str] = [f"=== {title} ==="]

    counters: Dict[str, float] = snapshot.get("counters", {})
    gauges: Dict[str, float] = snapshot.get("gauges", {})
    series: Dict[str, List[Tuple[float, float]]] = snapshot.get("series", {})

    lines.append("counters:")
    lines.extend(_kv_rows(counters))
    lines.append("gauges:")
    lines.extend(_kv_rows(gauges))

    if series:
        lines.append("series (start -> end over sim time):")
        pad = max(len(name) for name in series)
        for name, samples in series.items():
            values = [v for _, v in samples]
            if not values:
                continue
            lines.append(
                f"  {name:<{pad}} {sparkline(values, width)} "
                f"[{_format_value(values[0])} -> {_format_value(values[-1])}, "
                f"peak {_format_value(max(values))}]"
            )

    per_agent: Optional[Dict[str, Dict[str, Any]]] = snapshot.get("per_agent")
    if per_agent:
        states: Dict[str, int] = {}
        for info in per_agent.values():
            state = str(info.get("state", "active"))
            states[state] = states.get(state, 0) + 1
        total_moves = sum(int(info.get("moves", 0)) for info in per_agent.values())
        summary = ", ".join(f"{count} {state}" for state, count in sorted(states.items()))
        lines.append(f"agents: {len(per_agent)} ({summary}); {total_moves} moves total")
    return "\n".join(lines)
