"""Live instrumentation layer: event bus, metrics, probes, manifests.

The :mod:`repro.obs` package turns the discrete-event engine from a black
box (all measurement post-hoc on the final :class:`~repro.sim.trace.Trace`)
into an instrumented system: the engine publishes typed events
(:mod:`~repro.obs.events`) to any number of subscribers through a tiny
pub/sub bus (:mod:`~repro.obs.bus`), and this package provides the three
standard consumers:

* :mod:`~repro.obs.metrics` — a counters/gauges/time-series registry with a
  built-in collector for the paper's quantities (live clean/contaminated/
  guard counts, frontier size, moves per level, blocked agents);
* :mod:`~repro.obs.probes` — invariant probes that diagnose monotonicity,
  contiguity and guard-coverage violations *at the violating event*, naming
  the agent, node, event kind and simulation time;
* :mod:`~repro.obs.stream` — JSONL event streaming for live tailing
  (``repro-search watch``).

:mod:`~repro.obs.manifest` stamps every run and benchmark with an
attributable record (seed, topology, protocol model, delay model, git
revision, metric snapshot — schema ``repro-manifest/v1``), and
:mod:`~repro.obs.report` renders metric snapshots as sparkline text
reports (``repro-search report``).

Layering
--------
``obs`` sits *below* the simulation core: :mod:`repro.sim.engine` imports
the event types from here, and nothing in this package may import
``repro.sim`` (enforced statically by ``repro-lint`` rule ``RPR200``).
Consumers that need simulation state receive it through the event payloads
(bitmasks and scalars), never through an import.
"""

from repro.obs.bus import EventBus
from repro.obs.events import (
    CloneEvent,
    ContiguityLostEvent,
    CrashEvent,
    EngineEvent,
    MoveEvent,
    PhaseEvent,
    RecontaminationEvent,
    RunEndEvent,
    RunStartEvent,
    SpawnEvent,
    TerminateEvent,
    WaitEvent,
    WakeEvent,
    WhiteboardEvent,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    SimMetricsCollector,
    TimeSeries,
)
from repro.obs.probes import (
    ContiguityProbe,
    GuardCoverageProbe,
    InvariantViolation,
    MonotonicityProbe,
    ProbeViolation,
    standard_probes,
)
from repro.obs.report import render_report, sparkline
from repro.obs.stream import JsonlStreamer

__all__ = [
    "EventBus",
    "EngineEvent",
    "RunStartEvent",
    "RunEndEvent",
    "SpawnEvent",
    "MoveEvent",
    "CloneEvent",
    "WaitEvent",
    "WakeEvent",
    "WhiteboardEvent",
    "TerminateEvent",
    "CrashEvent",
    "RecontaminationEvent",
    "ContiguityLostEvent",
    "PhaseEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "TimeSeries",
    "SimMetricsCollector",
    "ProbeViolation",
    "InvariantViolation",
    "MonotonicityProbe",
    "ContiguityProbe",
    "GuardCoverageProbe",
    "standard_probes",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_revision",
    "write_manifest",
    "render_report",
    "sparkline",
    "JsonlStreamer",
]
