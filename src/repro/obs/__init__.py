"""Live instrumentation layer: event bus, metrics, probes, manifests,
spans and the run trajectory store.

The :mod:`repro.obs` package turns the discrete-event engine from a black
box (all measurement post-hoc on the final :class:`~repro.sim.trace.Trace`)
into an instrumented system: the engine publishes typed events
(:mod:`~repro.obs.events`) to any number of subscribers through a tiny
pub/sub bus (:mod:`~repro.obs.bus`), and this package provides the three
standard consumers:

* :mod:`~repro.obs.metrics` — a counters/gauges/time-series registry with a
  built-in collector for the paper's quantities (live clean/contaminated/
  guard counts, frontier size, moves per level, blocked agents);
* :mod:`~repro.obs.probes` — invariant probes that diagnose monotonicity,
  contiguity and guard-coverage violations *at the violating event*, naming
  the agent, node, event kind and simulation time;
* :mod:`~repro.obs.stream` — JSONL event streaming for live tailing
  (``repro-search watch``).

:mod:`~repro.obs.manifest` stamps every run and benchmark with an
attributable record (seed, topology, protocol model, delay model, git
revision, metric snapshot — schema ``repro-manifest/v1``), and
:mod:`~repro.obs.report` renders metric snapshots as sparkline text
reports (``repro-search report``).

The trace plane adds cross-process observability: :mod:`~repro.obs.trace`
records hierarchical spans under a process-wide active tracer (workers
ship their span forest + metrics delta home for a deterministic merge),
:mod:`~repro.obs.runlog` persists one ``repro-trace/v1`` JSONL stream per
run (``repro-search trace``), and :mod:`~repro.obs.prom` exports any
metrics snapshot in the Prometheus text format (``repro-search metrics``).

Layering
--------
``obs`` sits *below* the simulation core: :mod:`repro.sim.engine` imports
the event types from here, and nothing in this package may import
``repro.sim`` (enforced statically by ``repro-lint`` rule ``RPR200``;
the trace plane is additionally barred from every runtime frontend by
``RPR230``).
Consumers that need simulation state receive it through the event payloads
(bitmasks and scalars), never through an import.
"""

from repro.obs.bus import EventBus
from repro.obs.events import (
    CloneEvent,
    ContiguityLostEvent,
    CrashEvent,
    EngineEvent,
    MoveEvent,
    PhaseEvent,
    RecontaminationEvent,
    RunEndEvent,
    RunStartEvent,
    SpawnEvent,
    TerminateEvent,
    WaitEvent,
    WakeEvent,
    WhiteboardEvent,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    SimMetricsCollector,
    TimeSeries,
)
from repro.obs.probes import (
    ContiguityProbe,
    GuardCoverageProbe,
    InvariantViolation,
    MonotonicityProbe,
    ProbeViolation,
    standard_probes,
)
from repro.obs.prom import prometheus_name, to_prometheus
from repro.obs.report import REPORT_SCHEMA, render_report, report_payload, sparkline
from repro.obs.runlog import TRACE_SCHEMA, RunLog, RunLogData, RunLogWriter, read_runlog
from repro.obs.stream import JsonlStreamer, read_jsonl_records
from repro.obs.trace import (
    Span,
    Tracer,
    critical_path,
    get_active_tracer,
    new_run_id,
    render_span_tree,
    render_trace,
    self_times,
    set_active_tracer,
    span_tree_digest,
)

__all__ = [
    "EventBus",
    "EngineEvent",
    "RunStartEvent",
    "RunEndEvent",
    "SpawnEvent",
    "MoveEvent",
    "CloneEvent",
    "WaitEvent",
    "WakeEvent",
    "WhiteboardEvent",
    "TerminateEvent",
    "CrashEvent",
    "RecontaminationEvent",
    "ContiguityLostEvent",
    "PhaseEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "TimeSeries",
    "SimMetricsCollector",
    "ProbeViolation",
    "InvariantViolation",
    "MonotonicityProbe",
    "ContiguityProbe",
    "GuardCoverageProbe",
    "standard_probes",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_revision",
    "write_manifest",
    "render_report",
    "report_payload",
    "REPORT_SCHEMA",
    "sparkline",
    "JsonlStreamer",
    "read_jsonl_records",
    "Span",
    "Tracer",
    "new_run_id",
    "set_active_tracer",
    "get_active_tracer",
    "span_tree_digest",
    "critical_path",
    "self_times",
    "render_span_tree",
    "render_trace",
    "TRACE_SCHEMA",
    "RunLog",
    "RunLogData",
    "RunLogWriter",
    "read_runlog",
    "prometheus_name",
    "to_prometheus",
]
